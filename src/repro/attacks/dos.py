"""Denial of service — paper §VI.D, executable.

Claims the experiment (E12) verifies:

* **S-servers are distributed**: knocking out k of n storage servers only
  removes the collections they hold; availability degrades gracefully as
  (n − k)/n.
* **A-servers are more centralized and susceptible** — addressed "by
  splitting the role of an A-server to several local offices, and
  utilizing the hierarchical IBC architecture in HCPP for convenient
  cross-domain authentication (e.g., the physician can call the toll-free
  number to access another A-server if the one in his domain is
  unreachable)."  :func:`authenticate_with_failover` implements that
  fallback chain over HIBC-federated state servers.
* **Abnormality deletion**: S-servers may delete uploads on detecting
  flooding; :class:`FloodDetector` is a simple token-bucket detector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.sim import Network
from repro.core.aserver import StateAServer
from repro.exceptions import NetworkError, NodeUnreachableError, ReproError


@dataclass(frozen=True)
class AvailabilityReport:
    attempted: int
    succeeded: int

    @property
    def availability(self) -> float:
        return self.succeeded / self.attempted if self.attempted else 0.0


def storage_availability(network: Network, client: str,
                         server_addresses: list[str],
                         down: set[str],
                         request_bytes: int = 512) -> AvailabilityReport:
    """Probe every S-server once with ``down`` servers disabled."""
    for address in down:
        network.set_node_up(address, False)
    succeeded = 0
    try:
        for address in server_addresses:
            try:
                network.transmit(client, address, request_bytes,
                                 label="dos/probe")
                succeeded += 1
            except (NodeUnreachableError, NetworkError):
                continue
    finally:
        for address in down:
            network.set_node_up(address, True)
    return AvailabilityReport(attempted=len(server_addresses),
                              succeeded=succeeded)


def authenticate_with_failover(network: Network, physician_address: str,
                               aservers: list[StateAServer],
                               down: set[str],
                               auth_fn) -> tuple[bool, str | None, int]:
    """Try A-servers in order until one is reachable and authenticates.

    ``auth_fn(aserver) -> bool`` performs the actual authentication against
    a reachable server.  Returns (success, serving_aserver_name, attempts).
    """
    for address in down:
        network.set_node_up(address, False)
    attempts = 0
    try:
        for aserver in aservers:
            attempts += 1
            try:
                network.transmit(physician_address, aserver.address, 256,
                                 label="dos/auth-attempt")
            except (NodeUnreachableError, NetworkError):
                continue
            try:
                if auth_fn(aserver):
                    return True, aserver.name, attempts
            except ReproError:
                continue
        return False, None, attempts
    finally:
        for address in down:
            network.set_node_up(address, True)


class FloodDetector:
    """Token-bucket abnormality detector at an S-server (§VI.D).

    *"they can do so when detecting abnormalities since an honest patient's
    PHI data are usually trivial in comparison to the storage capacity"* —
    a client sustaining more than ``rate_per_s`` uploads is flagged, and
    the server may drop (delete) the flood's uploads.
    """

    def __init__(self, rate_per_s: float, burst: int) -> None:
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens: dict[bytes, float] = {}
        self._last: dict[bytes, float] = {}
        self.flagged: set[bytes] = set()

    def allow(self, client: bytes, now: float) -> bool:
        """True when the upload is within the honest envelope."""
        tokens = self._tokens.get(client, float(self.burst))
        last = self._last.get(client, now)
        tokens = min(self.burst, tokens + (now - last) * self.rate_per_s)
        self._last[client] = now
        if tokens < 1.0:
            self.flagged.add(client)
            self._tokens[client] = tokens
            return False
        self._tokens[client] = tokens - 1.0
        return True


@dataclass(frozen=True)
class FloodSimulationReport:
    """Outcome of an event-driven flooding attack on one S-server."""

    attacker_uploads_sent: int
    attacker_uploads_accepted: int
    honest_uploads_sent: int
    honest_uploads_accepted: int
    attacker_flagged: bool

    @property
    def honest_acceptance(self) -> float:
        if not self.honest_uploads_sent:
            return 1.0
        return self.honest_uploads_accepted / self.honest_uploads_sent


def simulate_flood(duration_s: float = 60.0,
                   attacker_rate_per_s: float = 50.0,
                   honest_interval_s: float = 10.0,
                   detector: FloodDetector | None = None
                   ) -> FloodSimulationReport:
    """Event-driven §VI.D flooding scenario.

    An attacker floods uploads at ``attacker_rate_per_s`` while an honest
    patient uploads every ``honest_interval_s``; the S-server's
    token-bucket detector drops the flood ("delete … when detecting
    abnormalities") while honest traffic passes untouched.
    """
    from repro.net.sim import EventScheduler
    detector = detector or FloodDetector(rate_per_s=1.0, burst=5)
    scheduler = EventScheduler()
    counts = {"attacker_sent": 0, "attacker_ok": 0,
              "honest_sent": 0, "honest_ok": 0}

    def attacker_upload() -> None:
        counts["attacker_sent"] += 1
        if detector.allow(b"attacker", scheduler.clock.now):
            counts["attacker_ok"] += 1
        if scheduler.clock.now + 1.0 / attacker_rate_per_s < duration_s:
            scheduler.schedule(1.0 / attacker_rate_per_s, attacker_upload)

    def honest_upload() -> None:
        counts["honest_sent"] += 1
        if detector.allow(b"honest-patient", scheduler.clock.now):
            counts["honest_ok"] += 1
        if scheduler.clock.now + honest_interval_s < duration_s:
            scheduler.schedule(honest_interval_s, honest_upload)

    scheduler.schedule(0.0, attacker_upload)
    scheduler.schedule(1.0, honest_upload)
    scheduler.run(until=duration_s)
    return FloodSimulationReport(
        attacker_uploads_sent=counts["attacker_sent"],
        attacker_uploads_accepted=counts["attacker_ok"],
        honest_uploads_sent=counts["honest_sent"],
        honest_uploads_accepted=counts["honest_ok"],
        attacker_flagged=b"attacker" in detector.flagged,
    )
