"""Replay and tampering attacks on protocol messages.

The paper's envelopes carry timestamps specifically "to prevent replay
attack [26]" and HMACs "for ensuring message integrity".  These helpers
mount the corresponding attacks against a receiver so tests and the
attack-surface benchmark can confirm both defences hold:

* :func:`replay_envelope` — re-present a previously accepted envelope.
* :func:`delayed_envelope` — present an envelope after the skew window.
* :func:`tamper_payload` / :func:`tamper_timestamp` — bit-flip attacks.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.protocols.messages import (Envelope, ReplayGuard,
                                           open_envelope)
from repro.exceptions import IntegrityError, ReplayError


def replay_envelope(key: bytes, envelope: Envelope, guard: ReplayGuard,
                    now: float) -> bool:
    """Deliver the same envelope twice; True when the replay was *accepted*
    (i.e. the defence failed)."""
    open_envelope(key, envelope, now, guard)
    try:
        open_envelope(key, envelope, now, guard)
        return True
    except ReplayError:
        return False


def delayed_envelope(key: bytes, envelope: Envelope, now_late: float) -> bool:
    """Deliver far outside the skew window; True when accepted (failure)."""
    try:
        open_envelope(key, envelope, now_late)
        return True
    except ReplayError:
        return False


def tamper_payload(key: bytes, envelope: Envelope, now: float) -> bool:
    """Flip a payload bit; True when the MAC still verified (failure)."""
    if not envelope.payload:
        return False
    mutated = bytes([envelope.payload[0] ^ 0x01]) + envelope.payload[1:]
    forged = replace(envelope, payload=mutated)
    try:
        open_envelope(key, forged, now)
        return True
    except IntegrityError:
        return False


def tamper_timestamp(key: bytes, envelope: Envelope, now: float) -> bool:
    """Backdate the timestamp; True when accepted (failure)."""
    forged = replace(envelope, timestamp=envelope.timestamp - 1.0)
    try:
        open_envelope(key, forged, now)
        return True
    except IntegrityError:
        return False
