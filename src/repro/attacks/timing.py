"""Timing analysis — paper §VI.C, executable.

*"Timing analysis is performed by powerful attackers who can follow the
routine of the patient, narrowing down the time range when the patient
will upload his PHI files (e.g., after the patient returns from the
hospital) … The most effective countermeasure may be to employ some
scheduling technique to randomize the uploads and minimize the
correlation.  A PRF or PRG with a random seed would suffice."*

Model: the patient visits the hospital at known times; each visit produces
an upload.  The naive client uploads a fixed small delay after the visit;
the scheduled client draws the delay from a PRF-seeded distribution over a
wide window.  :func:`visit_upload_correlation` quantifies the linkability
with Pearson correlation between visit times and the attacker's best
alignment of observed upload times — the statistic experiment E11 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.prf import prf_int
from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError


@dataclass(frozen=True)
class TimingTrace:
    visit_times: list[float]
    upload_times: list[float]


class UploadScheduler:
    """PRF-randomized upload scheduling (the paper's countermeasure)."""

    def __init__(self, seed: bytes, window_s: float = 72 * 3600.0) -> None:
        if window_s <= 0:
            raise ParameterError("window must be positive")
        self._seed = seed
        self.window_s = window_s

    def upload_time(self, visit_index: int, visit_time: float) -> float:
        """Deterministic PRF delay in [0, window) after the visit."""
        delay_ms = prf_int(self._seed,
                           b"upload:" + visit_index.to_bytes(8, "big"),
                           int(self.window_s * 1000))
        return visit_time + delay_ms / 1000.0


def generate_visits(rng: HmacDrbg, n_visits: int,
                    mean_gap_days: float = 30.0) -> list[float]:
    """Hospital-visit arrival times (Poisson-ish renewal process)."""
    if n_visits < 1:
        raise ParameterError("need at least one visit")
    times = []
    t = 0.0
    for _ in range(n_visits):
        t += rng.expovariate(1.0 / (mean_gap_days * 86400.0))
        times.append(t)
    return times


def naive_upload_times(visit_times: list[float],
                       fixed_delay_s: float = 3600.0) -> list[float]:
    """The undefended behaviour: upload an hour after getting home."""
    return [t + fixed_delay_s for t in visit_times]


def scheduled_upload_times(visit_times: list[float],
                           scheduler: UploadScheduler) -> list[float]:
    return [scheduler.upload_time(i, t) for i, t in enumerate(visit_times)]


def visit_upload_correlation(trace: TimingTrace) -> float:
    """Attacker statistic: correlation of visit→next-upload delays.

    The attacker pairs each visit with the first upload following it and
    asks how concentrated (predictable) the delays are; we report
    1 − (delay spread / window proxy) folded into a [0, 1] predictability
    score via the coefficient of variation: tight fixed delays score near
    1, PRF-spread delays score near 0.
    """
    if len(trace.visit_times) != len(trace.upload_times):
        raise ParameterError("trace length mismatch")
    uploads = sorted(trace.upload_times)
    delays = []
    for visit in trace.visit_times:
        following = [u for u in uploads if u >= visit]
        if not following:
            continue
        delays.append(following[0] - visit)
    if len(delays) < 2:
        return 1.0
    mean = sum(delays) / len(delays)
    if mean == 0:
        return 1.0
    variance = sum((d - mean) ** 2 for d in delays) / (len(delays) - 1)
    coefficient_of_variation = (variance ** 0.5) / mean
    # CV ≈ 0 → perfectly predictable → score 1; CV ≥ 1 → score → 0.
    return 1.0 / (1.0 + coefficient_of_variation ** 2)
