"""Attack simulations and countermeasures — paper §VI, executable.

* :mod:`~repro.attacks.collusion` — coalition enumeration (§VI.A)
* :mod:`~repro.attacks.traffic_analysis` — profiling + origin tracing (§VI.B)
* :mod:`~repro.attacks.timing` — upload-timing correlation (§VI.C)
* :mod:`~repro.attacks.dos` — availability under server loss (§VI.D)
* :mod:`~repro.attacks.replay` — envelope replay / tampering
"""
