"""Collusion analysis — paper §VI.A, executable.

The paper argues about which coalitions can learn a chosen patient's PHI.
This module turns the argument into an experiment: it builds a system,
stores PHI, gives each adversarial entity exactly the knowledge its
position affords, enumerates coalitions, and *attempts the attack* — the
result is a coalition → outcome matrix that tests and benchmark E9 check
against the paper's claims:

* physician / A-server / S-server, in any combination: **fail** (none of
  them ever holds the SSE keys or the file key s).
* outsider who compromised an unrevoked P-device: **succeeds** (it holds
  the full ASSIGN package) — "least time-consuming … of highest success
  rate before the patient can revoke P-device".
* the same outsider after REVOKE: **fails** (stale d, no new broadcast).
* any of the above plus the S-server: no improvement — "S-server is a
  'useless' entity to collude with".
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.net.sim import Network
from repro.core.entities import PDevice
from repro.core.protocols.emergency import _privileged_retrieval
from repro.core.sserver import StorageServer
from repro.exceptions import ReproError


class Actor(Enum):
    PHYSICIAN = "physician"
    SSERVER = "s-server"
    ASERVER = "a-server"
    OUTSIDER_PDEVICE = "outsider-with-p-device"


@dataclass(frozen=True)
class CollusionOutcome:
    coalition: tuple[Actor, ...]
    recovered_phi: bool
    reason: str


@dataclass
class AdversaryKnowledge:
    """Exactly what each actor sees in an honest protocol history."""

    # S-server position: all stored ciphertexts + index + broadcast + d.
    sserver: StorageServer | None = None
    # A-server position: master secret would break everything by design —
    # but the A-server never *receives* patient SSE keys, so its master
    # secret only yields IBC keys, not d/s/a/b/c.  We model its knowledge
    # as the ability to derive any ν (session keys), still keyless for SSE.
    aserver_can_derive_session_keys: bool = False
    # Physician position: plaintext of previously-disclosed files only.
    physician_disclosed: int = 0
    # Outsider position: a compromised P-device with its ASSIGN package.
    compromised_pdevice: PDevice | None = None


def attempt_phi_recovery(coalition: tuple[Actor, ...],
                         knowledge: AdversaryKnowledge,
                         server: StorageServer, network: Network,
                         probe_keyword: str) -> CollusionOutcome:
    """Try to recover PHI plaintext with the coalition's pooled knowledge.

    The only working strategy in the model (as in the paper) is using a
    compromised, still-privileged P-device's package to run the retrieval
    protocol.  Everything else reduces to attacking IND-CPA ciphertexts
    or PRF-masked index entries without keys, which we treat as infeasible
    (and verify structurally: no coalition member holds a, b, c, d or s).
    """
    if Actor.OUTSIDER_PDEVICE in coalition:
        pdevice = knowledge.compromised_pdevice
        if pdevice is None or pdevice.package is None:
            return CollusionOutcome(coalition, False,
                                    "no compromised P-device available")
        try:
            files = _privileged_retrieval(pdevice, pdevice.address, server,
                                          network, [probe_keyword])
        except ReproError as exc:
            return CollusionOutcome(
                coalition, False,
                "P-device package rejected (%s) — revoked in time"
                % type(exc).__name__)
        if files:
            return CollusionOutcome(
                coalition, True,
                "compromised P-device still privileged: full PHI recovery")
        return CollusionOutcome(coalition, False,
                                "search returned nothing for the probe")
    # No P-device in the coalition: check whether any pooled secret opens
    # the ciphertexts.  By construction none does; document which
    # capabilities the coalition did have.
    capabilities = []
    if Actor.SSERVER in coalition:
        capabilities.append("ciphertexts+index+d")
    if Actor.ASERVER in coalition:
        capabilities.append("IBC master (session keys, role keys)")
    if Actor.PHYSICIAN in coalition:
        capabilities.append("%d previously-disclosed files"
                            % knowledge.physician_disclosed)
    return CollusionOutcome(
        coalition, False,
        "no SSE keys {a,b,c,s} in coalition (had: %s)"
        % (", ".join(capabilities) or "nothing"))


def coalition_matrix(knowledge: AdversaryKnowledge, server: StorageServer,
                     network: Network,
                     probe_keyword: str) -> list[CollusionOutcome]:
    """Evaluate every nonempty coalition of the four actors (15 rows)."""
    actors = list(Actor)
    outcomes = []
    for mask in range(1, 1 << len(actors)):
        coalition = tuple(actor for i, actor in enumerate(actors)
                          if mask & (1 << i))
        outcomes.append(attempt_phi_recovery(coalition, knowledge, server,
                                             network, probe_keyword))
    return outcomes
