"""Traffic analysis — paper §VI.B, executable.

Two attacker categories from the paper:

1. **Search-pattern profiling** at the S-server: previous searches leak
   (a) which table addresses were touched and (b) whether two searches
   used the same keyword.  :class:`SearchPatternProfiler` mounts exactly
   this from the server's observation log; the *keyword-flexibility*
   countermeasure (multiple alias keywords → the same file set) lowers its
   accuracy at the cost of a larger index — the trade-off E10 sweeps.

2. **Network-origin tracing**: link a storage/retrieval flow to the
   patient by the source address of the traffic.  :class:`OriginTracer`
   mounts it over the simulated network log; routing flows through the
   onion overlay removes the patient's address from every (src → S-server)
   edge, driving linkage to chance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import HmacDrbg
from repro.net.sim import MessageRecord
from repro.core.sserver import Observation
from repro.exceptions import ParameterError


# ---------------------------------------------------------------------------
# Category 1: search-pattern profiling at the S-server
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ProfilingReport:
    """What the profiler could and could not conclude."""

    total_searches: int
    distinct_addresses: int
    repeated_query_pairs: int       # searches provably for the same keyword
    linkage_accuracy: float         # fraction of true pairs detected


class SearchPatternProfiler:
    """An honest-but-curious S-server operator profiling searches.

    The profiler sees, per search, the table address ℓ_c(kw) (from the
    trapdoor).  Two searches with the same address *provably* used the
    same keyword (property (b) in the paper).  Given ground truth (which
    experiment code knows), :meth:`report` scores how much of the true
    same-keyword structure the leak reveals.
    """

    def __init__(self, observations: list[Observation]) -> None:
        self._searches = [o for o in observations
                          if o.kind in ("search", "search-wrapped")]

    def report(self, ground_truth_keywords: list[str]) -> ProfilingReport:
        if len(ground_truth_keywords) != len(self._searches):
            raise ParameterError(
                "ground truth length %d != observed searches %d"
                % (len(ground_truth_keywords), len(self._searches)))
        addresses = [o.detail for o in self._searches]
        # True same-keyword pairs vs. pairs the address leak exposes.
        true_pairs = 0
        detected = 0
        n = len(addresses)
        for i in range(n):
            for j in range(i + 1, n):
                same_kw = ground_truth_keywords[i] == ground_truth_keywords[j]
                same_addr = addresses[i] == addresses[j]
                if same_kw:
                    true_pairs += 1
                    if same_addr:
                        detected += 1
        accuracy = detected / true_pairs if true_pairs else 1.0
        return ProfilingReport(
            total_searches=n,
            distinct_addresses=len(set(addresses)),
            repeated_query_pairs=detected,
            linkage_accuracy=accuracy)


def keyword_flex_aliases(keyword: str, n_aliases: int) -> list[str]:
    """The paper's countermeasure: several keywords leading to one file set.

    The patient indexes each file under ``keyword`` *and* n−1 aliases, and
    rotates which one each query uses — repeated queries then hit distinct
    table addresses.  Costs: keyword-index growth linear in n (measured by
    E10's ablation).
    """
    if n_aliases < 1:
        raise ParameterError("need at least one alias")
    return [keyword] + ["%s-alias-%d" % (keyword, i)
                        for i in range(1, n_aliases)]


class AliasRotation:
    """Client-side helper cycling through a keyword's aliases per query."""

    def __init__(self, aliases: dict[str, list[str]]) -> None:
        self._aliases = aliases
        self._cursor: dict[str, int] = {}

    def next_alias(self, keyword: str) -> str:
        options = self._aliases.get(keyword, [keyword])
        index = self._cursor.get(keyword, 0)
        self._cursor[keyword] = (index + 1) % len(options)
        return options[index]


# ---------------------------------------------------------------------------
# Category 2: network-origin tracing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TracingReport:
    flows_to_server: int
    correctly_attributed: int

    @property
    def accuracy(self) -> float:
        if self.flows_to_server == 0:
            return 0.0
        return self.correctly_attributed / self.flows_to_server


class OriginTracer:
    """An eavesdropper at the S-server's uplink attributing flows.

    Strategy: the source address of any packet arriving at the server *is*
    the patient — correct without an anonymity layer, and defeated by
    onion routing, where the arriving source is always an exit relay.
    """

    def __init__(self, server_address: str) -> None:
        self.server_address = server_address

    def report(self, log: list[MessageRecord],
               true_patient_address: str) -> TracingReport:
        inbound = [r for r in log if r.dst == self.server_address
                   and not r.label.startswith("mhi")]
        correct = sum(1 for r in inbound if r.src == true_patient_address)
        return TracingReport(flows_to_server=len(inbound),
                             correctly_attributed=correct)


def pseudonym_linkage_probability(n_sessions: int,
                                  rotate_pseudonyms: bool,
                                  rng: HmacDrbg) -> float:
    """Model the pseudonym-linkage side channel.

    Without rotation every session presents the same TP_p, so all sessions
    link trivially (probability 1).  With per-session self-generation the
    best the attacker can do is guess among the candidate population, which
    we model as chance over the session count.
    """
    if n_sessions < 1:
        raise ParameterError("need at least one session")
    if not rotate_pseudonyms:
        return 1.0
    guesses = [rng.randrange(n_sessions) == 0 for _ in range(n_sessions)]
    return sum(guesses) / n_sessions
