"""The keyword index KI — the patient's private reference (§IV.A).

The paper: *"The patient creates a keyword index KI for SSE recording the
association of all keywords and their resulting files, before encrypting
the PHI files. The keyword index is for the patient's own reference to
facilitate future retrievals"* — and §IV.D adds that KI also records *"the
network address information of S-servers for each stored PHI file
collection"*, which is what makes cross-hospital retrieval work.

KI lives on the patient's PC / cell phone (and is shipped to family and
P-device in ASSIGN); the S-server never sees it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ehr.records import PhiFile
from repro.exceptions import ParameterError


@dataclass
class KeywordIndex:
    """keyword → fids, fid → keywords, and fid → S-server address."""

    keyword_to_fids: dict[str, list[bytes]] = field(default_factory=dict)
    fid_to_keywords: dict[bytes, tuple[str, ...]] = field(default_factory=dict)
    fid_to_server: dict[bytes, str] = field(default_factory=dict)

    # -- building -----------------------------------------------------------
    def add_file(self, phi_file: PhiFile, server_address: str) -> None:
        """Index one PHI file under all of its keywords."""
        if phi_file.fid in self.fid_to_keywords:
            raise ParameterError("fid already indexed (duplicate file)")
        self.fid_to_keywords[phi_file.fid] = phi_file.keywords
        self.fid_to_server[phi_file.fid] = server_address
        for keyword in phi_file.keywords:
            self.keyword_to_fids.setdefault(keyword, []).append(phi_file.fid)

    def remove_file(self, fid: bytes) -> None:
        """Drop a file from the index (before a re-upload)."""
        keywords = self.fid_to_keywords.pop(fid, ())
        self.fid_to_server.pop(fid, None)
        for keyword in keywords:
            fids = self.keyword_to_fids.get(keyword, [])
            if fid in fids:
                fids.remove(fid)
            if not fids:
                self.keyword_to_fids.pop(keyword, None)

    # -- queries ---------------------------------------------------------
    def fids_for(self, keyword: str) -> list[bytes]:
        return list(self.keyword_to_fids.get(keyword, []))

    def servers_for(self, keyword: str) -> dict[str, list[bytes]]:
        """Group a keyword's fids by the S-server holding them.

        This drives cross-hospital retrieval: one search message per
        distinct server (§V.A availability).
        """
        grouped: dict[str, list[bytes]] = {}
        for fid in self.fids_for(keyword):
            grouped.setdefault(self.fid_to_server[fid], []).append(fid)
        return grouped

    def keywords(self) -> list[str]:
        return sorted(self.keyword_to_fids)

    def file_count(self) -> int:
        return len(self.fid_to_keywords)

    def pair_count(self) -> int:
        """Total (keyword, fid) pairs — the SSE node count."""
        return sum(len(fids) for fids in self.keyword_to_fids.values())

    # -- serialization (for ASSIGN messages) ---------------------------------
    def to_bytes(self) -> bytes:
        rows = []
        for fid in sorted(self.fid_to_keywords):
            keywords = "\x1f".join(self.fid_to_keywords[fid])
            server = self.fid_to_server.get(fid, "")
            rows.append(fid.hex() + "\x1e" + keywords + "\x1e" + server)
        return "\x1d".join(rows).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "KeywordIndex":
        index = cls()
        if not data:
            return index
        for row in data.decode().split("\x1d"):
            fid_hex, keywords_blob, server = row.split("\x1e")
            fid = bytes.fromhex(fid_hex)
            keywords = tuple(k for k in keywords_blob.split("\x1f") if k)
            index.fid_to_keywords[fid] = keywords
            index.fid_to_server[fid] = server
            for keyword in keywords:
                index.keyword_to_fids.setdefault(keyword, []).append(fid)
        return index

    def size_bytes(self) -> int:
        return len(self.to_bytes())
