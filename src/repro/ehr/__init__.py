"""EHR data layer: PHI records, keyword index/dictionary, MHI streams."""

from repro.ehr.dictionary import KeywordDictionary
from repro.ehr.keyindex import KeywordIndex
from repro.ehr.phi import PhiCollection, generate_workload
from repro.ehr.records import Category, PhiFile, make_phi_file, new_fid

__all__ = ["KeywordDictionary", "KeywordIndex", "PhiCollection",
           "generate_workload", "Category", "PhiFile", "make_phi_file",
           "new_fid"]
