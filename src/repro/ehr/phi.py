"""PHI collection management + synthetic workload generation.

:class:`PhiCollection` groups a patient's :class:`~repro.ehr.records.PhiFile`
objects, derives the keyword → fid map the SSE BuildIndex consumes, and
keeps the :class:`~repro.ehr.keyindex.KeywordIndex` in sync.

:func:`generate_workload` builds realistic synthetic PHI corpora (the
paper's motivating categories, populated with plausible clinical notes)
used by the examples and every benchmark's workload generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import HmacDrbg
from repro.ehr.dictionary import KeywordDictionary, canonicalize
from repro.ehr.keyindex import KeywordIndex
from repro.ehr.records import Category, PhiFile, make_phi_file
from repro.exceptions import ParameterError


@dataclass
class PhiCollection:
    """A patient's plaintext file collection F plus its keyword index KI."""

    files: dict[bytes, PhiFile] = field(default_factory=dict)
    index: KeywordIndex = field(default_factory=KeywordIndex)

    def add(self, phi_file: PhiFile, server_address: str) -> None:
        if phi_file.fid in self.files:
            raise ParameterError("duplicate fid in collection")
        self.files[phi_file.fid] = phi_file
        self.index.add_file(phi_file, server_address)

    def remove(self, fid: bytes) -> None:
        self.files.pop(fid, None)
        self.index.remove_file(fid)

    def keyword_map(self) -> dict[str, list[bytes]]:
        """keyword → [fid] for SSE BuildIndex."""
        return {kw: self.index.fids_for(kw) for kw in self.index.keywords()}

    def plaintext_map(self) -> dict[bytes, bytes]:
        """fid → serialized plaintext for E′ encryption."""
        return {fid: f.to_bytes() for fid, f in self.files.items()}

    def total_plaintext_bytes(self) -> int:
        """α before padding: the paper's 'total size of the plaintext file
        collection in bytes'."""
        return sum(f.size_bytes() for f in self.files.values())

    def __len__(self) -> int:
        return len(self.files)


# ---------------------------------------------------------------------------
# Synthetic workload generation
# ---------------------------------------------------------------------------

_NOTE_TEMPLATES: dict[Category, list[tuple[str, list[str]]]] = {
    Category.ALLERGIES: [
        ("Severe allergy to {kw}; carries epinephrine auto-injector.",
         ["penicillin", "aspirin", "antibiotic"]),
        ("Mild seasonal rhinitis; no known drug allergies besides {kw}.",
         ["penicillin", "opioid"]),
    ],
    Category.DRUG_HISTORY: [
        ("Long-term {kw} therapy, last reviewed at annual checkup.",
         ["warfarin", "statin", "metformin", "insulin", "beta-blocker"]),
        ("Discontinued {kw} after adverse reaction; see allergy list.",
         ["ace-inhibitor", "opioid", "aspirin"]),
    ],
    Category.XRAY: [
        ("Chest radiograph: no acute findings. Follow-up for {kw}.",
         ["pneumonia", "fracture"]),
        ("Left wrist series after fall: hairline {kw} noted.",
         ["fracture"]),
    ],
    Category.SURGERIES: [
        ("Laparoscopic appendectomy for acute {kw}; uneventful recovery.",
         ["appendicitis"]),
        ("{kw} implanted; device interrogation scheduled quarterly.",
         ["pacemaker", "defibrillator"]),
    ],
    Category.LAB_RESULTS: [
        ("Fasting {kw} elevated; lifestyle counseling provided.",
         ["glucose"]),
        ("INR in range on current {kw} dose.",
         ["warfarin"]),
    ],
    Category.DIAGNOSES: [
        ("Stage 2 {kw}, managed with diet and medication.",
         ["hypertension", "diabetes"]),
        ("History of {kw}; on prophylactic therapy.",
         ["migraine", "epilepsy", "asthma", "arrhythmia"]),
    ],
    Category.CARDIOLOGY: [
        ("Prior {kw}; ejection fraction 45%, on beta-blocker.",
         ["heart-attack", "heart-failure"]),
        ("Holter monitor: intermittent {kw}, anticoagulation discussed.",
         ["arrhythmia"]),
    ],
    Category.IMMUNIZATIONS: [
        ("Routine immunization record updated; {kw} booster given.",
         ["antibiotic"]),
    ],
    Category.MENTAL_HEALTH: [
        ("Outpatient counseling notes; {kw} screening negative.",
         ["outpatient"]),
    ],
    Category.INSURANCE: [
        ("Coverage verification for {kw} procedures.",
         ["dialysis", "transfusion", "radiology"]),
    ],
}

_FIRST_NAMES = ["Alex", "Sam", "Jordan", "Taylor", "Morgan", "Casey",
                "Riley", "Jamie", "Avery", "Quinn"]
_LAST_NAMES = ["Chen", "Garcia", "Smith", "Johnson", "Patel", "Kim",
               "Nguyen", "Brown", "Davis", "Lopez"]


def generate_workload(rng: HmacDrbg, n_files: int,
                      server_address: str = "sserver://hospital-0",
                      dictionary: KeywordDictionary | None = None,
                      patient_name: str | None = None) -> PhiCollection:
    """Generate a synthetic PHI collection of ``n_files`` files.

    Files are spread across categories with clinically plausible notes;
    each carries its category keyword plus 1–3 condition keywords, all
    canonical per the dictionary syntax.
    """
    if n_files < 1:
        raise ParameterError("need at least one file")
    dictionary = dictionary or KeywordDictionary()
    if patient_name is None:
        patient_name = "%s %s" % (rng.choice(_FIRST_NAMES),
                                  rng.choice(_LAST_NAMES))
    collection = PhiCollection()
    categories = list(_NOTE_TEMPLATES)
    for i in range(n_files):
        category = categories[i % len(categories)]
        template, candidate_kws = rng.choice(_NOTE_TEMPLATES[category])
        primary = rng.choice(candidate_kws)
        note = template.format(kw=primary.replace("-", " "))
        keywords = {category.value, primary}
        # 0–2 extra cross-cutting keywords for realistic overlap.
        extras = rng.randint(0, 2)
        vocabulary = dictionary.words()
        for _ in range(extras):
            keywords.add(rng.choice(vocabulary))
        phi_file = make_phi_file(
            rng=rng,
            category=category,
            keywords=sorted(canonicalize(k) for k in keywords),
            medical_content=note,
            patient_fields={"name": patient_name,
                            "mrn": "MRN%06d" % rng.randint(0, 999999)},
            created_at=float(i) * 86400.0,
        )
        collection.add(phi_file, server_address)
    return collection
