"""Population-scale simulation: many patients, many hospitals.

The paper argues HCPP is deployable at healthcare-system scale ("S-servers
are distributed across the area", §VI.D; O(N) per-patient server storage,
§V.B).  This module drives that claim: it builds a population of patients
over a multi-hospital deployment, gives each a synthetic PHI workload and
a visit schedule, and runs the storage/retrieval protocol mix — producing
the aggregate numbers (per-server storage, message volume, retrieval
latency distribution, pseudonym counts) the scalability experiment (E16,
an extension beyond the paper's analysis) reports.

All per-patient state is independent, so the simulation also doubles as a
fixture for cross-patient unlinkability checks: the servers' observation
logs can be mined to confirm no identity signal accumulates as the
population grows.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Iterator

from repro.crypto.rng import HmacDrbg
from repro.ehr.phi import generate_workload
from repro.net.link import LinkClass
from repro.core.entities import Patient
from repro.core.protocols.retrieval import common_case_retrieval
from repro.core.protocols.storage import private_phi_storage
from repro.core.system import HcppSystem, build_system
from repro.exceptions import ParameterError


@dataclass
class PopulationReport:
    """Aggregates from one population run."""

    n_patients: int
    n_hospitals: int
    files_stored: int
    retrievals: int
    storage_messages: int
    retrieval_messages: int
    total_bytes: int
    server_storage_bytes: dict[str, int]
    retrieval_latencies: list[float] = field(default_factory=list)
    distinct_pseudonyms: int = 0

    @property
    def mean_retrieval_latency(self) -> float:
        if not self.retrieval_latencies:
            return 0.0
        return sum(self.retrieval_latencies) / len(self.retrieval_latencies)

    @property
    def per_patient_server_bytes(self) -> float:
        total = sum(self.server_storage_bytes.values())
        return total / self.n_patients if self.n_patients else 0.0


class PopulationSimulation:
    """Build and run a multi-patient HCPP deployment."""

    def __init__(self, n_patients: int, n_hospitals: int = 2,
                 files_per_patient: int = 8,
                 seed: bytes = b"population") -> None:
        if n_patients < 1:
            raise ParameterError("need at least one patient")
        self.system: HcppSystem = build_system(
            seed=seed, n_hospitals=n_hospitals)
        self.rng = HmacDrbg(seed + b"/population")
        self.files_per_patient = files_per_patient
        self.patients: list[Patient] = [self.system.patient]
        # Additional patients share the deployment; each gets its own
        # temporary pair from the state A-server and its own LAN links.
        for i in range(1, n_patients):
            pair = self.system.state.issue_temporary_pool(1)[0]
            patient = Patient("patient-%03d" % i, self.system.params,
                              self.system.state.public_key, pair,
                              self.rng.fork("patient-%d" % i))
            self.system.network.add_node(patient.address)
            for hospital in self.system.hospitals.values():
                self.system.network.connect(patient.address,
                                            hospital.sserver.address,
                                            LinkClass.WIRELESS)
            self.patients.append(patient)
        self._hospitals = list(self.system.hospitals.values())

    def _hospital_for(self, patient_index: int):
        return self._hospitals[patient_index % len(self._hospitals)]

    def store_all(self) -> None:
        """Every patient generates a workload and uploads it."""
        for i, patient in enumerate(self.patients):
            hospital = self._hospital_for(i)
            workload = generate_workload(
                self.rng.fork("workload-%d" % i), self.files_per_patient,
                server_address=hospital.sserver.address)
            patient.import_collection(workload)
            private_phi_storage(patient, hospital.sserver,
                                self.system.network)

    def run_retrievals(self, per_patient: int = 2) -> list[float]:
        """Each patient performs some keyword retrievals; returns latencies."""
        latencies = []
        for i, patient in enumerate(self.patients):
            hospital = self._hospital_for(i)
            keywords = patient.collection.index.keywords()
            for j in range(per_patient):
                keyword = keywords[(i + j) % len(keywords)]
                result = common_case_retrieval(
                    patient, hospital.sserver, self.system.network,
                    [keyword])
                latencies.append(result.stats.latency_s)
        return latencies

    def report(self, retrievals_per_patient: int = 2) -> PopulationReport:
        """Run the full mix and aggregate."""
        network = self.system.network
        self.store_all()
        storage_messages = len(network.log)
        latencies = self.run_retrievals(retrievals_per_patient)
        retrieval_messages = len(network.log) - storage_messages
        pseudonyms: set[bytes] = set()
        for hospital in self._hospitals:
            for observation in hospital.sserver.observations:
                pseudonyms.add(observation.pseudonym)
        return PopulationReport(
            n_patients=len(self.patients),
            n_hospitals=len(self._hospitals),
            files_stored=len(self.patients) * self.files_per_patient,
            retrievals=len(latencies),
            storage_messages=storage_messages,
            retrieval_messages=retrieval_messages,
            total_bytes=sum(r.nbytes for r in network.log),
            server_storage_bytes={
                h.name: h.sserver.total_storage_bytes()
                for h in self._hospitals},
            retrieval_latencies=latencies,
            distinct_pseudonyms=len(pseudonyms),
        )


# ---------------------------------------------------------------------------
# Population-scale workload generation (no crypto).
#
# ``PopulationSimulation`` builds real crypto objects per patient, which is
# right for protocol-level experiments but caps the population at a few
# hundred.  The federation benchmarks need healthcare-system scale — 100k+
# patients — where only the *shape* of the workload matters: which routing
# key each record lands on, and which keywords the query stream asks for.
# ``PopulationWorkload`` streams that shape lazily and deterministically
# without paying any pairing or SSE cost per patient.


@dataclass(frozen=True)
class SyntheticPatient:
    """A lightweight patient descriptor for population-scale runs."""

    patient_id: str
    routing_key: bytes          # 16-byte stable key, ring-compatible
    keywords: tuple[str, ...]   # Zipf-sampled from the shared vocabulary
    n_files: int


class ZipfSampler:
    """Inverse-CDF sampler for Zipf(s) over ranks ``0..n-1``.

    Rank ``r`` (0-based) has weight ``1 / (r + 1) ** exponent``; sampling
    bisects the precomputed cumulative weights, so each draw costs one
    uniform variate plus an O(log n) search — no numpy required.
    """

    def __init__(self, n: int, exponent: float = 1.07) -> None:
        if n < 1:
            raise ParameterError("Zipf support must be non-empty")
        if exponent <= 0:
            raise ParameterError("Zipf exponent must be positive")
        self.n = n
        self.exponent = exponent
        cdf: list[float] = []
        total = 0.0
        for rank in range(n):
            total += 1.0 / float(rank + 1) ** exponent
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def sample(self, u: float) -> int:
        """Map a uniform ``u`` in [0, 1) to a rank by inverse CDF."""
        index = bisect.bisect_right(self._cdf, u * self._total)
        return min(index, self.n - 1)


class _UniformStream:
    """Buffered uniform draws over an :class:`HmacDrbg`.

    ``HmacDrbg.random()`` pays a full key-update per draw; a 100k-patient
    stream needs ~half a million variates, so we pull the DRBG output in
    large blocks and slice 8-byte words from the buffer instead.
    """

    _CHUNK_WORDS = 4096

    def __init__(self, rng: HmacDrbg) -> None:
        self._rng = rng
        self._buf = b""
        self._pos = 0

    def next_u64(self) -> int:
        if self._pos >= len(self._buf):
            self._buf = self._rng.random_bytes(8 * self._CHUNK_WORDS)
            self._pos = 0
        word = int.from_bytes(self._buf[self._pos:self._pos + 8], "big")
        self._pos += 8
        return word

    def next_float(self) -> float:
        """A float in [0, 1)."""
        return self.next_u64() / float(1 << 64)

    def next_int(self, lo: int, hi: int) -> int:
        """An integer in the inclusive range [lo, hi].

        Uses modulo reduction: over a 2^64 word the bias for the small
        spans used here is below 2^-50, irrelevant for workload synthesis.
        """
        if lo > hi:
            raise ParameterError("next_int requires lo <= hi")
        return lo + self.next_u64() % (hi - lo + 1)


class PopulationWorkload:
    """Streaming, deterministic population-scale workload generator.

    Yields :class:`SyntheticPatient` descriptors and a Zipf-distributed
    query stream for populations of 100k+ without building any crypto
    state.  Every stream restarts from the seed, so two iterations of
    :meth:`patients` — or two interpreter runs — produce identical output.
    """

    def __init__(self, n_patients: int, *, vocabulary_size: int = 512,
                 zipf_exponent: float = 1.07,
                 files_per_patient: tuple[int, int] = (2, 8),
                 keywords_per_patient: tuple[int, int] = (2, 6),
                 seed: bytes = b"population-scale") -> None:
        if n_patients < 1:
            raise ParameterError("need at least one patient")
        if vocabulary_size < 1:
            raise ParameterError("vocabulary must be non-empty")
        lo, hi = files_per_patient
        if lo < 1 or hi < lo:
            raise ParameterError("files_per_patient must be 1 <= lo <= hi")
        klo, khi = keywords_per_patient
        if klo < 1 or khi < klo:
            raise ParameterError(
                "keywords_per_patient must be 1 <= lo <= hi")
        self.n_patients = n_patients
        self.files_per_patient = files_per_patient
        self.keywords_per_patient = keywords_per_patient
        self.seed = seed
        self.vocabulary = tuple("kw-%04d" % i for i in range(vocabulary_size))
        self._zipf = ZipfSampler(vocabulary_size, zipf_exponent)

    @staticmethod
    def routing_key_for(patient_id: str) -> bytes:
        """The stable 16-byte ring key for a synthetic patient.

        Same width as a real collection id, so the key feeds directly
        into :class:`repro.core.shard.HashRing` placement studies.
        """
        digest = hashlib.sha256(
            b"hcpp-population-routing:" + patient_id.encode())
        return digest.digest()[:16]

    def patients(self) -> Iterator[SyntheticPatient]:
        """Lazily stream every patient descriptor, in order."""
        stream = _UniformStream(HmacDrbg(self.seed, b"/patients"))
        lo, hi = self.files_per_patient
        klo, khi = self.keywords_per_patient
        for i in range(self.n_patients):
            patient_id = "patient-%07d" % i
            n_keywords = stream.next_int(klo, khi)
            # Zipf with rejection of duplicates within one patient: a
            # patient's chart lists each condition once.
            chosen: list[str] = []
            seen: set[int] = set()
            while len(chosen) < n_keywords:
                rank = self._zipf.sample(stream.next_float())
                if rank in seen:
                    continue
                seen.add(rank)
                chosen.append(self.vocabulary[rank])
            yield SyntheticPatient(
                patient_id=patient_id,
                routing_key=self.routing_key_for(patient_id),
                keywords=tuple(chosen),
                n_files=stream.next_int(lo, hi),
            )

    def queries(self, n: int) -> Iterator[tuple[int, str]]:
        """Stream ``n`` (patient_index, keyword) query pairs.

        Patients are drawn uniformly; keywords follow the same Zipf law
        as the stored records, so popular conditions dominate the search
        mix exactly as they dominate the index.
        """
        stream = _UniformStream(HmacDrbg(self.seed, b"/queries"))
        for _ in range(n):
            patient = stream.next_int(0, self.n_patients - 1)
            keyword = self.vocabulary[self._zipf.sample(stream.next_float())]
            yield patient, keyword

    def keyword_histogram(self, n_samples: int) -> dict[str, int]:
        """Empirical keyword frequency over ``n_samples`` Zipf draws."""
        stream = _UniformStream(HmacDrbg(self.seed, b"/histogram"))
        counts: dict[str, int] = {}
        for _ in range(n_samples):
            keyword = self.vocabulary[self._zipf.sample(stream.next_float())]
            counts[keyword] = counts.get(keyword, 0) + 1
        return counts
