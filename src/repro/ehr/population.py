"""Population-scale simulation: many patients, many hospitals.

The paper argues HCPP is deployable at healthcare-system scale ("S-servers
are distributed across the area", §VI.D; O(N) per-patient server storage,
§V.B).  This module drives that claim: it builds a population of patients
over a multi-hospital deployment, gives each a synthetic PHI workload and
a visit schedule, and runs the storage/retrieval protocol mix — producing
the aggregate numbers (per-server storage, message volume, retrieval
latency distribution, pseudonym counts) the scalability experiment (E16,
an extension beyond the paper's analysis) reports.

All per-patient state is independent, so the simulation also doubles as a
fixture for cross-patient unlinkability checks: the servers' observation
logs can be mined to confirm no identity signal accumulates as the
population grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.rng import HmacDrbg
from repro.ehr.phi import generate_workload
from repro.net.link import LinkClass
from repro.core.entities import Patient
from repro.core.protocols.retrieval import common_case_retrieval
from repro.core.protocols.storage import private_phi_storage
from repro.core.system import HcppSystem, build_system
from repro.exceptions import ParameterError


@dataclass
class PopulationReport:
    """Aggregates from one population run."""

    n_patients: int
    n_hospitals: int
    files_stored: int
    retrievals: int
    storage_messages: int
    retrieval_messages: int
    total_bytes: int
    server_storage_bytes: dict[str, int]
    retrieval_latencies: list[float] = field(default_factory=list)
    distinct_pseudonyms: int = 0

    @property
    def mean_retrieval_latency(self) -> float:
        if not self.retrieval_latencies:
            return 0.0
        return sum(self.retrieval_latencies) / len(self.retrieval_latencies)

    @property
    def per_patient_server_bytes(self) -> float:
        total = sum(self.server_storage_bytes.values())
        return total / self.n_patients if self.n_patients else 0.0


class PopulationSimulation:
    """Build and run a multi-patient HCPP deployment."""

    def __init__(self, n_patients: int, n_hospitals: int = 2,
                 files_per_patient: int = 8,
                 seed: bytes = b"population") -> None:
        if n_patients < 1:
            raise ParameterError("need at least one patient")
        self.system: HcppSystem = build_system(
            seed=seed, n_hospitals=n_hospitals)
        self.rng = HmacDrbg(seed + b"/population")
        self.files_per_patient = files_per_patient
        self.patients: list[Patient] = [self.system.patient]
        # Additional patients share the deployment; each gets its own
        # temporary pair from the state A-server and its own LAN links.
        for i in range(1, n_patients):
            pair = self.system.state.issue_temporary_pool(1)[0]
            patient = Patient("patient-%03d" % i, self.system.params,
                              self.system.state.public_key, pair,
                              self.rng.fork("patient-%d" % i))
            self.system.network.add_node(patient.address)
            for hospital in self.system.hospitals.values():
                self.system.network.connect(patient.address,
                                            hospital.sserver.address,
                                            LinkClass.WIRELESS)
            self.patients.append(patient)
        self._hospitals = list(self.system.hospitals.values())

    def _hospital_for(self, patient_index: int):
        return self._hospitals[patient_index % len(self._hospitals)]

    def store_all(self) -> None:
        """Every patient generates a workload and uploads it."""
        for i, patient in enumerate(self.patients):
            hospital = self._hospital_for(i)
            workload = generate_workload(
                self.rng.fork("workload-%d" % i), self.files_per_patient,
                server_address=hospital.sserver.address)
            patient.import_collection(workload)
            private_phi_storage(patient, hospital.sserver,
                                self.system.network)

    def run_retrievals(self, per_patient: int = 2) -> list[float]:
        """Each patient performs some keyword retrievals; returns latencies."""
        latencies = []
        for i, patient in enumerate(self.patients):
            hospital = self._hospital_for(i)
            keywords = patient.collection.index.keywords()
            for j in range(per_patient):
                keyword = keywords[(i + j) % len(keywords)]
                result = common_case_retrieval(
                    patient, hospital.sserver, self.system.network,
                    [keyword])
                latencies.append(result.stats.latency_s)
        return latencies

    def report(self, retrievals_per_patient: int = 2) -> PopulationReport:
        """Run the full mix and aggregate."""
        network = self.system.network
        self.store_all()
        storage_messages = len(network.log)
        latencies = self.run_retrievals(retrievals_per_patient)
        retrieval_messages = len(network.log) - storage_messages
        pseudonyms: set[bytes] = set()
        for hospital in self._hospitals:
            for observation in hospital.sserver.observations:
                pseudonyms.add(observation.pseudonym)
        return PopulationReport(
            n_patients=len(self.patients),
            n_hospitals=len(self._hospitals),
            files_stored=len(self.patients) * self.files_per_patient,
            retrievals=len(latencies),
            storage_messages=storage_messages,
            retrieval_messages=retrieval_messages,
            total_bytes=sum(r.nbytes for r in network.log),
            server_storage_bytes={
                h.name: h.sserver.total_storage_bytes()
                for h in self._hospitals},
            retrieval_latencies=latencies,
            distinct_pseudonyms=len(pseudonyms),
        )
