"""PHI records — the paper's health-record data model (§III.A).

The paper: *"we let the patient break the PHI into files for different
categories of health information (e.g., allergy lists, drug history, X-ray
data, surgeries, etc). Each category can also consist of multiple files."*
And: the patient encrypts *both* the identifying PHI fields and the
de-identified medical data together as one complete record, "to easily
maneuver the storage/retrieval for common-case treatment and emergencies".

:class:`PhiFile` is one such file: a category, a set of searchable
keywords, identifying fields, and the medical payload.  Serialization is a
simple length-prefixed format (no external deps) so files round-trip
byte-exactly through the E′ cipher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError

FID_BYTES = 16


class Category(Enum):
    """The paper's exemplary PHI categories (extensible)."""

    ALLERGIES = "allergies"
    DRUG_HISTORY = "drug-history"
    XRAY = "xray"
    SURGERIES = "surgeries"
    LAB_RESULTS = "lab-results"
    DIAGNOSES = "diagnoses"
    IMMUNIZATIONS = "immunizations"
    CARDIOLOGY = "cardiology"
    MENTAL_HEALTH = "mental-health"
    INSURANCE = "insurance"

    @classmethod
    def from_string(cls, value: str) -> "Category":
        for member in cls:
            if member.value == value:
                return member
        raise ParameterError("unknown PHI category %r" % value)


@dataclass(frozen=True)
class PhiFile:
    """One PHI file: identifying fields + de-identified medical content.

    ``fid`` is a random 16-byte identifier (assigned by
    :func:`new_fid`) — random so that the identifier itself links to no
    patient; the S-server only ever sees fids and ciphertext.
    """

    fid: bytes
    category: Category
    keywords: tuple[str, ...]
    patient_fields: dict[str, str] = field(default_factory=dict)
    medical_content: str = ""
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if len(self.fid) != FID_BYTES:
            raise ParameterError("fid must be %d bytes" % FID_BYTES)
        if not self.keywords:
            raise ParameterError("a PHI file needs at least one keyword")

    # -- serialization ------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Length-prefixed binary encoding (the plaintext handed to E′)."""
        def pack(data: bytes) -> bytes:
            return len(data).to_bytes(4, "big") + data

        parts = [
            self.fid,
            pack(self.category.value.encode()),
            pack("\x1f".join(self.keywords).encode()),
            pack("\x1e".join("%s\x1f%s" % kv
                             for kv in sorted(self.patient_fields.items()))
                 .encode()),
            pack(self.medical_content.encode()),
            int(self.created_at * 1000).to_bytes(8, "big"),
        ]
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "PhiFile":
        offset = 0

        def unpack() -> bytes:
            nonlocal offset
            length = int.from_bytes(data[offset:offset + 4], "big")
            offset += 4
            chunk = data[offset:offset + length]
            if len(chunk) != length:
                raise ParameterError("truncated PHI file encoding")
            offset += length
            return chunk

        fid = data[:FID_BYTES]
        offset = FID_BYTES
        category = Category.from_string(unpack().decode())
        keywords = tuple(k for k in unpack().decode().split("\x1f") if k)
        fields_blob = unpack().decode()
        patient_fields: dict[str, str] = {}
        if fields_blob:
            for pair in fields_blob.split("\x1e"):
                key, _, value = pair.partition("\x1f")
                patient_fields[key] = value
        medical_content = unpack().decode()
        created_at = int.from_bytes(data[offset:offset + 8], "big") / 1000.0
        return cls(fid=fid, category=category, keywords=keywords,
                   patient_fields=patient_fields,
                   medical_content=medical_content, created_at=created_at)

    def size_bytes(self) -> int:
        return len(self.to_bytes())


def new_fid(rng: HmacDrbg) -> bytes:
    """A fresh random 16-byte file identifier."""
    return rng.random_bytes(FID_BYTES)


def make_phi_file(rng: HmacDrbg, category: Category, keywords: list[str],
                  medical_content: str,
                  patient_fields: dict[str, str] | None = None,
                  created_at: float = 0.0) -> PhiFile:
    """Convenience constructor that assigns a fresh fid."""
    return PhiFile(fid=new_fid(rng), category=category,
                   keywords=tuple(keywords),
                   patient_fields=dict(patient_fields or {}),
                   medical_content=medical_content, created_at=created_at)
