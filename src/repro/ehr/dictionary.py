"""The keyword dictionary — HCPP's "agreed-upon syntax" (§IV.E).

The paper requires that *"the choice of keywords (also in the PHI
retrieval) must obey an agreed-upon syntax so that the physician will be
able to specify proper keywords for searching"*, and that the P-device
check entered keywords against a stored dictionary before searching.

:class:`KeywordDictionary` is that artifact: a canonicalizing, validating
set of legal keywords.  Canonical form is lowercase, hyphen-separated
tokens (``"Drug History" → "drug-history"``); date keywords follow
``YYYY-MM-DD`` and date-range keywords ``YYYY-MM-DD..YYYY-MM-DD`` (used by
the MHI path's "period of time" keywords).

:data:`STANDARD_MEDICAL_KEYWORDS` seeds a realistic default vocabulary so
examples and benchmarks share one terminology.
"""

from __future__ import annotations

import re

from repro.exceptions import ParameterError, SearchError

_TOKEN_RE = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")
_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_RANGE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}\.\.\d{4}-\d{2}-\d{2}$")

STANDARD_MEDICAL_KEYWORDS: tuple[str, ...] = (
    # categories
    "allergies", "drug-history", "xray", "surgeries", "lab-results",
    "diagnoses", "immunizations", "cardiology", "mental-health", "insurance",
    # conditions
    "hypertension", "diabetes", "asthma", "heart-attack", "heart-failure",
    "arrhythmia", "stroke", "pneumonia", "fracture", "concussion",
    "anaphylaxis", "sepsis", "appendicitis", "migraine", "epilepsy",
    # medications
    "penicillin", "aspirin", "warfarin", "insulin", "metformin",
    "beta-blocker", "statin", "ace-inhibitor", "opioid", "antibiotic",
    # vitals / MHI
    "heart-rate", "blood-pressure", "spo2", "glucose", "temperature",
    "ecg", "respiratory-rate",
    # care context
    "emergency", "icu", "outpatient", "pediatric", "oncology", "radiology",
    "anesthesia", "transfusion", "dialysis", "pacemaker", "defibrillator",
)


def canonicalize(raw: str) -> str:
    """Map free-form input to canonical keyword syntax.

    Lowercases, collapses whitespace/underscores to hyphens, strips other
    punctuation.  Raises :class:`ParameterError` when nothing survives.
    """
    lowered = raw.strip().lower()
    if _DATE_RE.match(lowered) or _RANGE_RE.match(lowered):
        return lowered
    collapsed = re.sub(r"[\s_]+", "-", lowered)
    cleaned = re.sub(r"[^a-z0-9-]", "", collapsed)
    cleaned = re.sub(r"-{2,}", "-", cleaned).strip("-")
    if not cleaned:
        raise ParameterError("keyword canonicalizes to nothing")
    return cleaned


def is_valid_syntax(keyword: str) -> bool:
    """True when ``keyword`` already obeys the agreed-upon syntax."""
    return bool(_TOKEN_RE.match(keyword) or _DATE_RE.match(keyword)
                or _RANGE_RE.match(keyword))


class KeywordDictionary:
    """The dictionary of all legal keywords (stored on the P-device).

    Per the emergency protocol: *"If the keywords result in a match in the
    dictionary, P-device proceeds to execute the PHI retrieval"* — i.e.
    :meth:`validate` gates every emergency search.
    """

    def __init__(self, keywords: tuple[str, ...] = STANDARD_MEDICAL_KEYWORDS,
                 allow_dates: bool = True) -> None:
        self._words: set[str] = set()
        self.allow_dates = allow_dates
        for kw in keywords:
            self.add(kw)

    def add(self, keyword: str) -> str:
        """Canonicalize and register a keyword; returns the canonical form."""
        canonical = canonicalize(keyword)
        if not is_valid_syntax(canonical):
            raise ParameterError("keyword violates the agreed syntax")
        self._words.add(canonical)
        return canonical

    def __contains__(self, keyword: str) -> bool:
        try:
            canonical = canonicalize(keyword)
        except ParameterError:
            return False
        if canonical in self._words:
            return True
        return self.allow_dates and bool(_DATE_RE.match(canonical)
                                         or _RANGE_RE.match(canonical))

    def validate(self, keywords: list[str]) -> list[str]:
        """Canonicalize a query; raise :class:`SearchError` on any miss.

        This is the P-device's dictionary gate: an emergency physician may
        only search terms the patient anticipated.
        """
        result = []
        for kw in keywords:
            if kw not in self:
                raise SearchError("a requested keyword is not in the "
                                  "dictionary")
            result.append(canonicalize(kw))
        return result

    def __len__(self) -> int:
        return len(self._words)

    def words(self) -> tuple[str, ...]:
        """Sorted canonical vocabulary (for serialization / ASSIGN)."""
        return tuple(sorted(self._words))

    def to_bytes(self) -> bytes:
        return "\x1f".join(self.words()).encode()

    @classmethod
    def from_bytes(cls, data: bytes, allow_dates: bool = True) -> "KeywordDictionary":
        words = tuple(w for w in data.decode().split("\x1f") if w)
        return cls(keywords=words, allow_dates=allow_dates)
