"""Monitored health information (MHI) — synthetic body-sensor substrate.

The paper defines MHI as *"the data collected by the monitoring equipments
(e.g., sensors) worn or carried by high-risk patients"*.  Real body-sensor
traces are not available offline, so per the substitution rule we generate
synthetic vital-sign streams that exercise the identical encrypt / PEKS /
retrieve code path:

* baseline physiology as slow sinusoids (circadian drift) plus Gaussian
  sensor noise,
* injectable *anomaly episodes* (tachycardia, hypertensive surge,
  desaturation) that model the "irregular heartbeat intervals, sudden
  surge in blood pressure" the paper says the emergency physician looks
  for in MHI,
* windowed packaging into :class:`MhiWindow` records, each tagged with
  the date keywords the P-device makes searchable (the paper's "the MHI
  collected on a particular day can be made searchable for each of the
  following, say, 5 days").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError


class VitalSign(Enum):
    HEART_RATE = "heart-rate"            # bpm
    SYSTOLIC_BP = "blood-pressure"       # mmHg
    SPO2 = "spo2"                        # %
    RESPIRATORY_RATE = "respiratory-rate"  # breaths/min


_BASELINES: dict[VitalSign, tuple[float, float, float]] = {
    # (mean, circadian amplitude, noise sigma)
    VitalSign.HEART_RATE: (72.0, 6.0, 2.5),
    VitalSign.SYSTOLIC_BP: (118.0, 8.0, 4.0),
    VitalSign.SPO2: (97.5, 0.5, 0.4),
    VitalSign.RESPIRATORY_RATE: (14.0, 2.0, 1.0),
}


class AnomalyKind(Enum):
    """Emergency-precursor episodes the generator can inject."""

    TACHYCARDIA = "tachycardia"          # HR spike
    HYPERTENSIVE = "hypertensive-surge"  # BP spike
    DESATURATION = "desaturation"        # SpO2 drop


_ANOMALY_EFFECTS: dict[AnomalyKind, dict[VitalSign, float]] = {
    AnomalyKind.TACHYCARDIA: {VitalSign.HEART_RATE: +65.0,
                              VitalSign.RESPIRATORY_RATE: +8.0},
    AnomalyKind.HYPERTENSIVE: {VitalSign.SYSTOLIC_BP: +55.0,
                               VitalSign.HEART_RATE: +15.0},
    AnomalyKind.DESATURATION: {VitalSign.SPO2: -9.0,
                               VitalSign.RESPIRATORY_RATE: +10.0},
}

#: clinically-motivated alarm thresholds used by detect_anomalies
ALARM_THRESHOLDS: dict[VitalSign, tuple[float, float]] = {
    VitalSign.HEART_RATE: (45.0, 120.0),
    VitalSign.SYSTOLIC_BP: (85.0, 160.0),
    VitalSign.SPO2: (92.0, 100.1),
    VitalSign.RESPIRATORY_RATE: (8.0, 24.0),
}


@dataclass(frozen=True)
class Sample:
    """One sensor reading: (seconds-from-start, vital, value)."""

    t: float
    vital: VitalSign
    value: float


@dataclass
class MhiWindow:
    """One day's worth of monitored data, ready for encryption.

    ``day`` is an ISO date string; ``searchable_days`` lists the dates
    under which this window should be findable (the paper's 5-day rule).
    """

    day: str
    samples: list[Sample] = field(default_factory=list)
    searchable_days: list[str] = field(default_factory=list)
    anomalies: list[tuple[float, AnomalyKind]] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        """Plaintext encoding handed to IBE for role encryption."""
        rows = ["%s|%.1f|%s|%.2f" % (self.day, s.t, s.vital.value, s.value)
                for s in self.samples]
        header = "MHI;" + self.day + ";" + ",".join(self.searchable_days)
        return ("\n".join([header] + rows)).encode()

    @classmethod
    def from_bytes(cls, data: bytes) -> "MhiWindow":
        lines = data.decode().split("\n")
        if not lines or not lines[0].startswith("MHI;"):
            raise ParameterError("not an MHI window encoding")
        _, day, days_blob = lines[0].split(";")
        window = cls(day=day,
                     searchable_days=[d for d in days_blob.split(",") if d])
        for row in lines[1:]:
            _, t, vital, value = row.split("|")
            window.samples.append(Sample(t=float(t),
                                         vital=VitalSign(vital),
                                         value=float(value)))
        return window

    def values_for(self, vital: VitalSign) -> list[float]:
        return [s.value for s in self.samples if s.vital is vital]


class VitalsGenerator:
    """Deterministic synthetic vitals for one monitored patient."""

    def __init__(self, rng: HmacDrbg, sample_interval_s: float = 300.0) -> None:
        if sample_interval_s <= 0:
            raise ParameterError("sample interval must be positive")
        self._rng = rng
        self.sample_interval_s = sample_interval_s

    def generate_day(self, day: str,
                     anomalies: list[tuple[float, AnomalyKind]] | None = None,
                     searchable_horizon_days: int = 5) -> MhiWindow:
        """One day of readings; ``anomalies`` = [(start_second, kind)].

        Each anomaly episode lasts 30 minutes with a raised-cosine onset
        and decay so the trace looks physiological rather than stepwise.
        """
        anomalies = list(anomalies or [])
        window = MhiWindow(day=day, anomalies=anomalies,
                           searchable_days=_horizon(day,
                                                    searchable_horizon_days))
        steps = int(86400 / self.sample_interval_s)
        episode_len = 1800.0
        for i in range(steps):
            t = i * self.sample_interval_s
            circadian = math.sin(2 * math.pi * (t / 86400.0 - 0.25))
            for vital, (mean, amplitude, sigma) in _BASELINES.items():
                value = mean + amplitude * circadian + self._rng.gauss(0, sigma)
                for start, kind in anomalies:
                    if start <= t < start + episode_len:
                        progress = (t - start) / episode_len
                        envelope = math.sin(math.pi * progress)
                        value += _ANOMALY_EFFECTS[kind].get(vital, 0.0) * envelope
                window.samples.append(Sample(t=t, vital=vital,
                                             value=round(value, 2)))
        return window


def _horizon(day: str, horizon: int) -> list[str]:
    """``day`` plus the following ``horizon``−1 ISO dates (no stdlib date
    arithmetic needed for the simple roll-over used in experiments)."""
    year, month, dom = (int(x) for x in day.split("-"))
    days_in_month = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]
    if year % 4 == 0 and (year % 100 != 0 or year % 400 == 0):
        days_in_month[1] = 29
    result = []
    for _ in range(horizon):
        result.append("%04d-%02d-%02d" % (year, month, dom))
        dom += 1
        if dom > days_in_month[month - 1]:
            dom = 1
            month += 1
            if month > 12:
                month = 1
                year += 1
    return result


def detect_anomalies(window: MhiWindow) -> list[tuple[float, VitalSign, float]]:
    """Threshold-based alarm detection (what the ER physician scans for).

    Returns (time, vital, value) triples breaching
    :data:`ALARM_THRESHOLDS`.
    """
    alarms = []
    for sample in window.samples:
        low, high = ALARM_THRESHOLDS[sample.vital]
        if sample.value < low or sample.value > high:
            alarms.append((sample.t, sample.vital, sample.value))
    return alarms
