"""repro — a full reproduction of HCPP (Sun, Zhu, Zhang, Fang; ICDCS 2011).

HCPP is a cryptography-based secure EHR system giving patients full
control of their protected health information (searchable symmetric
encryption on an untrusted storage server), while still supporting
break-glass emergency retrieval (family- and P-device-based), role-based
MHI access via PEKS, and physician accountability — all on an
identity-based crypto substrate built from scratch in this package.

Quickstart::

    from repro import build_system
    from repro.core.protocols.storage import private_phi_storage
    from repro.core.protocols.retrieval import common_case_retrieval

    system = build_system()
    # ... author PHI on system.patient, then:
    private_phi_storage(system.patient, system.sserver, system.network)
    result = common_case_retrieval(system.patient, system.sserver,
                                   system.network, ["allergies"])

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured results.
"""

from repro.core.system import HcppSystem, build_system
from repro.crypto.params import default_params, test_params
from repro.crypto.rng import HmacDrbg

__version__ = "1.0.0"
__all__ = ["HcppSystem", "build_system", "default_params", "test_params",
           "HmacDrbg", "__version__"]
