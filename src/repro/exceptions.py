"""Exception hierarchy for the HCPP reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish cryptographic failures (which usually
indicate tampering or a wrong key) from protocol-level failures (which
indicate misuse of the API or an access-control denial).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CryptoError(ReproError):
    """Base class for failures inside the cryptographic substrate."""


class ParameterError(CryptoError):
    """Invalid or inconsistent domain parameters."""


class NotOnCurveError(CryptoError):
    """A point failed the curve-membership check."""


class DecryptionError(CryptoError):
    """Ciphertext failed to decrypt (wrong key, or tampered)."""


class IntegrityError(CryptoError):
    """A MAC or signature check failed: the message was tampered with."""


class SignatureError(IntegrityError):
    """A digital / identity-based signature failed verification."""


class ProtocolError(ReproError):
    """Base class for HCPP protocol-level failures."""


class ReplayError(ProtocolError):
    """A protocol message carried a stale or duplicated timestamp."""


class AccessDenied(ProtocolError):
    """The requesting party does not hold the right to perform the action."""


class RevokedError(AccessDenied):
    """The acting entity's searching privilege has been revoked."""


class AuthenticationError(ProtocolError):
    """Identity authentication failed (e.g. physician not on duty)."""


class StorageError(ProtocolError):
    """The S-server could not satisfy a storage or retrieval request."""


class SearchError(StorageError):
    """A keyword search failed (unknown keyword or malformed trapdoor)."""


class DurabilityError(ReproError):
    """Base class for failures in the durable-state layer (journal,
    snapshots, crash recovery)."""


class JournalCorruptionError(DurabilityError):
    """Non-tail damage in the append-only journal (or a snapshot that
    fails its digest): the stored evidence cannot be trusted and must
    never be silently served."""


class RecoveryError(DurabilityError):
    """Crash recovery could not reconstruct the endpoint's state (a
    journaled mutation no longer replays, or a recovered audit log does
    not match its committed checkpoint)."""


class NetworkError(ReproError):
    """Base class for simulated-network failures."""


class TransportError(NetworkError):
    """A transport backend could not carry or dispatch a frame."""


class TransientTransportError(TransportError):
    """A frame delivery failed for a reason that may heal on its own
    (drop, timeout, refused connection, partition).  The only error a
    :class:`~repro.net.transport.faults.RetryPolicy` retries."""


class PartialResultError(TransportError):
    """A scattered request succeeded on some shards but not all: the
    response carries a *partial* result set (wire status ``PARTIAL``).

    Raised client-side by :func:`repro.core.wire.parse_response` so a
    caller that never opted into degraded results fails loudly instead
    of silently missing matches; callers that can tolerate degradation
    use :func:`repro.core.wire.parse_partial` to recover the available
    payload plus the list of unavailable shards.  Never retried by a
    :class:`~repro.net.transport.faults.RetryPolicy` — a partial answer
    is an answer, not a lost frame."""


class LinkDownError(NetworkError):
    """The link between two simulated nodes is unavailable."""


class NodeUnreachableError(NetworkError):
    """No route exists to the destination node (e.g. DoS-disabled)."""
