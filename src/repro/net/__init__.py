"""Simulated network substrate: event kernel, links, topology, onion overlay."""

from repro.net.clock import SimClock
from repro.net.link import DEFAULT_PROFILES, LinkClass, LinkProfile
from repro.net.sim import EventScheduler, MessageRecord, Network

__all__ = ["SimClock", "LinkClass", "LinkProfile", "DEFAULT_PROFILES",
           "EventScheduler", "MessageRecord", "Network"]
