"""Discrete-event network simulator.

Two layers:

* :class:`EventScheduler` — a classic heapq-based discrete-event kernel
  (schedule callbacks at absolute times, run until quiescent or a horizon).
  Used by the DoS and traffic-analysis experiments, which need many
  concurrent flows.
* :class:`Network` — the topology object: registered nodes, link classes
  per node pair, up/down state, and a message log.  The HCPP protocol
  layer talks to it through :meth:`Network.transmit`, a *sequential*
  request path (compute delay → advance the clock → log → deliver), which
  matches HCPP's strictly request/response protocols and keeps the
  protocol code free of callback plumbing.

Every transmission is recorded as a :class:`MessageRecord` so the
communication-cost experiments (E4, E8) read rounds / bytes / latency
straight off the log.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.crypto.rng import HmacDrbg
from repro.net.clock import SimClock
from repro.net.link import DEFAULT_PROFILES, LinkClass, LinkProfile
from repro.exceptions import (LinkDownError, NetworkError,
                              NodeUnreachableError, ParameterError)


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)


class EventScheduler:
    """Heap-based discrete-event kernel."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self._heap: list[_Event] = []
        self._seq = itertools.count()

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ParameterError("cannot schedule in the past")
        heapq.heappush(self._heap,
                       _Event(self.clock.now + delay, next(self._seq), callback))

    def run(self, until: float | None = None) -> int:
        """Process events (optionally only up to time ``until``).

        Returns the number of events executed.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            event = heapq.heappop(self._heap)
            self.clock.advance_to(event.time)
            event.callback()
            executed += 1
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)
        return executed

    def pending(self) -> int:
        return len(self._heap)


@dataclass(frozen=True)
class MessageRecord:
    """One logged transmission (the unit of the communication experiments)."""

    src: str
    dst: str
    label: str
    nbytes: int
    sent_at: float
    arrived_at: float

    @property
    def latency(self) -> float:
        return self.arrived_at - self.sent_at


class Network:
    """Topology + sequential message delivery with full accounting."""

    def __init__(self, rng: HmacDrbg, clock: SimClock | None = None,
                 profiles: dict[LinkClass, LinkProfile] | None = None) -> None:
        self.clock = clock or SimClock()
        self.rng = rng
        self.profiles = dict(profiles or DEFAULT_PROFILES)
        self._nodes: set[str] = set()
        self._down: set[str] = set()
        self._links: dict[tuple[str, str], LinkClass] = {}
        self.log: list[MessageRecord] = []

    # -- topology -----------------------------------------------------------
    def add_node(self, address: str) -> None:
        self._nodes.add(address)

    def connect(self, a: str, b: str, link_class: LinkClass) -> None:
        """Create a bidirectional link of the given class."""
        for node in (a, b):
            if node not in self._nodes:
                raise ParameterError("unknown node %r" % node)
        self._links[_key(a, b)] = link_class

    def set_node_up(self, address: str, up: bool) -> None:
        """Mark a node up or down (DoS experiments)."""
        if address not in self._nodes:
            raise ParameterError("unknown node %r" % address)
        if up:
            self._down.discard(address)
        else:
            self._down.add(address)

    def is_up(self, address: str) -> bool:
        return address in self._nodes and address not in self._down

    def link_class(self, a: str, b: str) -> LinkClass:
        link = self._links.get(_key(a, b))
        if link is None:
            raise LinkDownError("no link between %r and %r" % (a, b))
        return link

    # -- delivery -------------------------------------------------------------
    def transmit(self, src: str, dst: str, nbytes: int,
                 label: str = "") -> MessageRecord:
        """Deliver one message, advancing the clock by the link delay.

        Raises :class:`NodeUnreachableError` for down endpoints and
        :class:`LinkDownError` when no link exists.  Lossy links retry up
        to 3 times (each attempt pays its delay) before failing.
        """
        if not self.is_up(src):
            raise NodeUnreachableError("source %r is down" % src)
        if not self.is_up(dst):
            raise NodeUnreachableError("destination %r is down" % dst)
        profile = self.profiles[self.link_class(src, dst)]
        sent_at = self.clock.now
        for attempt in range(3):
            delay = profile.delay(nbytes, self.rng)
            self.clock.advance(delay)
            if not profile.drops(self.rng):
                record = MessageRecord(src=src, dst=dst, label=label,
                                       nbytes=nbytes, sent_at=sent_at,
                                       arrived_at=self.clock.now)
                self.log.append(record)
                return record
        raise NetworkError("message %r from %s to %s lost after 3 attempts"
                           % (label, src, dst))

    # -- accounting --------------------------------------------------------
    def stats_between(self, start_index: int) -> dict[str, float]:
        """Aggregate log entries from ``start_index`` onward.

        Returns message count, total bytes, and wall-clock latency — the
        rows experiment E4 prints per protocol run.
        """
        window = self.log[start_index:]
        if not window:
            return {"messages": 0, "bytes": 0, "latency": 0.0}
        return {
            "messages": len(window),
            "bytes": sum(r.nbytes for r in window),
            "latency": window[-1].arrived_at - window[0].sent_at,
        }

    def mark(self) -> int:
        """Snapshot the log position (pair with :meth:`stats_between`)."""
        return len(self.log)


def _key(a: str, b: str) -> tuple[str, str]:
    return (a, b) if a <= b else (b, a)
