"""Link models — the paper's Fig. 1 connectivity classes.

Fig. 1 distinguishes **wired links** (hospital/clinic network and patient
LAN internals: "often high-speed wired links"), **wireless links** (patient
LAN ↔ S-server, P-device ↔ A-server), the **Internet** (inter-domain
paths), and **physical contact** (physician ↔ patient/family/P-device —
oral exchange or physically operating the device).

Each :class:`LinkProfile` has a base propagation latency, an exponential
jitter term, and a bandwidth that adds serialization delay per byte.  The
defaults are ballpark figures for 2011-era networks; every profile is a
frozen dataclass so experiments can sweep their own values.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError


class LinkClass(Enum):
    WIRED_LAN = "wired-lan"
    WIRELESS = "wireless"
    INTERNET = "internet"
    PHYSICAL = "physical"   # oral / hands-on interaction, no packets


@dataclass(frozen=True)
class LinkProfile:
    """Latency/bandwidth model for one link class."""

    link_class: LinkClass
    base_latency_s: float
    jitter_mean_s: float
    bandwidth_bytes_per_s: float
    loss_probability: float = 0.0

    def delay(self, nbytes: int, rng: HmacDrbg) -> float:
        """Total one-way delay for an ``nbytes`` message."""
        if nbytes < 0:
            raise ParameterError("negative message size")
        jitter = rng.expovariate(1.0 / self.jitter_mean_s) \
            if self.jitter_mean_s > 0 else 0.0
        return (self.base_latency_s + jitter
                + nbytes / self.bandwidth_bytes_per_s)

    def drops(self, rng: HmacDrbg) -> bool:
        """Whether this transmission is lost."""
        return self.loss_probability > 0 and rng.random() < self.loss_probability


DEFAULT_PROFILES: dict[LinkClass, LinkProfile] = {
    LinkClass.WIRED_LAN: LinkProfile(
        link_class=LinkClass.WIRED_LAN, base_latency_s=0.0005,
        jitter_mean_s=0.0002, bandwidth_bytes_per_s=125_000_000.0),  # 1 Gb/s
    LinkClass.WIRELESS: LinkProfile(
        link_class=LinkClass.WIRELESS, base_latency_s=0.020,
        jitter_mean_s=0.010, bandwidth_bytes_per_s=1_000_000.0),     # ~8 Mb/s
    LinkClass.INTERNET: LinkProfile(
        link_class=LinkClass.INTERNET, base_latency_s=0.050,
        jitter_mean_s=0.015, bandwidth_bytes_per_s=2_500_000.0),     # 20 Mb/s
    LinkClass.PHYSICAL: LinkProfile(
        link_class=LinkClass.PHYSICAL, base_latency_s=2.0,
        jitter_mean_s=1.0, bandwidth_bytes_per_s=50.0),  # speech-rate
}
