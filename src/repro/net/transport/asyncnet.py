"""Async multiplexed TCP transport: pipelined frames, one connection.

Where :class:`~repro.net.transport.socketnet.SocketTransport` opens one
TCP connection per frame and blocks for the reply,
:class:`AsyncTransport` keeps a *persistent multiplexed connection* per
destination and pipelines frames over it: every outbound frame carries a
correlation id (:func:`repro.core.wire.wrap_corr`), responses come back
in whatever order the server finishes them, and a reader task matches
each one to its caller by id.  Callers stay plain blocking threads — the
event loop runs on a private daemon thread and ``_carry_frame`` bridges
into it with ``run_coroutine_threadsafe`` — so all six protocols run
unchanged, and the :class:`~repro.net.transport.faults.RetryPolicy` /
:class:`~repro.net.transport.faults.FaultPolicy` template methods in the
transport base class compose exactly as they do on the blocking
backends.

Flow control is explicit on both sides of the wire:

* **client**: a per-connection window (``window``) bounds the pending
  frames in flight; the window-full caller blocks until a response
  frees a slot (backpressure, not unbounded queueing);
* **server**: a per-connection semaphore (``server_window``) stops
  *reading* a connection whose handlers have fallen behind, so a fast
  sender cannot balloon server memory.

Server handlers execute on a thread pool, which is what makes dispatch
entry genuinely concurrent — the endpoints' reentrancy contract
(mutating opcodes single-writer, read opcodes concurrent; see
``docs/architecture.md``) is exercised by every pipelined run.

Wire compatibility: frame id 0 encodes as the identity bytes, so a
legacy connection-per-frame :class:`SocketTransport` client can talk to
an :class:`AsyncTransport` server (plain frame in, plain response out),
and single-in-flight async traffic is byte-identical to the blocking
backends — the four-backend parity suite pins this.

``close()`` drains gracefully: new connections are refused, in-flight
frames get their responses (bounded by ``drain_timeout_s``), then the
connections, loop, and handler pool are torn down.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import socket
import threading
import time

from repro.core import wire
from repro.net.transport.base import FrameRecord, Transport
from repro.net.transport.socketnet import (_LEN_BYTES, _MAX_FRAME,
                                           _TRANSIENT_OS_ERRORS)
from repro.exceptions import TransientTransportError, TransportError

__all__ = ["AsyncTransport"]

_DEFAULT_WINDOW = 64
_DEFAULT_SERVER_WINDOW = 128
_DEFAULT_HANDLER_THREADS = 8
_DEFAULT_DRAIN_TIMEOUT_S = 5.0


async def _read_blob(reader: asyncio.StreamReader) -> bytes | None:
    """One length-prefixed blob; None on a clean EOF between frames."""
    try:
        header = await reader.readexactly(_LEN_BYTES)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise TransientTransportError("connection closed mid-frame")
    length = int.from_bytes(header, "big")
    if length > _MAX_FRAME:
        raise TransportError("frame length %d exceeds limit" % length)
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise TransientTransportError("connection closed mid-frame")


def _write_blob(writer: asyncio.StreamWriter, blob: bytes) -> None:
    writer.write(len(blob).to_bytes(_LEN_BYTES, "big") + blob)


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass


class _MuxConnection:
    """One multiplexed client connection: id allocation, the pending
    id → future map, the bounded in-flight window, and the reader task
    that resolves responses out of order.

    Every attribute is touched only from coroutines on the owning
    transport's event loop — single-threaded by construction.
    """

    # Loop-affine: all state below is mutated only on the event loop
    # thread; cross-thread callers go through run_coroutine_threadsafe.

    def __init__(self, loop: asyncio.AbstractEventLoop, dst: str,
                 reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, window: int) -> None:
        self._loop = loop
        self.dst = dst
        self.reader = reader
        self.writer = writer
        self._pending: dict[int, asyncio.Future] = {}
        self._window = asyncio.Semaphore(window)
        self._write_lock = asyncio.Lock()
        self._counter = 0
        self.broken: BaseException | None = None
        self.closing = False
        #: High-water mark of frames awaiting a response (tests and the
        #: pipelined smoke assert real multiplexing happened).
        self.peak_in_flight = 0
        self._reader_task = loop.create_task(self._read_loop())

    def _next_id(self) -> int:
        while True:
            self._counter = self._counter % wire.MAX_CORR_ID + 1
            if self._counter not in self._pending:
                return self._counter

    async def roundtrip(self, frame: bytes,
                        timeout_s: float) -> tuple[bytes, float]:
        """Pipeline one frame; block (in the window) when the bound is
        reached; return (response, request-write-completion time)."""
        if self.broken is not None or self.closing:
            raise TransientTransportError(
                "connection to %r is %s" % (self.dst,
                                            "closing" if self.closing
                                            else "broken"))
        async with self._window:
            if self.broken is not None or self.closing:
                raise TransientTransportError(
                    "connection to %r went away under a queued frame"
                    % self.dst)
            frame_id = self._next_id()
            future = self._loop.create_future()
            self._pending[frame_id] = future
            self.peak_in_flight = max(self.peak_in_flight,
                                      len(self._pending))
            try:
                async with self._write_lock:
                    _write_blob(self.writer, wire.wrap_corr(frame_id, frame))
                    await self.writer.drain()
                request_done = time.time()
                # A call_later timer instead of asyncio.wait_for: wait_for
                # wraps the await in a fresh task per frame, which at
                # pipelined throughput is measurable scheduler overhead.
                timer = self._loop.call_later(timeout_s, self._expire,
                                              frame_id)
                try:
                    response = await future
                finally:
                    timer.cancel()
                return response, request_done
            finally:
                self._pending.pop(frame_id, None)

    def _expire(self, frame_id: int) -> None:
        future = self._pending.get(frame_id)
        if future is not None and not future.done():
            future.set_exception(asyncio.TimeoutError())

    async def _read_loop(self) -> None:
        try:
            while True:
                blob = await _read_blob(self.reader)
                if blob is None:
                    raise TransientTransportError(
                        "connection to %r closed by peer" % self.dst)
                frame_id, response = wire.unwrap_corr(blob)
                future = self._pending.get(frame_id)
                if future is not None and not future.done():
                    future.set_result(response)
                # An unknown id is a response whose caller already timed
                # out and retried on a fresh id: drop it.
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self._break(exc)

    def _break(self, exc: BaseException) -> None:
        self.broken = exc
        failure = TransientTransportError(
            "connection to %r broke with pipelined frames in flight: %s"
            % (self.dst, exc))
        for future in self._pending.values():
            if not future.done():
                future.set_exception(failure)
        self.writer.close()

    async def aclose(self, drain_timeout_s: float) -> None:
        """Graceful drain: stop accepting frames, wait (bounded) for
        in-flight responses, then tear the connection down."""
        self.closing = True
        pending = [f for f in self._pending.values() if not f.done()]
        if pending:
            await asyncio.wait(pending, timeout=drain_timeout_s)
        self._break(TransientTransportError(
            "connection to %r closed" % self.dst))
        self._reader_task.cancel()
        try:
            await self.writer.wait_closed()
        except (OSError, asyncio.CancelledError):  # pragma: no cover
            pass


class AsyncTransport(Transport):
    """Frames pipelined over persistent multiplexed TCP connections."""

    #: Concurrent requests to one destination share a mux connection and
    #: genuinely pipeline — scatter-gather callers may fan out threads.
    CONCURRENT_REQUESTS = True

    def __init__(self, routes: dict[str, tuple[str, int]] | None = None,
                 host: str = "127.0.0.1",
                 window: int = _DEFAULT_WINDOW,
                 server_window: int = _DEFAULT_SERVER_WINDOW,
                 handler_threads: int = _DEFAULT_HANDLER_THREADS,
                 connect_timeout_s: float = 10.0,
                 connect_retries: int = 0,
                 connect_retry_delay_s: float = 0.2,
                 drain_timeout_s: float = _DEFAULT_DRAIN_TIMEOUT_S) -> None:
        self._routes: dict[str, tuple[str, int]] = dict(routes or {})
        self._endpoints: dict[str, object] = {}
        self._servers: list[asyncio.AbstractServer] = []
        self._host = host
        self._window_size = max(1, window)
        self._server_window = max(1, server_window)
        self._timeout = connect_timeout_s
        self._connect_retries = connect_retries
        self._connect_retry_delay_s = connect_retry_delay_s
        self._drain_timeout_s = drain_timeout_s
        self._log: list[FrameRecord] = []
        self._lock = threading.Lock()
        # Loop-affine state: created here, then touched only from
        # coroutines running on the loop thread.
        self._conns: dict[str, _MuxConnection] = {}
        self._conn_locks: dict[str, asyncio.Lock] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(2, handler_threads),
            thread_name_prefix="asyncnet-handler")
        self._loop: asyncio.AbstractEventLoop | None = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._run_loop,
                                        name="asyncnet-loop", daemon=True)
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _call(self, coro):
        """Run a coroutine on the loop thread; block for its result."""
        loop = self._loop
        if loop is None or not loop.is_running():
            coro.close()
            raise TransportError("async transport is closed")
        if threading.get_ident() == self._thread.ident:
            coro.close()
            raise TransportError(
                "blocking transport call issued from the event-loop "
                "thread would deadlock; handlers run on the pool")
        future = asyncio.run_coroutine_threadsafe(coro, loop)
        try:
            return future.result()
        except concurrent.futures.CancelledError:
            raise TransientTransportError(
                "transport closed with the frame in flight") from None

    # -- endpoint hosting ---------------------------------------------------
    def bind(self, address: str, endpoint, port: int = 0) -> None:
        """Serve ``endpoint`` on ``port`` (0 = ephemeral)."""
        server = self._call(self._start_server(endpoint, port))
        bound = server.sockets[0].getsockname()
        self._routes[address] = (bound[0], bound[1])
        self._endpoints[address] = endpoint
        self._attach(endpoint)

    async def _start_server(self, endpoint, port: int):
        # Loop-affine: the server table is owned by the loop thread —
        # servers are registered here and drained in _shutdown.
        server = await asyncio.start_server(
            lambda reader, writer: self._serve_connection(endpoint, reader,
                                                          writer),
            host=self._host, port=port)
        self._servers.append(server)
        return server

    def endpoint_at(self, address: str):
        return self._endpoints.get(address)

    def has_route(self, address: str) -> bool:
        return address in self._routes

    def add_route(self, address: str, host: str, port: int) -> None:
        """Point an address at an endpoint served by another process."""
        self._routes[address] = (host, port)

    def port_of(self, address: str) -> int:
        route = self._routes.get(address)
        if route is None:
            raise TransportError("no route to %r" % address)
        return route[1]

    def peak_in_flight(self) -> int:
        """Highest number of pipelined frames any connection held at
        once (1 on strictly serial traffic)."""
        return max((conn.peak_in_flight
                    for conn in list(self._conns.values())), default=0)

    # -- the server side ----------------------------------------------------
    async def _serve_connection(self, endpoint, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        _set_nodelay(writer)
        write_lock = asyncio.Lock()
        slots = asyncio.Semaphore(self._server_window)
        frame_tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    blob = await _read_blob(reader)
                except (TransportError, OSError) as exc:
                    # Mirror socketnet: never answer a broken exchange
                    # with silence.
                    await self._write_reply(
                        writer, write_lock, 0, wire.error_response(
                            TransportError("server could not read frame: "
                                           "%s" % exc)))
                    break
                if blob is None:
                    break
                # Server-side backpressure: when `server_window` frames
                # from this connection are still being handled, stop
                # reading (TCP then pushes back on the sender).
                await slots.acquire()
                frame_task = asyncio.get_running_loop().create_task(
                    self._serve_frame(endpoint, blob, writer, write_lock,
                                      slots))
                frame_tasks.add(frame_task)
                frame_task.add_done_callback(frame_tasks.discard)
        except asyncio.CancelledError:
            pass
        finally:
            if frame_tasks:
                # Graceful drain: every frame already read gets its
                # response before the connection dies.
                await asyncio.gather(*frame_tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:  # pragma: no cover - peer already gone
                pass
            self._conn_tasks.discard(task)

    async def _serve_frame(self, endpoint, blob, writer, write_lock,
                           slots) -> None:
        try:
            try:
                frame_id, frame = wire.unwrap_corr(blob)
            except TransportError as exc:
                frame_id, response = 0, wire.error_response(exc)
            else:
                try:
                    # The thread pool is what makes handler entry
                    # concurrent: pipelined frames dispatch in parallel
                    # and may answer out of order.
                    response = await asyncio.get_running_loop().run_in_executor(
                        self._executor, endpoint.handle_frame, frame)
                except Exception as exc:
                    response = wire.error_response(exc)
            await self._write_reply(writer, write_lock, frame_id, response)
        except OSError:  # pragma: no cover - client already gone
            pass
        finally:
            slots.release()

    async def _write_reply(self, writer, write_lock, frame_id: int,
                           response: bytes) -> None:
        async with write_lock:
            _write_blob(writer, wire.wrap_corr(frame_id, response))
            await writer.drain()

    # -- the client side ----------------------------------------------------
    async def _get_connection(self, dst: str) -> _MuxConnection:
        conn = self._conns.get(dst)
        if conn is not None and conn.broken is None and not conn.closing:
            return conn
        lock = self._conn_locks.setdefault(dst, asyncio.Lock())
        async with lock:
            conn = self._conns.get(dst)
            if conn is not None and conn.broken is None and not conn.closing:
                return conn
            route = self._routes.get(dst)
            if route is None:
                raise self._no_endpoint(dst)
            reader, writer = await self._open(dst, route)
            conn = _MuxConnection(asyncio.get_running_loop(), dst, reader,
                                  writer, self._window_size)
            self._conns[dst] = conn
            return conn

    async def _open(self, dst: str, route: tuple[str, int]):
        """Connect, retrying refusals a bounded number of times (a peer
        process may still be binding its port)."""
        last: BaseException | None = None
        for attempt in range(self._connect_retries + 1):
            if attempt:
                await asyncio.sleep(self._connect_retry_delay_s)
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(route[0], route[1]),
                    self._timeout)
                _set_nodelay(writer)
                return reader, writer
            except _TRANSIENT_OS_ERRORS as exc:
                last = exc
            except asyncio.TimeoutError as exc:
                last = exc
            except OSError as exc:
                raise TransportError("socket error connecting to %r: %s"
                                     % (dst, exc)) from exc
        raise TransientTransportError(
            "cannot connect to %r after %d attempt(s): %s"
            % (dst, self._connect_retries + 1, last)) from last

    async def _roundtrip(self, dst: str, frame: bytes) -> tuple[bytes, float]:
        timeout_s = (self._attempt_timeout_s()
                     if self._retry_policy is not None else self._timeout)
        conn = await self._get_connection(dst)
        try:
            return await conn.roundtrip(frame, timeout_s)
        except TransientTransportError:
            raise
        except asyncio.TimeoutError:
            raise TransientTransportError(
                "no response from %r within %.1fs (%d frames pipelined)"
                % (dst, timeout_s, len(conn._pending))) from None
        except TransportError:
            raise
        except _TRANSIENT_OS_ERRORS as exc:
            raise TransientTransportError(
                "transient socket error talking to %r: %s"
                % (dst, exc)) from exc
        except OSError as exc:
            raise TransportError("socket error talking to %r: %s"
                                 % (dst, exc)) from exc

    def _carry_frame(self, src: str, dst: str, frame: bytes, label: str,
                     reply_label: str, bill_reply: bool) -> bytes:
        sent_at = time.time()
        response, request_done = self._call(self._roundtrip(dst, frame))
        arrived_at = time.time()
        # Direction-split stamps billing the logical frame bytes, exactly
        # like socketnet — the length prefix and correlation-id envelope
        # are stream framing, not protocol payload.
        self._record(src, dst, label, len(frame), sent_at, request_done)
        if bill_reply:
            self._record(dst, src, reply_label, len(response),
                         request_done, arrived_at)
        return response

    def deliver(self, src: str, dst: str, nbytes: int, label: str) -> None:
        now = time.time()
        self._record(src, dst, label, nbytes, now, now)

    # -- clock + accounting -------------------------------------------------
    @property
    def now(self) -> float:
        return time.time()

    def mark(self) -> int:
        with self._lock:
            return len(self._log)

    def records_since(self, mark: int) -> list:
        with self._lock:
            return self._log[mark:]

    def _record(self, src: str, dst: str, label: str, nbytes: int,
                sent_at: float, arrived_at: float) -> None:
        with self._lock:
            self._log.append(FrameRecord(src=src, dst=dst, label=label,
                                         nbytes=nbytes, sent_at=sent_at,
                                         arrived_at=arrived_at))

    def _wait(self, seconds: float) -> None:
        # Real wall-clock backoff, capped so chaos tests stay quick.
        if seconds > 0:
            time.sleep(min(seconds, 0.05))

    # -- lifecycle ----------------------------------------------------------
    async def _shutdown(self) -> None:
        # Loop-affine: runs on the event loop thread, which owns the
        # connection table — the per-destination asyncio.Lock in
        # _get_connection only orders coroutines, never other threads.
        for server in self._servers:
            server.close()
        for conn in list(self._conns.values()):
            await conn.aclose(self._drain_timeout_s)
        self._conns.clear()
        if self._conn_tasks:
            _done, pending = await asyncio.wait(
                list(self._conn_tasks), timeout=self._drain_timeout_s)
            for task in pending:
                task.cancel()
        for server in self._servers:
            try:
                await asyncio.wait_for(server.wait_closed(), timeout=1.0)
            except (asyncio.TimeoutError, OSError):  # pragma: no cover
                pass
        self._servers.clear()

    def close(self) -> None:
        """Graceful drain, then tear down connections, loop, and pool."""
        loop = self._loop
        if loop is None:
            return
        self._loop = None
        try:
            future = asyncio.run_coroutine_threadsafe(self._shutdown(), loop)
            future.result(timeout=2 * self._drain_timeout_s + 5)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            self._thread.join(timeout=5)
            self._executor.shutdown(wait=False)
            if not self._thread.is_alive():
                loop.close()
