"""Fault injection and retry policies for the transport boundary.

Two small policy objects, both injectable into any transport backend:

* :class:`FaultPolicy` — a deterministic chaos monkey.  Installed with
  ``transport.install_faults(policy)``, it is consulted once per frame
  attempt and may drop, delay, duplicate, corrupt, or truncate the
  frame, or declare the destination partitioned / crashed.  All draws
  come from one seeded :class:`random.Random`, so a seeded run replays
  the exact same fault schedule — simulation results stay reproducible.
* :class:`RetryPolicy` — the client-side recovery rule.  Installed with
  ``transport.set_retry_policy(policy)``, it bounds delivery attempts
  with capped exponential backoff and a per-attempt timeout, retrying
  only on :class:`~repro.exceptions.TransientTransportError` (a typed
  error is an answer; a lost frame is not).

The protocol layer never sees either object: retries happen below the
frame boundary, re-presenting the *same* bytes, which is exactly what
the receiver-side :class:`~repro.core.protocols.messages.ReplayGuard`s
are specified to absorb.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from repro.exceptions import ParameterError

__all__ = ["FaultPlan", "FaultPolicy", "RetryPolicy", "parse_fault_spec"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with capped exponential backoff.

    ``max_attempts`` counts total deliveries (1 = no retry).  Attempt
    ``k`` (k ≥ 2) waits ``min(max_backoff_s, base_backoff_s·2^(k-2))``
    before resending; every attempt is given ``attempt_timeout_s`` to
    produce a response; the whole delivery aborts once ``deadline_s``
    of transport time has elapsed — so a partitioned peer yields a
    typed error within a known bound, never a hang.
    """

    max_attempts: int = 4
    base_backoff_s: float = 0.05
    max_backoff_s: float = 2.0
    attempt_timeout_s: float = 5.0
    deadline_s: float = 30.0
    #: When set, retries use seeded *full jitter*: the wait before
    #: retry k is uniform in (0, min(cap, base·2^(k-1))], drawn from a
    #: Random seeded by (jitter_seed, k) — deterministic for a given
    #: seed, so a chaos run replays the identical backoff schedule,
    #: while different seeds decorrelate clients that failed together
    #: (no retry stampede against a recovering shard).  ``None`` (the
    #: default) keeps the exact undithered exponential schedule.
    jitter_seed: "int | None" = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ParameterError("max_attempts must be at least 1")
        for name in ("base_backoff_s", "max_backoff_s",
                     "attempt_timeout_s", "deadline_s"):
            if getattr(self, name) < 0:
                raise ParameterError("%s cannot be negative" % name)

    def backoff_s(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (1-based)."""
        if retry_index < 1:
            raise ParameterError("retry_index is 1-based")
        nominal = min(self.max_backoff_s,
                      self.base_backoff_s * (2 ** (retry_index - 1)))
        if self.jitter_seed is None:
            return nominal
        draw = random.Random(
            "hcpp-retry-jitter:%d:%d"
            % (self.jitter_seed, retry_index)).random()
        # Half-open on the zero side: a literal 0 s wait would retry in
        # the same scheduler slot that just failed.
        return nominal * (1.0 - draw)


@dataclass(frozen=True)
class FaultPlan:
    """What one frame attempt suffers (already-mutated frame included)."""

    frame: bytes
    drop: bool = False
    duplicate: bool = False
    corrupted: bool = False
    truncated: bool = False
    delay_s: float = 0.0
    partitioned: bool = False
    refused: bool = False

    @property
    def deliverable(self) -> bool:
        return not (self.drop or self.partitioned or self.refused)


class FaultPolicy:
    """Seeded, per-frame fault injection shared by all backends.

    Rates are independent per-frame probabilities.  Partitions and
    crashes are explicit endpoint states: a partitioned address eats
    frames silently (the sender burns its per-attempt timeout); a
    crashed address refuses immediately (connection-refused style)
    until :meth:`restart`.

    ``counts`` tallies every decision; ``duplicate_replies`` captures
    the response each *duplicate* delivery earned, so tests can prove
    the receiver's replay defence fired below the protocol layer.
    """

    def __init__(self, seed: int = 0, drop_rate: float = 0.0,
                 duplicate_rate: float = 0.0, corrupt_rate: float = 0.0,
                 truncate_rate: float = 0.0, delay_rate: float = 0.0,
                 delay_s: float = 0.02) -> None:
        for name, rate in (("drop_rate", drop_rate),
                           ("duplicate_rate", duplicate_rate),
                           ("corrupt_rate", corrupt_rate),
                           ("truncate_rate", truncate_rate),
                           ("delay_rate", delay_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ParameterError("%s must be in [0, 1]" % name)
        if delay_s < 0:
            raise ParameterError("delay_s cannot be negative")
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.corrupt_rate = corrupt_rate
        self.truncate_rate = truncate_rate
        self.delay_rate = delay_rate
        self.delay_s = delay_s
        self._rng = random.Random(seed)
        self._partitioned: set[str] = set()
        self._crashed: set[str] = set()
        self.counts: Counter[str] = Counter()
        self.duplicate_replies: list[tuple[str, bytes]] = []
        # Durable-endpoint recovery hooks: address -> (on_crash, on_restart).
        # on_crash(during_write: bool) discards the in-memory endpoint
        # (and, for during_write, arms a torn journal append first);
        # on_restart() reconstructs the endpoint from disk.
        self._recovery: dict[str, tuple] = {}
        # Crashed addresses that auto-restart after N more refusals.
        self._restart_after: dict[str, int] = {}

    # -- endpoint state -----------------------------------------------------
    def partition(self, address: str) -> None:
        """Frames to/from ``address`` vanish until :meth:`heal`."""
        self._partitioned.add(address)

    def heal(self, address: str) -> None:
        self._partitioned.discard(address)

    def is_partitioned(self, address: str) -> bool:
        return address in self._partitioned

    def register_recovery(self, address: str, on_crash, on_restart) -> None:
        """Wire a durable endpoint's crash/restart lifecycle to this policy.

        With hooks registered, :meth:`crash` genuinely discards the
        endpoint's in-memory state and :meth:`restart` reconstructs it
        from its journal + snapshots — without hooks, crash/restart only
        toggles liveness (the pre-durability behaviour).
        """
        self._recovery[address] = (on_crash, on_restart)

    def crash(self, address: str, during_write: bool = False,
              restart_after: int | None = None) -> None:
        """``address`` refuses connections until :meth:`restart`.

        ``during_write=True`` (requires a registered durable endpoint)
        arms a torn journal append: the *next* mutation the endpoint
        tries to commit reaches disk only partially, and the crash fires
        at that moment — exercising the torn-tail recovery path.
        ``restart_after=N`` auto-restarts the endpoint after N further
        refused delivery attempts, so a retrying client can crash and
        revive a server mid-protocol without test choreography.
        """
        if restart_after is not None:
            if restart_after < 1:
                raise ParameterError("restart_after must be >= 1")
            self._restart_after[address] = restart_after
        hooks = self._recovery.get(address)
        if during_write:
            if hooks is None:
                raise ParameterError(
                    "crash(during_write=True) needs a durable endpoint "
                    "registered for %r" % address)
            hooks[0](True)  # arms the tear; endpoint calls mark_crashed
            return
        self._crashed.add(address)
        if hooks is not None:
            hooks[0](False)

    def mark_crashed(self, address: str) -> None:
        """Liveness toggle only — used by a durable endpoint whose armed
        torn write just fired (the state discard already happened)."""
        self._crashed.add(address)

    def restart(self, address: str) -> None:
        self._crashed.discard(address)
        self._restart_after.pop(address, None)
        hooks = self._recovery.get(address)
        if hooks is not None:
            hooks[1]()
        self.counts["restarted"] += 1

    def is_crashed(self, address: str) -> bool:
        return address in self._crashed

    # -- per-attempt decision ----------------------------------------------
    def plan(self, src: str, dst: str, label: str, frame: bytes) -> FaultPlan:
        """Decide the fate of one frame attempt (one policy consult)."""
        if dst in self._crashed or src in self._crashed:
            self.counts["refused"] += 1
            crashed = dst if dst in self._crashed else src
            remaining = self._restart_after.get(crashed)
            if remaining is not None:
                if remaining <= 1:
                    # This attempt still fails (the server is only just
                    # coming back up); the client's next retry lands.
                    self.restart(crashed)
                else:
                    self._restart_after[crashed] = remaining - 1
            return FaultPlan(frame=frame, refused=True)
        if dst in self._partitioned or src in self._partitioned:
            self.counts["partitioned"] += 1
            return FaultPlan(frame=frame, partitioned=True)
        # Always burn the same number of draws per consult so the fault
        # schedule for frame N does not depend on which rates are zero.
        draws = [self._rng.random() for _ in range(5)]
        drop = draws[0] < self.drop_rate
        duplicate = draws[1] < self.duplicate_rate
        corrupt = draws[2] < self.corrupt_rate
        truncate = draws[3] < self.truncate_rate
        delay = draws[4] < self.delay_rate
        if drop:
            self.counts["dropped"] += 1
            return FaultPlan(frame=frame, drop=True)
        mutated = frame
        if corrupt and frame:
            position = self._rng.randrange(len(frame))
            flip = self._rng.randrange(1, 256)
            mutated = (frame[:position]
                       + bytes([frame[position] ^ flip])
                       + frame[position + 1:])
            self.counts["corrupted"] += 1
        if truncate and mutated:
            cut = self._rng.randrange(len(mutated))
            mutated = mutated[:cut]
            self.counts["truncated"] += 1
        if duplicate:
            self.counts["duplicated"] += 1
        if delay:
            self.counts["delayed"] += 1
        self.counts["carried"] += 1
        return FaultPlan(frame=mutated, duplicate=duplicate,
                         corrupted=corrupt, truncated=truncate,
                         delay_s=self.delay_s if delay else 0.0)

    def note_duplicate_reply(self, label: str, response: bytes) -> None:
        """Record what the receiver answered to a duplicate delivery."""
        self.duplicate_replies.append((label, response))


_SPEC_KEYS = {
    "drop": ("drop_rate", float),
    "dup": ("duplicate_rate", float),
    "corrupt": ("corrupt_rate", float),
    "trunc": ("truncate_rate", float),
    "delay": ("delay_rate", float),
    "delay_s": ("delay_s", float),
    "seed": ("seed", int),
}


def parse_fault_spec(spec: str) -> FaultPolicy:
    """Build a :class:`FaultPolicy` from a CLI spec string.

    Example: ``"drop=0.05,dup=0.02,seed=7"``.  Keys: drop, dup,
    corrupt, trunc, delay, delay_s, seed.
    """
    kwargs: dict[str, float | int] = {}
    for part in filter(None, (p.strip() for p in spec.split(","))):
        key, sep, value = part.partition("=")
        if not sep or key not in _SPEC_KEYS:
            raise ParameterError(
                "bad fault spec %r (keys: %s)"
                % (part, ", ".join(sorted(_SPEC_KEYS))))
        name, cast = _SPEC_KEYS[key]
        try:
            kwargs[name] = cast(value)
        except ValueError as exc:
            raise ParameterError("bad fault value %r: %s"
                                 % (part, exc)) from None
    return FaultPolicy(**kwargs)
