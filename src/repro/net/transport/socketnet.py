"""Real TCP transport: length-prefixed frames between OS processes.

Each bound endpoint is served by a threaded TCP server on a loopback
port; clients open one connection per frame (4-byte big-endian length
prefix both ways).  Routes can also be injected statically
(``routes={address: (host, port)}``) so a client process can talk to an
endpoint hosted by *another* process — the two-process smoke test in
``tools/socket_smoke.py`` drives exactly that split.

Failure semantics: refused/reset/timed-out connections surface as
:class:`~repro.exceptions.TransientTransportError` (retryable), other
socket errors as :class:`~repro.exceptions.TransportError`.  The server
side never answers a broken exchange with silence — an unreadable or
oversize frame, and any exception escaping the frame handler, is logged
and answered with a serialized error response so the client gets a
typed error instead of "closed mid-frame".  Connects can retry a
bounded number of times (``connect_retries``) to bridge a peer process
that is still starting up.
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
import time

from repro.net.transport.base import FrameRecord, Transport
from repro.exceptions import TransientTransportError, TransportError

_LEN_BYTES = 4
_MAX_FRAME = 64 * 1024 * 1024
_DEFAULT_READ_TIMEOUT_S = 30.0

_LOG = logging.getLogger("repro.net.transport.socketnet")

# OSErrors that a healthy peer may heal from on its own.
_TRANSIENT_OS_ERRORS = (ConnectionRefusedError, ConnectionResetError,
                        ConnectionAbortedError, BrokenPipeError,
                        TimeoutError)


def _recv_exact(conn: socket.socket, nbytes: int) -> bytes | None:
    chunks = []
    remaining = nbytes
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(conn: socket.socket) -> bytes | None:
    header = _recv_exact(conn, _LEN_BYTES)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length > _MAX_FRAME:
        raise TransportError("frame length %d exceeds limit" % length)
    return _recv_exact(conn, length)


def _write_frame(conn: socket.socket, frame: bytes) -> None:
    conn.sendall(len(frame).to_bytes(_LEN_BYTES, "big") + frame)


def _serialized_error(exc: BaseException) -> bytes:
    # Imported lazily: the wire codecs live above the transport layer,
    # and only this degraded-reply path needs them.
    from repro.core import wire
    return wire.error_response(exc)


class _FrameHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        self.request.settimeout(self.server.read_timeout_s)
        try:
            frame = _read_frame(self.request)
        except (TransportError, OSError) as exc:
            _LOG.warning("unreadable frame from %s: %s",
                         self.client_address, exc)
            self._reply(_serialized_error(
                TransportError("server could not read frame: %s" % exc)))
            return
        if frame is None:
            return
        try:
            response = self.server.frame_handler(frame)
        except Exception as exc:  # never kill the connection silently
            _LOG.warning("frame handler raised for %s: %s",
                         self.client_address, exc)
            response = _serialized_error(exc)
        self._reply(response)

    def _reply(self, response: bytes) -> None:
        try:
            _write_frame(self.request, response)
        except OSError:
            pass  # client already gone; nothing left to tell it


def _tune_socket(conn: socket.socket) -> None:
    """Latency/rebind hygiene applied to every socket, both sides.

    ``TCP_NODELAY`` matters because frames are small write-then-wait
    exchanges: with Nagle on, the 4-byte length prefix and the frame
    body can be held back waiting for the peer's delayed ACK, which is
    pure added latency for a pipelined workload.  ``SO_REUSEADDR``
    lets a restarted process rebind its fixed smoke-test port while the
    old connection lingers in TIME_WAIT.
    """
    try:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    except OSError:  # pragma: no cover - non-TCP test doubles
        pass


class _EndpointServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def server_bind(self) -> None:
        _tune_socket(self.socket)
        super().server_bind()

    def get_request(self):
        conn, addr = super().get_request()
        _tune_socket(conn)
        return conn, addr


def serve_endpoint(endpoint, host: str = "127.0.0.1", port: int = 0,
                   read_timeout_s: float = _DEFAULT_READ_TIMEOUT_S
                   ) -> _EndpointServer:
    """Host one dispatch endpoint on a TCP port (background thread).

    Returns the server; ``server.server_address`` is the bound (host,
    port) to hand to remote :class:`SocketTransport` routes.  A
    connection that goes quiet for ``read_timeout_s`` is answered with
    an error response and closed instead of pinning its thread forever.
    """
    server = _EndpointServer((host, port), _FrameHandler)
    server.frame_handler = endpoint.handle_frame
    server.read_timeout_s = read_timeout_s
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


class SocketTransport(Transport):
    """Frames over real TCP sockets; wall-clock time; thread-safe log."""

    def __init__(self, routes: dict[str, tuple[str, int]] | None = None,
                 host: str = "127.0.0.1",
                 connect_timeout_s: float = 10.0,
                 connect_retries: int = 0,
                 connect_retry_delay_s: float = 0.2) -> None:
        self._routes: dict[str, tuple[str, int]] = dict(routes or {})
        self._endpoints: dict[str, object] = {}
        self._servers: list[_EndpointServer] = []
        self._host = host
        self._timeout = connect_timeout_s
        self._connect_retries = connect_retries
        self._connect_retry_delay_s = connect_retry_delay_s
        self._log: list[FrameRecord] = []
        self._lock = threading.Lock()

    # -- endpoint hosting ---------------------------------------------------
    def bind(self, address: str, endpoint, port: int = 0) -> None:
        """Serve ``endpoint`` on ``port`` (0 = ephemeral).  A fixed port
        lets two processes agree on a route before the server is up."""
        server = serve_endpoint(endpoint, host=self._host, port=port)
        self._servers.append(server)
        self._routes[address] = (server.server_address[0],
                                 server.server_address[1])
        self._endpoints[address] = endpoint
        self._attach(endpoint)

    def endpoint_at(self, address: str):
        return self._endpoints.get(address)

    def has_route(self, address: str) -> bool:
        return address in self._routes

    def add_route(self, address: str, host: str, port: int) -> None:
        """Point an address at an endpoint served by another process."""
        self._routes[address] = (host, port)

    def port_of(self, address: str) -> int:
        route = self._routes.get(address)
        if route is None:
            raise TransportError("no route to %r" % address)
        return route[1]

    def close(self) -> None:
        for server in self._servers:
            server.shutdown()
            server.server_close()
        self._servers.clear()

    # -- clock + accounting -------------------------------------------------
    @property
    def now(self) -> float:
        return time.time()

    def mark(self) -> int:
        with self._lock:
            return len(self._log)

    def records_since(self, mark: int) -> list:
        with self._lock:
            return self._log[mark:]

    def _record(self, src: str, dst: str, label: str, nbytes: int,
                sent_at: float, arrived_at: float) -> None:
        with self._lock:
            self._log.append(FrameRecord(src=src, dst=dst, label=label,
                                         nbytes=nbytes, sent_at=sent_at,
                                         arrived_at=arrived_at))

    def _wait(self, seconds: float) -> None:
        # Real wall-clock backoff, capped so chaos tests stay quick.
        if seconds > 0:
            time.sleep(min(seconds, 0.05))

    # -- carrying frames ----------------------------------------------------
    def _connect(self, dst: str,
                 route: tuple[str, int]) -> socket.socket:
        """Open a connection, retrying refusals a bounded number of
        times (a peer process may still be binding its port)."""
        last: OSError | None = None
        for attempt in range(self._connect_retries + 1):
            if attempt:
                time.sleep(self._connect_retry_delay_s)
            try:
                conn = socket.create_connection(route,
                                                timeout=self._timeout)
                _tune_socket(conn)
                return conn
            except _TRANSIENT_OS_ERRORS as exc:
                last = exc
            except OSError as exc:
                raise TransportError("socket error connecting to %r: %s"
                                     % (dst, exc)) from exc
        raise TransientTransportError(
            "cannot connect to %r after %d attempt(s): %s"
            % (dst, self._connect_retries + 1, last)) from last

    def _roundtrip(self, dst: str, frame: bytes) -> tuple[bytes, float]:
        """Send one frame, read the reply.  Returns the reply and the
        time the request finished going out (the reply's departure
        lower bound, used to stamp direction-split records)."""
        route = self._routes.get(dst)
        if route is None:
            raise self._no_endpoint(dst)
        try:
            with self._connect(dst, route) as conn:
                conn.settimeout(self._attempt_timeout_s()
                                if self._retry_policy is not None
                                else self._timeout)
                _write_frame(conn, frame)
                request_done = time.time()
                response = _read_frame(conn)
        except TransportError:
            raise
        except _TRANSIENT_OS_ERRORS as exc:
            raise TransientTransportError(
                "transient socket error talking to %r: %s"
                % (dst, exc)) from exc
        except OSError as exc:
            raise TransportError("socket error talking to %r: %s"
                                 % (dst, exc)) from exc
        if response is None:
            raise TransientTransportError(
                "connection to %r closed mid-frame" % dst)
        return response, request_done

    def _carry_frame(self, src: str, dst: str, frame: bytes, label: str,
                     reply_label: str, bill_reply: bool) -> bytes:
        sent_at = time.time()
        response, request_done = self._roundtrip(dst, frame)
        arrived_at = time.time()
        # Direction-split stamps, mirroring the simulator: the request
        # occupies [sent_at, request_done], the reply departs no earlier
        # than the request finished and lands at arrived_at.
        self._record(src, dst, label, len(frame), sent_at, request_done)
        if bill_reply:
            self._record(dst, src, reply_label, len(response),
                         request_done, arrived_at)
        return response

    def deliver(self, src: str, dst: str, nbytes: int, label: str) -> None:
        now = time.time()
        self._record(src, dst, label, nbytes, now, now)
