"""Real TCP transport: length-prefixed frames between OS processes.

Each bound endpoint is served by a threaded TCP server on a loopback
port; clients open one connection per frame (4-byte big-endian length
prefix both ways).  Routes can also be injected statically
(``routes={address: (host, port)}``) so a client process can talk to an
endpoint hosted by *another* process — the two-process smoke test in
``tools/socket_smoke.py`` drives exactly that split.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time

from repro.net.transport.base import FrameRecord, Transport
from repro.exceptions import TransportError

_LEN_BYTES = 4
_MAX_FRAME = 64 * 1024 * 1024


def _recv_exact(conn: socket.socket, nbytes: int) -> bytes | None:
    chunks = []
    remaining = nbytes
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame(conn: socket.socket) -> bytes | None:
    header = _recv_exact(conn, _LEN_BYTES)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length > _MAX_FRAME:
        raise TransportError("frame length %d exceeds limit" % length)
    return _recv_exact(conn, length)


def _write_frame(conn: socket.socket, frame: bytes) -> None:
    conn.sendall(len(frame).to_bytes(_LEN_BYTES, "big") + frame)


class _FrameHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        frame = _read_frame(self.request)
        if frame is None:
            return
        _write_frame(self.request, self.server.frame_handler(frame))


class _EndpointServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


def serve_endpoint(endpoint, host: str = "127.0.0.1",
                   port: int = 0) -> _EndpointServer:
    """Host one dispatch endpoint on a TCP port (background thread).

    Returns the server; ``server.server_address`` is the bound (host,
    port) to hand to remote :class:`SocketTransport` routes.
    """
    server = _EndpointServer((host, port), _FrameHandler)
    server.frame_handler = endpoint.handle_frame
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


class SocketTransport(Transport):
    """Frames over real TCP sockets; wall-clock time; thread-safe log."""

    def __init__(self, routes: dict[str, tuple[str, int]] | None = None,
                 host: str = "127.0.0.1",
                 connect_timeout_s: float = 10.0) -> None:
        self._routes: dict[str, tuple[str, int]] = dict(routes or {})
        self._endpoints: dict[str, object] = {}
        self._servers: list[_EndpointServer] = []
        self._host = host
        self._timeout = connect_timeout_s
        self._log: list[FrameRecord] = []
        self._lock = threading.Lock()

    # -- endpoint hosting ---------------------------------------------------
    def bind(self, address: str, endpoint) -> None:
        server = serve_endpoint(endpoint, host=self._host)
        self._servers.append(server)
        self._routes[address] = (server.server_address[0],
                                 server.server_address[1])
        self._endpoints[address] = endpoint
        self._attach(endpoint)

    def endpoint_at(self, address: str):
        return self._endpoints.get(address)

    def has_route(self, address: str) -> bool:
        return address in self._routes

    def add_route(self, address: str, host: str, port: int) -> None:
        """Point an address at an endpoint served by another process."""
        self._routes[address] = (host, port)

    def port_of(self, address: str) -> int:
        route = self._routes.get(address)
        if route is None:
            raise TransportError("no route to %r" % address)
        return route[1]

    def close(self) -> None:
        for server in self._servers:
            server.shutdown()
            server.server_close()
        self._servers.clear()

    # -- clock + accounting -------------------------------------------------
    @property
    def now(self) -> float:
        return time.time()

    def mark(self) -> int:
        with self._lock:
            return len(self._log)

    def records_since(self, mark: int) -> list:
        with self._lock:
            return self._log[mark:]

    def _record(self, src: str, dst: str, label: str, nbytes: int,
                sent_at: float, arrived_at: float) -> None:
        with self._lock:
            self._log.append(FrameRecord(src=src, dst=dst, label=label,
                                         nbytes=nbytes, sent_at=sent_at,
                                         arrived_at=arrived_at))

    # -- carrying frames ----------------------------------------------------
    def _roundtrip(self, dst: str, frame: bytes) -> bytes:
        route = self._routes.get(dst)
        if route is None:
            raise self._no_endpoint(dst)
        try:
            with socket.create_connection(route,
                                          timeout=self._timeout) as conn:
                _write_frame(conn, frame)
                response = _read_frame(conn)
        except OSError as exc:
            raise TransportError("socket error talking to %r: %s"
                                 % (dst, exc)) from exc
        if response is None:
            raise TransportError("connection to %r closed mid-frame" % dst)
        return response

    def request(self, src: str, dst: str, frame: bytes, label: str,
                reply_label: str | None = None) -> bytes:
        sent_at = time.time()
        response = self._roundtrip(dst, frame)
        arrived_at = time.time()
        self._record(src, dst, label, len(frame), sent_at, arrived_at)
        self._record(dst, src, reply_label or label + "/reply",
                     len(response), sent_at, arrived_at)
        return response

    def notify(self, src: str, dst: str, frame: bytes, label: str) -> bytes:
        sent_at = time.time()
        response = self._roundtrip(dst, frame)
        self._record(src, dst, label, len(frame), sent_at, time.time())
        return response

    def deliver(self, src: str, dst: str, nbytes: int, label: str) -> None:
        now = time.time()
        self._record(src, dst, label, nbytes, now, now)
