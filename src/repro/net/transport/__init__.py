"""Pluggable transports carrying serialized protocol frames.

Protocol functions accept either a :class:`~repro.net.sim.Network` (the
historical signature) or any :class:`Transport`; :func:`as_transport`
adapts the former.  All four backends speak the same frame bytes, so a
protocol run is byte-for-byte identical whether dispatch happens by
function call, through the discrete-event simulator, over real TCP
between OS processes, or pipelined on the asyncio multiplexed backend.
"""

from repro.net.transport.asyncnet import AsyncTransport
from repro.net.transport.base import FrameRecord, Transport
from repro.net.transport.faults import (FaultPlan, FaultPolicy, RetryPolicy,
                                        parse_fault_spec)
from repro.net.transport.loopback import LoopbackTransport
from repro.net.transport.simnet import SimTransport, as_transport
from repro.net.transport.socketnet import SocketTransport, serve_endpoint

__all__ = ["FrameRecord", "Transport", "AsyncTransport",
           "LoopbackTransport", "SimTransport", "SocketTransport",
           "as_transport", "serve_endpoint",
           "FaultPlan", "FaultPolicy", "RetryPolicy", "parse_fault_spec"]
