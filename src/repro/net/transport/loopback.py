"""In-process transport: direct dispatch, no simulated network.

The reference backend for parity testing — frames still serialize and
route through :meth:`handle_frame`, but delivery is a function call.  A
tiny synthetic clock tick per record keeps envelope timestamps strictly
increasing (two seals of an identical payload must never collide in a
replay guard) while staying far inside the freshness window.
"""

from __future__ import annotations

from repro.net.transport.base import FrameRecord, Transport

_TICK_S = 1e-4


class LoopbackTransport(Transport):
    """Direct in-process frame dispatch with full accounting."""

    def __init__(self) -> None:
        self._endpoints: dict[str, object] = {}
        self._log: list[FrameRecord] = []
        self._now = 0.0

    # -- endpoint hosting ---------------------------------------------------
    def bind(self, address: str, endpoint) -> None:
        self._endpoints[address] = endpoint
        self._attach(endpoint)

    def endpoint_at(self, address: str):
        return self._endpoints.get(address)

    def has_route(self, address: str) -> bool:
        return address in self._endpoints

    # -- clock + accounting -------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def mark(self) -> int:
        return len(self._log)

    def records_since(self, mark: int) -> list:
        return self._log[mark:]

    def _record(self, src: str, dst: str, label: str, nbytes: int) -> None:
        sent_at = self._now
        self._now += _TICK_S
        self._log.append(FrameRecord(src=src, dst=dst, label=label,
                                     nbytes=nbytes, sent_at=sent_at,
                                     arrived_at=self._now))

    def _wait(self, seconds: float) -> None:
        if seconds > 0:
            self._now += seconds

    # -- carrying frames ----------------------------------------------------
    def _dispatch(self, dst: str, frame: bytes) -> bytes:
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            raise self._no_endpoint(dst)
        return endpoint.handle_frame(frame)

    def _carry_frame(self, src: str, dst: str, frame: bytes, label: str,
                     reply_label: str, bill_reply: bool) -> bytes:
        self._record(src, dst, label, len(frame))
        response = self._dispatch(dst, frame)
        if bill_reply:
            self._record(dst, src, reply_label, len(response))
        return response

    def deliver(self, src: str, dst: str, nbytes: int, label: str) -> None:
        self._record(src, dst, label, nbytes)
