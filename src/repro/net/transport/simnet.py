"""Transport over the discrete-event :class:`~repro.net.sim.Network`.

Every carried frame pays the simulator's link delays, loss retries, and
node up/down state, and lands in ``network.log`` — so the E4/E8
communication-cost experiments keep reading the exact accounting they
always did, now fed by real serialized frames.  The transmit happens
*before* dispatch: a down server rejects the bytes without ever seeing
the request, matching how the failure-injection suite reasons about
partial state.
"""

from __future__ import annotations

import weakref

from repro.net.sim import Network
from repro.net.transport.base import Transport
from repro.exceptions import (LinkDownError, NetworkError,
                              NodeUnreachableError, ParameterError,
                              TransientTransportError)

_SIM_TRANSPORTS: "weakref.WeakKeyDictionary[Network, SimTransport]" = \
    weakref.WeakKeyDictionary()


def as_transport(net) -> Transport:
    """Adapt a protocol-layer ``network`` argument to a :class:`Transport`.

    Accepts a transport (returned as-is) or a :class:`Network` (wrapped in
    a per-network cached :class:`SimTransport`, so repeated protocol calls
    against one simulation share endpoint bindings and dispatch state).
    """
    if isinstance(net, Transport):
        return net
    if isinstance(net, Network):
        transport = _SIM_TRANSPORTS.get(net)
        if transport is None:
            transport = SimTransport(net)
            _SIM_TRANSPORTS[net] = transport
        return transport
    raise ParameterError("expected a Network or Transport, got %r"
                         % type(net).__name__)


class SimTransport(Transport):
    """Frames over the simulated network, endpoints dispatched in-process."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self._endpoints: dict[str, object] = {}

    # -- endpoint hosting ---------------------------------------------------
    def bind(self, address: str, endpoint) -> None:
        self._endpoints[address] = endpoint
        self._attach(endpoint)

    def endpoint_at(self, address: str):
        return self._endpoints.get(address)

    def has_route(self, address: str) -> bool:
        return address in self._endpoints

    # -- clock + accounting -------------------------------------------------
    @property
    def now(self) -> float:
        return self.network.clock.now

    def mark(self) -> int:
        return self.network.mark()

    def records_since(self, mark: int) -> list:
        return self.network.log[mark:]

    def _wait(self, seconds: float) -> None:
        if seconds > 0:
            self.network.clock.advance(seconds)

    # -- carrying frames ----------------------------------------------------
    def _dispatch(self, dst: str, frame: bytes) -> bytes:
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            raise self._no_endpoint(dst)
        return endpoint.handle_frame(frame)

    def _transmit(self, src: str, dst: str, nbytes: int, label: str) -> None:
        try:
            self.network.transmit(src, dst, nbytes, label=label)
        except (LinkDownError, NodeUnreachableError):
            raise  # topology facts, not transient weather
        except NetworkError as exc:
            # The simulator's own lossy-link give-up: retryable.
            raise TransientTransportError(str(exc)) from exc

    def _carry_frame(self, src: str, dst: str, frame: bytes, label: str,
                     reply_label: str, bill_reply: bool) -> bytes:
        self._transmit(src, dst, len(frame), label)
        response = self._dispatch(dst, frame)
        if bill_reply:
            self._transmit(dst, src, len(response), reply_label)
        return response

    def deliver(self, src: str, dst: str, nbytes: int, label: str) -> None:
        self._transmit(src, dst, nbytes, label)

    # -- onion routing (§VI.B; simulator-only) ------------------------------
    def request_via_onion(self, onion, src: str, dst: str, frame: bytes,
                          rng, label: str, reply_label: str,
                          hops: int = 3) -> tuple[bytes, str]:
        """A request/reply round through a fresh onion circuit.

        The request frame travels layered through ``hops`` relays, so the
        destination observes only the exit relay; the reply returns via
        that relay.  Returns ``(response_frame, exit_relay)``.
        """
        circuit = onion.build_circuit(rng, hops=hops)
        delivery = onion.route(src, circuit, dst, frame, rng, label=label)
        response = self._dispatch(dst, delivery.payload)
        exit_relay = delivery.observed_source
        self.network.transmit(dst, exit_relay, len(response),
                              label=reply_label)
        self.network.transmit(exit_relay, src, len(response),
                              label=reply_label + "-relay")
        return response, exit_relay
