"""The transport boundary: frames in, frames out, full accounting.

A :class:`Transport` carries opaque frames between addressed parties and
keeps the :class:`FrameRecord` log the communication-cost experiments
read.  Three primitives cover every HCPP interaction shape:

* :meth:`Transport.request` — a request/reply round (two records);
* :meth:`Transport.notify` — a one-message protocol step (one record);
  the dispatch ack still flows back so the caller learns errors and
  small results (e.g. the collection id), but the paper counts the step
  as a single transmission and so does the log;
* :meth:`Transport.deliver` — a physical/human hop (speech, typing a
  passcode, handing over plaintext): bytes are accounted, nothing is
  dispatched.

Both carrying verbs are template methods: the base class owns the
failure semantics — per-attempt fault injection (an installed
:class:`~repro.net.transport.faults.FaultPolicy`) and bounded retry with
backoff (an installed :class:`~repro.net.transport.faults.RetryPolicy`,
which retries only :class:`~repro.exceptions.TransientTransportError`)
— while backends implement the single-attempt :meth:`_carry_frame`.
With no policies installed the path is exactly one `_carry_frame` call,
so fault-free runs stay byte-identical across backends.

Backends: :class:`~repro.net.transport.loopback.LoopbackTransport`
(direct in-process dispatch), :class:`~repro.net.transport.simnet
.SimTransport` (the discrete-event simulator underneath), and
:class:`~repro.net.transport.socketnet.SocketTransport` (real TCP).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core import wire
from repro.exceptions import TransientTransportError, TransportError

_DEFAULT_ATTEMPT_TIMEOUT_S = 5.0

LOST_SUFFIX = "/lost"
DUPLICATE_SUFFIX = "/dup"


@dataclass(frozen=True)
class FrameRecord:
    """One carried frame (mirrors :class:`repro.net.sim.MessageRecord`)."""

    src: str
    dst: str
    label: str
    nbytes: int
    sent_at: float
    arrived_at: float

    @property
    def latency(self) -> float:
        return self.arrived_at - self.sent_at


class Transport(abc.ABC):
    """Carries frames between addresses; hosts dispatch endpoints."""

    _retry_policy = None
    _fault_policy = None

    #: Whether concurrent ``request`` calls from multiple threads gain
    #: real pipelining on this carrier.  Blocking backends serialize on
    #: a connection (or a virtual clock), so scatter-gather callers —
    #: the federation router — fan out serially unless this is True
    #: (the multiplexed async backend sets it).
    CONCURRENT_REQUESTS = False

    # -- endpoint hosting ---------------------------------------------------
    @abc.abstractmethod
    def bind(self, address: str, endpoint) -> None:
        """Serve ``endpoint.handle_frame`` at ``address``."""

    @abc.abstractmethod
    def endpoint_at(self, address: str):
        """The locally-bound endpoint object, or None (e.g. a route that
        points at another OS process)."""

    @abc.abstractmethod
    def has_route(self, address: str) -> bool:
        """True when frames to ``address`` can be dispatched somewhere."""

    # -- clock + accounting -------------------------------------------------
    @property
    @abc.abstractmethod
    def now(self) -> float:
        """The transport's clock (timestamps for envelopes + freshness)."""

    @abc.abstractmethod
    def mark(self) -> int:
        """Snapshot the log position (pair with :meth:`records_since`)."""

    @abc.abstractmethod
    def records_since(self, mark: int) -> list:
        """Log records appended after ``mark``."""

    # -- failure semantics --------------------------------------------------
    @property
    def retry_policy(self):
        return self._retry_policy

    def set_retry_policy(self, policy) -> None:
        """Retry frames that fail transiently (None = single attempt)."""
        self._retry_policy = policy

    @property
    def fault_policy(self):
        return self._fault_policy

    def install_faults(self, policy) -> None:
        """Consult ``policy`` on every frame attempt (None = clean wire)."""
        self._fault_policy = policy

    def _wait(self, seconds: float) -> None:
        """Let ``seconds`` of transport time pass (backoff, timeouts).
        Virtual-clock backends advance their clock; real ones sleep."""

    def _attempt_timeout_s(self) -> float:
        policy = self._retry_policy
        return (policy.attempt_timeout_s if policy is not None
                else _DEFAULT_ATTEMPT_TIMEOUT_S)

    # -- carrying frames ----------------------------------------------------
    def request(self, src: str, dst: str, frame: bytes, label: str,
                reply_label: str | None = None) -> bytes:
        """One request/reply round: dispatch ``frame``, return the
        response frame.  Logs two records (request and reply)."""
        return self._carry(src, dst, frame, label,
                           reply_label or label + "/reply", bill_reply=True)

    def notify(self, src: str, dst: str, frame: bytes, label: str) -> bytes:
        """One-message step: dispatch ``frame`` and log a single record.
        The dispatch ack is returned (errors propagate, small results
        ride back) but is not billed as a protocol message."""
        return self._carry(src, dst, frame, label, label + "/reply",
                           bill_reply=False)

    @abc.abstractmethod
    def deliver(self, src: str, dst: str, nbytes: int, label: str) -> None:
        """A physical/human hop: account ``nbytes``, dispatch nothing."""

    @abc.abstractmethod
    def _carry_frame(self, src: str, dst: str, frame: bytes, label: str,
                     reply_label: str, bill_reply: bool) -> bytes:
        """One delivery attempt: move ``frame``, account it (and the
        reply when ``bill_reply``), return the response frame."""

    def _carry(self, src: str, dst: str, frame: bytes, label: str,
               reply_label: str, bill_reply: bool) -> bytes:
        policy = self._retry_policy
        attempts = policy.max_attempts if policy is not None else 1
        deadline = (self.now + policy.deadline_s
                    if policy is not None else None)
        failure: TransientTransportError | None = None
        for attempt in range(1, attempts + 1):
            if attempt > 1:
                self._wait(policy.backoff_s(attempt - 1))
                if deadline is not None and self.now >= deadline:
                    break
            try:
                return self._attempt(src, dst, frame, label, reply_label,
                                     bill_reply)
            except TransientTransportError as exc:
                failure = exc
        if failure is None:
            failure = TransientTransportError(
                "deadline exceeded carrying %r to %r" % (label, dst))
        raise failure

    def _attempt(self, src: str, dst: str, frame: bytes, label: str,
                 reply_label: str, bill_reply: bool) -> bytes:
        faults = self._fault_policy
        if faults is None:
            return self._screen(self._carry_frame(src, dst, frame, label,
                                                  reply_label, bill_reply))
        plan = faults.plan(src, dst, label, frame)
        if plan.refused:
            raise TransientTransportError(
                "endpoint %r is down: connection refused" % dst)
        if plan.drop or plan.partitioned:
            # The bytes left the sender and died en route: account the
            # send, then burn the attempt timeout waiting for a reply
            # that will never come.
            self.deliver(src, dst, len(frame), label + LOST_SUFFIX)
            self._wait(self._attempt_timeout_s())
            raise TransientTransportError(
                "frame %r to %r %s (no reply within %.1fs)"
                % (label, dst,
                   "lost to a partition" if plan.partitioned else "dropped",
                   self._attempt_timeout_s()))
        if plan.delay_s:
            self._wait(plan.delay_s)
        response = self._carry_frame(src, dst, plan.frame, label,
                                     reply_label, bill_reply)
        if plan.duplicate:
            # The network delivered the same frame twice.  The receiver
            # processes both; whatever it answers the second time is
            # discarded here (the sender only ever consumes one reply)
            # but captured for the chaos tests to inspect.
            dup_reply = self._carry_frame(src, dst, plan.frame,
                                          label + DUPLICATE_SUFFIX,
                                          reply_label, False)
            faults.note_duplicate_reply(label, dup_reply)
        return self._screen(response)

    @staticmethod
    def _screen(response: bytes) -> bytes:
        """Re-raise a *serialized* transient refusal so retry fires.

        In-process backends let a crashed durable endpoint's
        ``TransientTransportError`` propagate up through the attempt;
        socket/async servers serialize the same exception into an error
        response.  Without this, remote refusals would dodge the retry
        loop and surface in protocol code instead.
        """
        message = wire.transient_error_in(response)
        if message is not None:
            raise TransientTransportError(message)
        return response

    # -- shared plumbing ----------------------------------------------------
    def _attach(self, endpoint) -> None:
        attach = getattr(endpoint, "attach", None)
        if attach is not None:
            attach(self)

    @staticmethod
    def _no_endpoint(dst: str) -> TransportError:
        return TransportError("no endpoint bound at %r" % dst)
