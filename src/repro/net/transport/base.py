"""The transport boundary: frames in, frames out, full accounting.

A :class:`Transport` carries opaque frames between addressed parties and
keeps the :class:`FrameRecord` log the communication-cost experiments
read.  Three primitives cover every HCPP interaction shape:

* :meth:`Transport.request` — a request/reply round (two records);
* :meth:`Transport.notify` — a one-message protocol step (one record);
  the dispatch ack still flows back so the caller learns errors and
  small results (e.g. the collection id), but the paper counts the step
  as a single transmission and so does the log;
* :meth:`Transport.deliver` — a physical/human hop (speech, typing a
  passcode, handing over plaintext): bytes are accounted, nothing is
  dispatched.

Backends: :class:`~repro.net.transport.loopback.LoopbackTransport`
(direct in-process dispatch), :class:`~repro.net.transport.simnet
.SimTransport` (the discrete-event simulator underneath), and
:class:`~repro.net.transport.socketnet.SocketTransport` (real TCP).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.exceptions import TransportError


@dataclass(frozen=True)
class FrameRecord:
    """One carried frame (mirrors :class:`repro.net.sim.MessageRecord`)."""

    src: str
    dst: str
    label: str
    nbytes: int
    sent_at: float
    arrived_at: float

    @property
    def latency(self) -> float:
        return self.arrived_at - self.sent_at


class Transport(abc.ABC):
    """Carries frames between addresses; hosts dispatch endpoints."""

    # -- endpoint hosting ---------------------------------------------------
    @abc.abstractmethod
    def bind(self, address: str, endpoint) -> None:
        """Serve ``endpoint.handle_frame`` at ``address``."""

    @abc.abstractmethod
    def endpoint_at(self, address: str):
        """The locally-bound endpoint object, or None (e.g. a route that
        points at another OS process)."""

    @abc.abstractmethod
    def has_route(self, address: str) -> bool:
        """True when frames to ``address`` can be dispatched somewhere."""

    # -- clock + accounting -------------------------------------------------
    @property
    @abc.abstractmethod
    def now(self) -> float:
        """The transport's clock (timestamps for envelopes + freshness)."""

    @abc.abstractmethod
    def mark(self) -> int:
        """Snapshot the log position (pair with :meth:`records_since`)."""

    @abc.abstractmethod
    def records_since(self, mark: int) -> list:
        """Log records appended after ``mark``."""

    # -- carrying frames ----------------------------------------------------
    @abc.abstractmethod
    def request(self, src: str, dst: str, frame: bytes, label: str,
                reply_label: str | None = None) -> bytes:
        """One request/reply round: dispatch ``frame``, return the
        response frame.  Logs two records (request and reply)."""

    @abc.abstractmethod
    def notify(self, src: str, dst: str, frame: bytes, label: str) -> bytes:
        """One-message step: dispatch ``frame`` and log a single record.
        The dispatch ack is returned (errors propagate, small results
        ride back) but is not billed as a protocol message."""

    @abc.abstractmethod
    def deliver(self, src: str, dst: str, nbytes: int, label: str) -> None:
        """A physical/human hop: account ``nbytes``, dispatch nothing."""

    # -- shared plumbing ----------------------------------------------------
    def _attach(self, endpoint) -> None:
        attach = getattr(endpoint, "attach", None)
        if attach is not None:
            attach(self)

    @staticmethod
    def _no_endpoint(dst: str) -> TransportError:
        return TransportError("no endpoint bound at %r" % dst)
