"""Simulated time.

All HCPP messages carry timestamps t₁…t₁₄ for replay protection, and the
efficiency experiments measure end-to-end protocol latency — both need a
controllable clock.  :class:`SimClock` is a monotonic simulated clock that
entities share; protocols read it for timestamps and the transport layer
advances it by link delays.
"""

from __future__ import annotations

from repro.exceptions import ParameterError


class SimClock:
    """A monotonic simulated clock, in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds; returns the new time."""
        if delta < 0:
            raise ParameterError("cannot advance the clock backwards")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time, which must not be in the past."""
        if timestamp < self._now:
            raise ParameterError("cannot rewind the clock")
        self._now = timestamp
        return self._now
