"""Onion-routing overlay — the paper's Tor countermeasure (§VI.B).

Traffic-analysis Category 2: *"Attackers trace the network address of the
patient's PC or cell phone to identify the owner of the stored PHI files
… can be coped with by building our HCPP system on an anonymous
underlying network such as Tor."*  There is no Tor offline, so we build
the equivalent in-repo: source-routed circuits with layered symmetric
encryption over relay nodes of the simulated network (DESIGN.md
substitution note).

* :class:`OnionOverlay` manages a set of relay nodes and builds circuits
  of ``hops`` relays chosen by the client's DRBG.
* :meth:`OnionOverlay.wrap` produces an onion: the payload encrypted once
  per hop (innermost = exit), each layer naming only the *next* hop.
* :meth:`OnionOverlay.route` transmits the onion hop-by-hop over the
  simulated network, peeling one layer per relay; the accounting log
  therefore shows the destination receiving traffic *from the exit relay*,
  never from the patient — which is exactly the property the
  traffic-analysis experiment (E10) measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hmac_impl import hmac_sha256
from repro.crypto.modes import AuthenticatedCipher
from repro.crypto.rng import HmacDrbg
from repro.net.link import LinkClass
from repro.net.sim import Network
from repro.exceptions import NetworkError, ParameterError

_LAYER_HEADER = 64  # serialized next-hop header budget per layer


@dataclass(frozen=True)
class Circuit:
    """An ordered relay path plus the per-hop layer keys."""

    relays: tuple[str, ...]
    layer_keys: tuple[bytes, ...]


@dataclass(frozen=True)
class RoutedDelivery:
    """What the destination observes after an onion delivery."""

    payload: bytes
    observed_source: str   # the exit relay — not the true origin
    total_latency: float
    total_bytes: int


class OnionOverlay:
    """A minimal Tor-like overlay on top of :class:`~repro.net.sim.Network`."""

    def __init__(self, network: Network, relays: list[str]) -> None:
        if len(relays) < 1:
            raise ParameterError("need at least one relay")
        self.network = network
        self.relays = list(relays)
        # Relay long-term keys: in Tor these would be negotiated; here each
        # relay holds a key the client learns from the (simulated) directory.
        self._relay_keys = {r: hmac_sha256(b"relay-key", r.encode())
                            for r in relays}

    def relay_key(self, relay: str) -> bytes:
        key = self._relay_keys.get(relay)
        if key is None:
            raise ParameterError("unknown relay %r" % relay)
        return key

    def build_circuit(self, rng: HmacDrbg, hops: int = 3) -> Circuit:
        """Choose ``hops`` distinct relays (Tor's default is 3)."""
        if hops < 1:
            raise ParameterError("need at least one hop")
        if hops > len(self.relays):
            raise ParameterError("not enough relays for %d hops" % hops)
        path = tuple(rng.sample(self.relays, hops))
        return Circuit(relays=path,
                       layer_keys=tuple(self.relay_key(r) for r in path))

    # -- onion construction -----------------------------------------------
    def wrap(self, circuit: Circuit, destination: str, payload: bytes,
             rng: HmacDrbg) -> bytes:
        """Layered encryption, innermost layer addressed to ``destination``."""
        onion = len(destination).to_bytes(2, "big") + destination.encode() \
            + payload
        # Encrypt from the exit relay inward to the entry relay.
        for i in range(len(circuit.relays) - 1, -1, -1):
            cipher = AuthenticatedCipher(circuit.layer_keys[i])
            next_hop = (circuit.relays[i + 1]
                        if i + 1 < len(circuit.relays) else "")
            header = len(next_hop).to_bytes(2, "big") + next_hop.encode()
            onion = cipher.encrypt(header + onion, rng)
        return onion

    @staticmethod
    def peel(layer_key: bytes, onion: bytes) -> tuple[str, bytes]:
        """One relay's decryption: returns (next_hop_or_empty, inner onion)."""
        plain = AuthenticatedCipher(layer_key).decrypt(onion)
        hop_len = int.from_bytes(plain[:2], "big")
        next_hop = plain[2:2 + hop_len].decode()
        return next_hop, plain[2 + hop_len:]

    # -- end-to-end routing ----------------------------------------------------
    def route(self, source: str, circuit: Circuit, destination: str,
              payload: bytes, rng: HmacDrbg,
              label: str = "onion") -> RoutedDelivery:
        """Send ``payload`` source → relays… → destination over the network.

        Relays and the destination must be connected in the underlying
        :class:`Network`; this method transmits each hop and peels layers,
        so the log shows only hop-local (src, dst) pairs.
        """
        onion = self.wrap(circuit, destination, payload, rng)
        start_mark = self.network.mark()
        current = source
        for i, relay in enumerate(circuit.relays):
            self.network.transmit(current, relay, len(onion),
                                  label="%s/hop%d" % (label, i))
            next_hop, onion = self.peel(circuit.layer_keys[i], onion)
            current = relay
            expected = (circuit.relays[i + 1]
                        if i + 1 < len(circuit.relays) else "")
            if next_hop != expected:
                raise NetworkError("onion routing header mismatch")
        # Exit relay → destination: deliver the innermost payload.
        dest_len = int.from_bytes(onion[:2], "big")
        final_destination = onion[2:2 + dest_len].decode()
        if final_destination != destination:
            raise NetworkError("onion exit destination mismatch")
        inner_payload = onion[2 + dest_len:]
        self.network.transmit(current, destination, len(inner_payload),
                              label="%s/exit" % label)
        stats = self.network.stats_between(start_mark)
        return RoutedDelivery(payload=inner_payload, observed_source=current,
                              total_latency=stats["latency"],
                              total_bytes=int(stats["bytes"]))

    def connect_full_mesh(self, endpoints: list[str],
                          link_class: LinkClass = LinkClass.INTERNET) -> None:
        """Convenience: register relays and mesh them with the endpoints."""
        for relay in self.relays:
            self.network.add_node(relay)
        everyone = self.relays + endpoints
        for i, a in enumerate(everyone):
            for b in everyone[i + 1:]:
                self.network.connect(a, b, link_class)
