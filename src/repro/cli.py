"""Command-line interface: drive an HCPP deployment from a terminal.

Subcommands (all run against a fresh seeded in-process deployment):

* ``demo``      — the full story: store → retrieve → assign → emergency →
                  MHI → audit, with per-step message/byte accounting.
* ``store``     — generate a synthetic workload and upload it, printing
                  the storage-cost breakdown.
* ``search``    — store a workload, then search for a keyword.
* ``emergency`` — run the P-device break-glass flow and print the RD/TR.
* ``attacks``   — the §VI attack summary table.

Example::

    python -m repro.cli demo --files 20 --seed demo-1
"""

from __future__ import annotations

import argparse
import sys

from repro.core.system import build_system
from repro.ehr.phi import generate_workload


def _net(args, system):
    """The carrier for protocol frames: the discrete-event simulator by
    default, or a plain in-process loopback with ``--transport loopback``
    (same frames, no simulated links).  ``--faults``/``--retries`` arm a
    fault-injection and retry policy on the carrier; the configured
    carrier is cached so every step of a run shares one policy state."""
    carrier = getattr(args, "_carrier", None)
    if carrier is not None:
        return carrier
    if getattr(args, "transport", "sim") != "loopback":
        carrier = system.network
    else:
        from repro.net.transport import LoopbackTransport
        carrier = LoopbackTransport()
    faults_spec = getattr(args, "faults", None)
    retries = getattr(args, "retries", None)
    if faults_spec or retries:
        from repro.core.protocols.base import with_policies
        from repro.net.transport import RetryPolicy, parse_fault_spec
        retry = (RetryPolicy(max_attempts=retries) if retries
                 else RetryPolicy())
        faults = parse_fault_spec(faults_spec) if faults_spec else None
        carrier = with_policies(carrier, retry=retry, faults=faults)
    args._carrier = carrier
    return carrier


def _bind_servers(args, system, net):
    """Bind the configured server surfaces onto the carrier.

    ``--shards N`` (N > 1) fronts the S-server with an N-shard
    federation: the router serves the logical address, so every
    protocol step runs unchanged.  ``--data-dir`` makes the surfaces
    durable — each shard journals under its own ``sserver-shard-<i>``
    series — and binding over an existing directory *is* recovery.
    Returns the bound endpoints (or None when nothing special is on)."""
    shards = getattr(args, "shards", 1) or 1
    data_dir = getattr(args, "data_dir", None)
    if shards <= 1 and not data_dir:
        return None
    from repro.net.transport import as_transport
    # The sim carrier is a plain Network; endpoints bind on its cached
    # SimTransport adapter — the same one every protocol call resolves
    # via as_transport(), so the bindings are visible to them.
    net = as_transport(net)
    snapshot_every = getattr(args, "snapshot_every", 0) or 0
    bound = {}
    if shards > 1:
        from repro.core.federation import bind_federated_sserver
        bound["federation"] = bind_federated_sserver(
            net, system.sserver, shards, data_dir=data_dir,
            snapshot_every=snapshot_every,
            allow_partial=getattr(args, "allow_partial", False))
    if not data_dir:
        return bound
    from repro.store import (DurableStore, bind_durable_aserver,
                             bind_durable_pdevice, bind_durable_sserver)
    if shards <= 1:
        bound["sserver"] = bind_durable_sserver(
            net, system.sserver,
            DurableStore(data_dir, "sserver",
                         snapshot_every=snapshot_every))
    bound["aserver"] = bind_durable_aserver(
        net, system.state,
        DurableStore(data_dir, "aserver",
                     snapshot_every=snapshot_every))
    bound["pdevice"] = bind_durable_pdevice(
        net, system.pdevice, system.params,
        DurableStore(data_dir, "pdevice",
                     snapshot_every=snapshot_every))
    return bound


def _prepared_system(args, with_privileges: bool = False):
    from repro.core.protocols.privilege import assign_privilege
    from repro.core.protocols.storage import private_phi_storage
    system = build_system(seed=args.seed.encode())
    workload = generate_workload(system.rng.fork("cli-workload"),
                                 args.files,
                                 server_address=system.sserver.address)
    system.patient.import_collection(workload)
    net = _net(args, system)
    args._bound = _bind_servers(args, system, net)
    result = private_phi_storage(system.patient, system.sserver, net)
    if with_privileges:
        assign_privilege(system.patient, system.family, system.sserver, net)
        assign_privilege(system.patient, system.pdevice, system.sserver, net)
    return system, result


def cmd_store(args) -> int:
    system, result = _prepared_system(args)
    federation = (getattr(args, "_bound", None) or {}).get("federation")
    servers = (list(federation.shards) if federation is not None
               else [system.sserver])
    print("Stored %d PHI files at %s" % (args.files, system.sserver.name))
    print("  index: %7d B   files: %7d B   wire: %7d B in %d message(s)"
          % (result.index_bytes, result.files_bytes,
             result.stats.bytes_total, result.stats.messages))
    print("  patient-side secret: %d B (constant)"
          % system.patient.sse_keys.size_bytes())
    print("  server-side total:   %d B (O(N))%s"
          % (sum(s.total_storage_bytes() for s in servers),
             " across %d shard(s)" % len(servers)
             if federation is not None else ""))
    return 0


def cmd_search(args) -> int:
    from repro.core.protocols.retrieval import common_case_retrieval
    system, _ = _prepared_system(args)
    keywords = system.patient.collection.index.keywords()
    keyword = args.keyword or keywords[0]
    if keyword not in keywords:
        print("keyword %r not indexed; try one of: %s"
              % (keyword, ", ".join(keywords[:10])))
        return 1
    result = common_case_retrieval(system.patient, system.sserver,
                                   _net(args, system), [keyword])
    print("Search %r: %d file(s), %d messages, %d B, %.3f s simulated"
          % (keyword, len(result.files), result.stats.messages,
             result.stats.bytes_total, result.stats.latency_s))
    for phi_file in result.files:
        print("  [%s] %s" % (phi_file.category.value,
                             phi_file.medical_content))
    return 0


def cmd_emergency(args) -> int:
    from repro.core.protocols.emergency import pdevice_emergency_retrieval
    system, _ = _prepared_system(args, with_privileges=True)
    physician = system.any_physician()
    system.state.sign_in(physician.hospital, physician.physician_id)
    keyword = args.keyword or system.patient.collection.index.keywords()[0]
    system.patient.dictionary.add(keyword)
    result = pdevice_emergency_retrieval(
        physician, system.pdevice, system.state, system.sserver,
        _net(args, system), [keyword])
    print("Break-glass by %s: %d file(s), %d messages, %.1f s simulated"
          % (physician.physician_id, len(result.files),
             result.stats.messages, result.stats.latency_s))
    rd = system.pdevice.records[0]
    tr = system.state.traces[0]
    print("  RD: physician=%s keywords=%s verifies=%s"
          % (rd.physician_id, list(rd.keywords),
             rd.verify(system.params, system.state.public_key)))
    print("  TR: physician=%s t10=%.2f t11=%.2f verifies=%s"
          % (tr.physician_id, tr.t_request, tr.t_issue,
             tr.verify(system.params, system.state.public_key)))
    return 0


def cmd_demo(args) -> int:
    from repro.core.protocols.emergency import family_based_retrieval
    from repro.core.protocols.retrieval import common_case_retrieval
    system, store_result = _prepared_system(args, with_privileges=True)
    keyword = system.patient.collection.index.keywords()[0]
    print("== HCPP demo (seed=%r, %d files) ==" % (args.seed, args.files))
    print("[1] storage: %d B, %d msg" % (store_result.stats.bytes_total,
                                         store_result.stats.messages))
    retrieval = common_case_retrieval(system.patient, system.sserver,
                                      _net(args, system), [keyword])
    print("[2] common-case %r: %d file(s), %d msg"
          % (keyword, len(retrieval.files), retrieval.stats.messages))
    family = family_based_retrieval(system.family, system.sserver,
                                    _net(args, system), [keyword])
    print("[3] family emergency: %d file(s), %d msg"
          % (len(family.files), family.stats.messages))
    return cmd_emergency_tail(system, args)


def cmd_emergency_tail(system, args) -> int:
    from repro.core.accountability import AccountabilityAuditor
    from repro.core.protocols.emergency import pdevice_emergency_retrieval
    physician = system.any_physician()
    system.state.sign_in(physician.hospital, physician.physician_id)
    keyword = system.patient.collection.index.keywords()[0]
    result = pdevice_emergency_retrieval(
        physician, system.pdevice, system.state, system.sserver,
        _net(args, system), [keyword])
    print("[4] P-device emergency: %d file(s), %d msg"
          % (len(result.files), result.stats.messages))
    auditor = AccountabilityAuditor(system.params, system.state.public_key)
    complaints = auditor.build_complaints(
        system.pdevice.records, system.state.traces,
        lambda pid, t: system.state.is_on_duty(pid))
    print("[5] audit: %d transaction(s), all signatures verified"
          % len(complaints))
    return 0


def cmd_attacks(args) -> int:
    from repro.attacks.collusion import AdversaryKnowledge, coalition_matrix
    from repro.core.protocols.privilege import revoke_privilege
    system, _ = _prepared_system(args, with_privileges=True)
    keyword = system.patient.collection.index.keywords()[0]
    knowledge = AdversaryKnowledge(sserver=system.sserver,
                                   compromised_pdevice=system.pdevice)
    net = _net(args, system)
    outcomes = coalition_matrix(knowledge, system.sserver, net, keyword)
    wins = sum(o.recovered_phi for o in outcomes)
    print("Collusion: %d/%d coalitions recover PHI (all via the stolen "
          "P-device)" % (wins, len(outcomes)))
    revoke_privilege(system.patient, system.pdevice.name, system.sserver,
                     net)
    after = coalition_matrix(knowledge, system.sserver, net, keyword)
    print("After REVOKE: %d/%d succeed"
          % (sum(o.recovered_phi for o in after), len(after)))
    return 0


def cmd_recover(args) -> int:
    """Rebuild the durable state from ``--data-dir`` and audit it.

    Builds the same seeded deployment, binds the durable endpoints over
    the existing journals (which replays them), then reports what came
    back and re-verifies the accountability evidence: the audit-log hash
    chain plus an inclusion proof for every recovered trace.
    """
    from repro.core.auditlog import AuditLog
    if not args.data_dir:
        print("recover requires --data-dir pointing at a durable data "
              "directory")
        return 1
    system = build_system(seed=args.seed.encode())
    net = _net(args, system)
    try:
        bound = _bind_servers(args, system, net)
    except Exception as exc:
        print("recovery FAILED: %s: %s" % (type(exc).__name__, exc))
        return 1
    state, pdevice = system.state, system.pdevice
    federation = (bound or {}).get("federation")
    storage_servers = (list(federation.shards) if federation is not None
                       else [system.sserver])
    print("Recovered from %s (seed=%r):" % (args.data_dir, args.seed))
    print("  S-server%s: %d collection(s), %d MHI window(s), %d B stored"
          % (" (%d shards)" % len(storage_servers)
             if federation is not None else "",
             sum(s.collection_count() for s in storage_servers),
             sum(s.mhi_count() for s in storage_servers),
             sum(s.total_storage_bytes() for s in storage_servers)))
    print("  A-server: %d trace(s), audit log size %d"
          % (len(state.traces), len(state.audit_log)))
    print("  P-device: %d RD record(s), ASSIGN package %s"
          % (len(pdevice.records),
             "present" if pdevice.package is not None else "absent"))
    failures = 0
    try:
        state.audit_log.verify_chain()
        print("  audit chain: OK")
    except Exception as exc:
        print("  audit chain: FAILED (%s)" % exc)
        failures += 1
    checkpoint = state.audit_log.checkpoint()
    for index, trace in enumerate(state.traces):
        proof = state.audit_log.prove_inclusion(index)
        ok = (AuditLog.verify_entry(trace.to_bytes(), proof, checkpoint)
              and trace.verify(system.params, state.public_key))
        if not ok:
            print("  trace %d: inclusion/signature FAILED" % index)
            failures += 1
    if state.traces and not failures:
        print("  %d inclusion proof(s) + TR signature(s): OK"
              % len(state.traces))
    for index, rd in enumerate(pdevice.records):
        if not rd.verify(system.params, state.public_key):
            print("  RD %d: signature FAILED" % index)
            failures += 1
    if pdevice.records and not failures:
        print("  %d RD signature(s): OK" % len(pdevice.records))
    return 1 if failures else 0


def cmd_rebalance(args) -> int:
    """Resize a durable federation via journaled key migration.

    Binds the same seeded deployment over ``--data-dir`` (recovering
    the current shard set from the federation manifest — an interrupted
    earlier rebalance is rolled forward first), then migrates to
    ``--to N`` shards through the copy → commit → release protocol and
    reports what moved.
    """
    if not args.data_dir:
        print("rebalance requires --data-dir (the manifest and shard "
              "journals are what a rebalance migrates)")
        return 1
    if (getattr(args, "shards", 1) or 1) <= 1:
        print("rebalance requires --shards > 1 (bind the federation "
              "whose ring is being resized)")
        return 1
    from repro.core.federation import rebalance
    system = build_system(seed=args.seed.encode())
    net = _net(args, system)
    try:
        bound = _bind_servers(args, system, net)
    except Exception as exc:
        print("rebalance FAILED at bind: %s: %s"
              % (type(exc).__name__, exc))
        return 1
    federation = (bound or {}).get("federation")
    before = len(federation.shards)
    held_before = {s.name: s.collection_count() for s in federation.shards}
    phases = []
    try:
        rebalance(federation, args.to, on_step=phases.append)
    except Exception as exc:
        print("rebalance FAILED mid-migration: %s: %s (re-run to "
              "roll the journaled migration forward)"
              % (type(exc).__name__, exc))
        return 1
    print("Rebalanced %s: %d -> %d shard(s), epoch %d (%s)"
          % (args.data_dir, before, len(federation.shards),
             federation.epoch,
             " -> ".join(phases) if phases else "no-op"))
    for shard in federation.shards:
        delta = shard.collection_count() - held_before.get(shard.name, 0)
        print("  %s: %d collection(s), %d MHI window(s) [%+d]"
              % (shard.name, shard.collection_count(),
                 shard.mhi_count(), delta))
    return 0


def cmd_selfcheck(args) -> int:
    """Installation self-test: known-answer checks across the substrate."""
    from repro.crypto.aes import AES
    from repro.crypto.hmac_impl import hmac_sha256
    from repro.crypto.params import default_params, test_params
    from repro.crypto.pairing import tate_pairing

    failures = 0

    def check(name: str, ok: bool) -> None:
        nonlocal failures
        print("  [%s] %s" % ("ok" if ok else "FAIL", name))
        if not ok:
            failures += 1

    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    pt = bytes.fromhex("00112233445566778899aabbccddeeff")
    check("AES-128 FIPS-197 vector",
          AES(key).encrypt_block(pt).hex()
          == "69c4e0d86a7b0430d8cdb78070b4c55a")
    check("HMAC-SHA256 RFC-4231 vector",
          hmac_sha256(b"\x0b" * 20, b"Hi There").hex().startswith(
              "b0344c61d8db3853"))
    small = test_params()
    P = small.generator
    e = tate_pairing(P, P)
    check("pairing non-degenerate (SS160)", not e.is_one())
    check("pairing bilinear (SS160)",
          tate_pairing(P * 3, P * 5) == e ** 15)
    check("pairing output order r", (e ** small.r).is_one())
    big = default_params()
    Q = big.generator
    check("pairing bilinear (SS512)",
          tate_pairing(Q * 2, Q * 3) == tate_pairing(Q, Q) ** 6)
    print("selfcheck: %s" % ("all good" if failures == 0
                             else "%d failure(s)" % failures))
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", default="cli", help="deployment seed")
    common.add_argument("--files", type=int, default=12,
                        help="synthetic PHI files to generate")
    common.add_argument("--transport", choices=["sim", "loopback"],
                        default="sim",
                        help="frame carrier: discrete-event simulator "
                             "(default) or in-process loopback")
    common.add_argument("--faults", default=None, metavar="SPEC",
                        help="inject transport faults, e.g. "
                             "'drop=0.05,dup=0.02,seed=7' (keys: drop, "
                             "dup, corrupt, trunc, delay, delay_s, seed)")
    common.add_argument("--retries", type=int, default=None, metavar="N",
                        help="max delivery attempts per frame (default 4 "
                             "when --faults is given, else 1)")
    common.add_argument("--data-dir", default=None, metavar="PATH",
                        help="journal every acknowledged server-side "
                             "mutation under PATH (crash-consistent "
                             "durable mode); reuse the directory with "
                             "the 'recover' subcommand")
    common.add_argument("--snapshot-every", type=int, default=0,
                        metavar="N",
                        help="with --data-dir: write an atomic snapshot "
                             "every N mutations (default 0 = journal "
                             "only)")
    common.add_argument("--shards", type=int, default=1, metavar="N",
                        help="partition the S-server index across N "
                             "consistent-hash shards behind a federation "
                             "router (default 1 = single server); "
                             "composes with --data-dir (one journal per "
                             "shard)")
    common.add_argument("--allow-partial", action="store_true",
                        default=False,
                        help="with --shards: scattered searches degrade "
                             "to explicit PARTIAL results when a shard "
                             "is down (circuit-breaker routed) instead "
                             "of failing outright")
    common.add_argument("--workers", type=int, default=0, metavar="N",
                        help="crypto worker processes for the batched "
                             "pairing paths (batch verify, multi-keyword "
                             "search); 0 or 1 = serial.  Overrides "
                             "HCPP_CRYPTO_WORKERS for this run")
    parser = argparse.ArgumentParser(
        prog="repro-hcpp",
        description="Drive an in-process HCPP (ICDCS'11) deployment.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("demo", help="full walk-through",
                   parents=[common]).set_defaults(func=cmd_demo)
    sub.add_parser("store", help="upload a workload",
                   parents=[common]).set_defaults(func=cmd_store)
    search = sub.add_parser("search", help="keyword retrieval",
                            parents=[common])
    search.add_argument("--keyword", default=None)
    search.set_defaults(func=cmd_search)
    emergency = sub.add_parser("emergency", help="P-device break-glass",
                               parents=[common])
    emergency.add_argument("--keyword", default=None)
    emergency.set_defaults(func=cmd_emergency)
    sub.add_parser("attacks", help="§VI attack summary",
                   parents=[common]).set_defaults(func=cmd_attacks)
    sub.add_parser("recover",
                   help="rebuild durable state from --data-dir and "
                        "verify the audit evidence",
                   parents=[common]).set_defaults(func=cmd_recover)
    rebalance = sub.add_parser(
        "rebalance",
        help="resize a durable federation (--shards N --to M) via "
             "journaled key migration",
        parents=[common])
    rebalance.add_argument("--to", type=int, required=True, metavar="M",
                           help="target shard count after the migration")
    rebalance.set_defaults(func=cmd_rebalance)
    sub.add_parser("selfcheck",
                   help="known-answer tests across the crypto substrate",
                   parents=[common]).set_defaults(func=cmd_selfcheck)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    workers = getattr(args, "workers", 0) or 0
    if not workers:
        return args.func(args)
    # Install the process-wide default engine: every engine-aware hot
    # path (batch verify, search) picks it up without plumbing.
    from repro.crypto.engine import configure
    configure(workers)
    try:
        return args.func(args)
    finally:
        configure(0)  # drain the pool before the interpreter exits


if __name__ == "__main__":
    sys.exit(main())
