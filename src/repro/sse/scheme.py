"""SSE-1 — the non-adaptive searchable symmetric encryption of Curtmola
et al. (CCS'06), as instantiated by HCPP's private PHI storage (§IV.A–B).

The patient's SSE secret is S = {a, b, c, d, 1^γ}:

* ``a`` keys the PRP φ that scrambles node addresses in the array A,
* ``b`` keys the PRF f whose outputs mask the lookup-table entries,
* ``c`` keys the PRP ℓ that produces virtual addresses into T,
* ``d`` keys the PRP θ for multi-user trapdoor wrapping
  (:mod:`repro.sse.multiuser`),
* γ is the node-key length (λ values), fixed at 128 bits here.

The file-collection cipher E′ (key ``s``) lives alongside because the
paper's storage protocol always uploads Λ = E′_s(F) together with SI.

Client-side API: :func:`keygen`, :meth:`Sse1Scheme.build_index`,
:meth:`Sse1Scheme.trapdoor`, :meth:`Sse1Scheme.encrypt_file` /
:meth:`Sse1Scheme.decrypt_file`.  Server-side API:
:meth:`repro.sse.index.SecureIndex.search` — the server never sees any of
the keys above.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.modes import AuthenticatedCipher
from repro.crypto.prf import Prf
from repro.crypto.prp import FeistelPrp
from repro.crypto.rng import HmacDrbg
from repro.sse.index import (MASK_BYTES, SecureIndex, Trapdoor,
                             build_secure_index)
from repro.exceptions import ParameterError

KEY_BYTES = 32        # k = 256-bit seeds
BETA_BITS = 128       # β: virtual-address width — collisions negligible


@dataclass(frozen=True)
class SseKeys:
    """S = {a, b, c, d} plus the file-collection key s.

    These are exactly the secrets the privilege-assignment protocol ships
    to family / P-device (paper §IV.C): with them, an entity can compute
    trapdoors and decrypt returned PHI files; without ``d`` being current,
    the S-server rejects its wrapped trapdoors (see multiuser module).
    """

    a: bytes
    b: bytes
    c: bytes
    d: bytes
    s: bytes

    def size_bytes(self) -> int:
        return sum(len(x) for x in (self.a, self.b, self.c, self.d, self.s))

    def to_bytes(self) -> bytes:
        """Serialization used inside ASSIGN messages."""
        return b"".join((self.a, self.b, self.c, self.d, self.s))

    @classmethod
    def from_bytes(cls, data: bytes) -> "SseKeys":
        if len(data) != 5 * KEY_BYTES:
            raise ParameterError("bad SseKeys encoding")
        parts = [data[i * KEY_BYTES:(i + 1) * KEY_BYTES] for i in range(5)]
        return cls(*parts)


def keygen(rng: HmacDrbg) -> SseKeys:
    """The paper's SSE key generation: a, b, c, d ∈_R {0,1}^k plus s."""
    return SseKeys(a=rng.random_bytes(KEY_BYTES), b=rng.random_bytes(KEY_BYTES),
                   c=rng.random_bytes(KEY_BYTES), d=rng.random_bytes(KEY_BYTES),
                   s=rng.random_bytes(KEY_BYTES))


class Sse1Scheme:
    """Client-side SSE-1 operations bound to one key set."""

    def __init__(self, keys: SseKeys) -> None:
        self.keys = keys
        self._ell = FeistelPrp(keys.c, BETA_BITS)        # ℓ_c
        self._f = Prf(keys.b, MASK_BYTES * 8)            # f_b
        self._file_cipher = AuthenticatedCipher(keys.s)  # E′_s

    # -- index construction ---------------------------------------------------
    def virtual_address(self, keyword: str) -> int:
        """ℓ_c(kw): hash the keyword into {0,1}^β, then permute with ℓ."""
        digest = hashlib.sha256(b"sse-kw:" + keyword.encode()).digest()
        return self._ell.encrypt(int.from_bytes(digest[:BETA_BITS // 8], "big"))

    def build_index(self, keyword_to_fids: dict[str, list[bytes]],
                    rng: HmacDrbg, array_size: int | None = None) -> SecureIndex:
        """BuildIndex: SI = (A, T) per Fig. 2 (see :mod:`repro.sse.index`)."""
        return build_secure_index(
            keyword_to_fids=keyword_to_fids,
            key_a=self.keys.a,
            prf_b=self._f,
            address_for=self.virtual_address,
            array_size=array_size,
            rng=rng,
        )

    # -- search ----------------------------------------------------------------
    def trapdoor(self, keyword: str) -> Trapdoor:
        """TD(kw) = (ℓ_c(kw), f_b(kw)) — the paper's §IV.D trapdoor."""
        return Trapdoor(address=self.virtual_address(keyword),
                        mask=self._f(keyword.encode()))

    def search(self, index: SecureIndex, keyword: str) -> list[bytes]:
        """Client convenience: trapdoor + server-side search in one call."""
        return index.search(self.trapdoor(keyword))

    # -- the file collection Λ = E′_s(F) ---------------------------------------
    def encrypt_file(self, content: bytes, rng: HmacDrbg) -> bytes:
        """E′_s: authenticated encryption of one PHI file."""
        return self._file_cipher.encrypt(content, rng)

    def decrypt_file(self, ciphertext: bytes) -> bytes:
        """E′⁻¹_s on a returned file (raises on tampering)."""
        return self._file_cipher.decrypt(ciphertext)

    def encrypt_collection(self, files: dict[bytes, bytes],
                           rng: HmacDrbg) -> dict[bytes, bytes]:
        """Encrypt a whole fid → content collection."""
        return {fid: self.encrypt_file(content, rng)
                for fid, content in files.items()}

    def decrypt_collection(self, files: dict[bytes, bytes]) -> dict[bytes, bytes]:
        return {fid: self.decrypt_file(ct) for fid, ct in files.items()}
