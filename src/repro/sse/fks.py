"""FKS perfect hashing — O(1) worst-case lookup for the table T (ref [30]).

Paper §V.B.3: *"The design of the lookup table T in the secure index
exploits the algorithm in [30] and enables S-server to return the desired
PHI files in O(1) time."*  Reference [30] is Fredman–Komlós–Szemerédi,
*Storing a sparse table with O(1) worst case access time* (JACM 1984).

Classic two-level construction:

* Level 1: a universal hash h(x) = ((k₁·x + k₂) mod P) mod n maps the n
  keys into n buckets; the parameters are re-drawn until
  Σ |bucket|² < 4n (expected O(1) retries).
* Level 2: each bucket of size b gets its own table of size b² with an
  injective universal hash (again re-drawn until collision-free; success
  probability > 1/2 per draw).

Total space is O(n); every lookup costs exactly two hash evaluations and
one comparison — independent of n, which experiment E3 verifies against a
plain-dict ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError

# A Mersenne prime comfortably above any 128-bit key universe.
_P = (1 << 521) - 1


@dataclass(frozen=True)
class _Bucket:
    """One second-level table: injective hash parameters + slot array."""

    k1: int
    k2: int
    size: int
    slots: tuple[tuple[int, bytes] | None, ...]


class FksTable:
    """A static perfect-hash map from integer keys to byte-string values."""

    def __init__(self, n: int, k1: int, k2: int,
                 buckets: tuple[_Bucket | None, ...]) -> None:
        self._n = n
        self._k1 = k1
        self._k2 = k2
        self._buckets = buckets

    # -- construction ---------------------------------------------------------
    @classmethod
    def build(cls, entries: dict[int, bytes], rng: HmacDrbg) -> "FksTable":
        """Build a perfect hash table over ``entries`` (expected O(n))."""
        if not entries:
            return cls(0, 1, 0, ())
        keys = list(entries)
        n = len(keys)
        # Level 1: draw until the squared-bucket-size bound holds.
        while True:
            k1 = rng.randint(1, _P - 1)
            k2 = rng.randint(0, _P - 1)
            groups: list[list[int]] = [[] for _ in range(n)]
            for key in keys:
                groups[((k1 * key + k2) % _P) % n].append(key)
            if sum(len(g) ** 2 for g in groups) < 4 * n:
                break
        # Level 2: per-bucket injective tables of quadratic size.
        buckets: list[_Bucket | None] = []
        for group in groups:
            if not group:
                buckets.append(None)
                continue
            size = max(1, len(group) ** 2)
            while True:
                b1 = rng.randint(1, _P - 1)
                b2 = rng.randint(0, _P - 1)
                slots: list[tuple[int, bytes] | None] = [None] * size
                ok = True
                for key in group:
                    slot = ((b1 * key + b2) % _P) % size
                    if slots[slot] is not None:
                        ok = False
                        break
                    slots[slot] = (key, entries[key])
                if ok:
                    buckets.append(_Bucket(k1=b1, k2=b2, size=size,
                                           slots=tuple(slots)))
                    break
        return cls(n, k1, k2, tuple(buckets))

    # -- lookup ----------------------------------------------------------------
    def get(self, key: int) -> bytes | None:
        """O(1) worst-case lookup; ``None`` when the key is absent."""
        if self._n == 0:
            return None
        bucket = self._buckets[((self._k1 * key + self._k2) % _P) % self._n]
        if bucket is None:
            return None
        entry = bucket.slots[((bucket.k1 * key + bucket.k2) % _P) % bucket.size]
        if entry is None or entry[0] != key:
            return None
        return entry[1]

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self._n

    # -- accounting (storage-cost experiments) ---------------------------------
    def storage_slots(self) -> int:
        """Total second-level slots (the O(n) space bound: < 4n + n)."""
        return sum(b.size for b in self._buckets if b is not None)

    def size_bytes(self) -> int:
        """Approximate serialized size: slot payloads plus parameters."""
        payload = 0
        for bucket in self._buckets:
            if bucket is None:
                continue
            for slot in bucket.slots:
                if slot is not None:
                    payload += 16 + len(slot[1])
        # Per-bucket hash parameters (two 66-byte field elements) + header.
        params = sum(1 for b in self._buckets if b is not None) * 132 + 132
        return payload + params


def serialize_fks(table: FksTable) -> bytes:
    """Flat binary encoding of a table (what the S-server would persist).

    Layout: header (n, k1, k2) then per-bucket records; empty buckets are
    a single zero length.  All integers big-endian; hash parameters use 68
    bytes (they live modulo a 521-bit prime).
    """
    out = bytearray()
    out += table._n.to_bytes(8, "big")
    out += table._k1.to_bytes(68, "big")
    out += table._k2.to_bytes(68, "big")
    for bucket in table._buckets:
        if bucket is None:
            out += (0).to_bytes(4, "big")
            continue
        out += bucket.size.to_bytes(4, "big")
        out += bucket.k1.to_bytes(68, "big")
        out += bucket.k2.to_bytes(68, "big")
        for slot in bucket.slots:
            if slot is None:
                out += (0).to_bytes(4, "big")
            else:
                key, value = slot
                out += (1).to_bytes(4, "big")
                out += key.to_bytes(32, "big")
                out += len(value).to_bytes(4, "big")
                out += value
    return bytes(out)


def deserialize_fks(data: bytes) -> FksTable:
    """Inverse of :func:`serialize_fks`."""
    offset = 0

    def read(n: int) -> bytes:
        nonlocal offset
        chunk = data[offset:offset + n]
        if len(chunk) != n:
            raise ParameterError("truncated FKS encoding")
        offset += n
        return chunk

    n = int.from_bytes(read(8), "big")
    k1 = int.from_bytes(read(68), "big")
    k2 = int.from_bytes(read(68), "big")
    buckets: list[_Bucket | None] = []
    for _ in range(n):
        size = int.from_bytes(read(4), "big")
        if size == 0:
            buckets.append(None)
            continue
        b1 = int.from_bytes(read(68), "big")
        b2 = int.from_bytes(read(68), "big")
        slots: list[tuple[int, bytes] | None] = []
        for _ in range(size):
            present = int.from_bytes(read(4), "big")
            if not present:
                slots.append(None)
                continue
            key = int.from_bytes(read(32), "big")
            length = int.from_bytes(read(4), "big")
            slots.append((key, read(length)))
        buckets.append(_Bucket(k1=b1, k2=b2, size=size, slots=tuple(slots)))
    return FksTable(n, k1, k2, tuple(buckets))


def verify_perfect(table: FksTable, entries: dict[int, bytes]) -> bool:
    """Self-check helper used by tests: every entry retrievable, no ghosts."""
    if any(table.get(k) != v for k, v in entries.items()):
        return False
    probe_keys = [max(entries, default=0) + i + 1 for i in range(16)]
    return all(table.get(k) is None for k in probe_keys if k not in entries)
