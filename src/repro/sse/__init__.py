"""Searchable symmetric encryption — Curtmola et al. as used by HCPP.

* :mod:`repro.sse.fks` — the FKS O(1) perfect-hash lookup table (ref [30])
* :mod:`repro.sse.index` — the secure index SI = (A, T) of Fig. 2
* :mod:`repro.sse.scheme` — SSE-1 keygen / build / trapdoor / search
* :mod:`repro.sse.multiuser` — ASSIGN / REVOKE via θ_d + broadcast encryption
* :mod:`repro.sse.adaptive` — the drop-in adaptive SSE-2 variant
"""

from repro.sse.index import SecureIndex, Trapdoor
from repro.sse.scheme import Sse1Scheme, SseKeys, keygen

__all__ = ["SecureIndex", "Trapdoor", "Sse1Scheme", "SseKeys", "keygen"]
