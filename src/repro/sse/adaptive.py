"""SSE-2 — the adaptively secure construction (paper §II.B note).

The paper applies the *non-adaptive* SSE-1 "for demonstration" and remarks
that *"the adaptive SSE construction [17] which features a more robust
security notion can be applied instead without modifying other parts of
the protocols."*  This module provides that drop-in: it exposes the same
``build_index`` / ``trapdoor`` / ``search`` surface as SSE-1 so the HCPP
protocol layer can swap schemes via a constructor argument.

Construction (Curtmola SSE-2, label-per-position flavour):

* For keyword w and position j ∈ {1..|F(w)|}, derive a pseudorandom
  **label** L_{w,j} = PRF_k1(w ‖ j) and store
  ``D[L_{w,j}] = fid_j ⊕ PRF_{mask(w)}(j)`` in a flat dictionary D
  (again FKS-backed for O(1) probes).
* The trapdoor for w is the pair of per-keyword seeds
  (label_seed(w), mask_seed(w)); the server derives L_{w,1}, L_{w,2}, …
  and probes until the first miss, unmasking each hit.
* Security is adaptive because labels are unpredictable until their seed
  is revealed, and each label is used exactly once.

To hide per-keyword result counts, ``build_index`` can pad every keyword's
list to a common maximum (``pad_to``), matching SSE-2's max-padding; padded
entries carry a reserved all-zero fid that search filters out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hmac_impl import hmac_sha256
from repro.crypto.rng import HmacDrbg
from repro.sse.fks import FksTable
from repro.exceptions import ParameterError

FID_BYTES = 16
_PAD_FID = bytes(FID_BYTES)


@dataclass(frozen=True)
class AdaptiveTrapdoor:
    """Per-keyword seeds: the server can derive labels/masks, nothing else."""

    label_seed: bytes
    mask_seed: bytes

    def size_bytes(self) -> int:
        return len(self.label_seed) + len(self.mask_seed)


@dataclass
class AdaptiveIndex:
    """The dictionary D (FKS-backed) plus its entry count."""

    table: FksTable
    entries: int

    def size_bytes(self) -> int:
        return self.table.size_bytes()

    def search(self, trapdoor: AdaptiveTrapdoor,
               limit: int | None = None) -> list[bytes]:
        """Probe L_{w,1}, L_{w,2}, … until the first miss; unmask hits."""
        fids: list[bytes] = []
        j = 1
        bound = limit if limit is not None else self.entries + 1
        while j <= bound:
            label = _label(trapdoor.label_seed, j)
            masked = self.table.get(label)
            if masked is None:
                break
            fid = bytes(m ^ k for m, k in zip(masked,
                                              _mask(trapdoor.mask_seed, j)))
            if fid != _PAD_FID:
                fids.append(fid)
            j += 1
        return fids


def _label(seed: bytes, j: int) -> int:
    digest = hmac_sha256(seed, b"label:" + j.to_bytes(8, "big"))
    return int.from_bytes(digest[:16], "big")


def _mask(seed: bytes, j: int) -> bytes:
    return hmac_sha256(seed, b"mask:" + j.to_bytes(8, "big"))[:FID_BYTES]


class Sse2Scheme:
    """Client-side SSE-2 bound to two master keys (labels / masks)."""

    def __init__(self, key_labels: bytes, key_masks: bytes) -> None:
        if not key_labels or not key_masks:
            raise ParameterError("empty SSE-2 keys")
        self._k1 = key_labels
        self._k2 = key_masks

    @classmethod
    def keygen(cls, rng: HmacDrbg) -> "Sse2Scheme":
        return cls(rng.random_bytes(32), rng.random_bytes(32))

    # -- per-keyword seeds ------------------------------------------------
    def _label_seed(self, keyword: str) -> bytes:
        return hmac_sha256(self._k1, b"kw:" + keyword.encode())

    def _mask_seed(self, keyword: str) -> bytes:
        return hmac_sha256(self._k2, b"kw:" + keyword.encode())

    def trapdoor(self, keyword: str) -> AdaptiveTrapdoor:
        return AdaptiveTrapdoor(label_seed=self._label_seed(keyword),
                                mask_seed=self._mask_seed(keyword))

    # -- index ------------------------------------------------------------
    def build_index(self, keyword_to_fids: dict[str, list[bytes]],
                    rng: HmacDrbg, pad_to: int | None = None) -> AdaptiveIndex:
        """Build D; optionally pad every keyword to ``pad_to`` entries."""
        entries: dict[int, bytes] = {}
        for keyword in sorted(keyword_to_fids):
            fids = list(keyword_to_fids[keyword])
            for fid in fids:
                if len(fid) != FID_BYTES:
                    raise ParameterError("fid must be %d bytes" % FID_BYTES)
                if fid == _PAD_FID:
                    raise ParameterError(
                        "the all-zero fid is reserved as the SSE-2 padding "
                        "sentinel; assign real (random) file identifiers")
            if pad_to is not None:
                if len(fids) > pad_to:
                    raise ParameterError(
                        "keyword posting list exceeds pad_to=%d" % pad_to)
                fids += [_PAD_FID] * (pad_to - len(fids))
            label_seed = self._label_seed(keyword)
            mask_seed = self._mask_seed(keyword)
            for j, fid in enumerate(fids, start=1):
                label = _label(label_seed, j)
                if label in entries:
                    raise ParameterError("label collision (re-keygen)")
                entries[label] = bytes(
                    f ^ m for f, m in zip(fid, _mask(mask_seed, j)))
        return AdaptiveIndex(table=FksTable.build(entries, rng),
                             entries=len(entries))

    def search(self, index: AdaptiveIndex, keyword: str) -> list[bytes]:
        return index.search(self.trapdoor(keyword))
