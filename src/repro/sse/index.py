"""The secure index SI = (A, T) — the paper's Fig. 2 construction.

Data structures (paper §IV.B):

* **Array A** stores a collection of encrypted linked lists, one list L_i
  per keyword kw_i.  A node is ``fid ‖ λ ‖ pr``: the file identifier, the
  secret key that decrypts the *next* node, and the pointer (an output of
  the PRP φ) to the next node's address in A.  Nodes are scrambled across
  A by φ so the server cannot tell which nodes belong to the same list.
* **Lookup table T** maps virtual addresses ℓ_c(kw_i) to the encrypted
  head of L_i: ``T[ℓ_c(kw_i)] = (addr_{i,1} ‖ λ_{i,0}) ⊕ f_b(kw_i)`` —
  one-time-pad-masked by the PRF so only a holder of the trapdoor
  ``TD(kw) = (ℓ_c(kw), f_b(kw))`` can unmask it.  T is backed by the FKS
  perfect-hash table for the O(1) search the paper claims (§V.B.3).

Following Fig. 2's flowchart: a global counter C walks the nodes of all
lists in order; node L_{i,j} is written at A[φ_a(C)] encrypted under
λ_{i,j−1}; the head address addr_{i,1} = φ_a(C at head) and the head key
λ_{i,0} go into T.  After all real nodes are placed, A is padded with
random dummy blocks up to its full size α so the server cannot learn the
number of distinct (keyword, file) pairs.

Node wire format (τ bytes before encryption):
``fid (16) ‖ λ_next (16) ‖ next_addr (8) ‖ flags (1)`` where flag bit 0
marks the tail of a list.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto.modes import SemanticCipher
from repro.crypto.prf import Prf
from repro.crypto.prp import DomainPrp
from repro.crypto.rng import HmacDrbg
from repro.sse.fks import FksTable
from repro.exceptions import ParameterError, SearchError

FID_BYTES = 16
LAMBDA_BYTES = 16          # γ = 128 bits
ADDR_BYTES = 8
FLAG_BYTES = 1
NODE_PLAINTEXT_BYTES = FID_BYTES + LAMBDA_BYTES + ADDR_BYTES + FLAG_BYTES
NODE_CIPHERTEXT_BYTES = NODE_PLAINTEXT_BYTES + SemanticCipher.OVERHEAD
MASK_BYTES = ADDR_BYTES + LAMBDA_BYTES  # the (addr ‖ λ) value masked by f_b

_FLAG_TAIL = 0x01


@dataclass(frozen=True)
class Trapdoor:
    """TD(kw) = (ℓ_c(kw), f_b(kw)) — all the server needs to search kw."""

    address: int   # ℓ_c(kw): virtual address into T (β-bit)
    mask: bytes    # f_b(kw): the PRF pad over (addr ‖ λ)

    def to_bytes(self) -> bytes:
        return self.address.to_bytes(16, "big") + self.mask

    @classmethod
    def from_bytes(cls, data: bytes) -> "Trapdoor":
        if len(data) != 16 + MASK_BYTES:
            raise ParameterError("bad trapdoor encoding")
        return cls(address=int.from_bytes(data[:16], "big"), mask=data[16:])

    WIRE_BYTES = 16 + MASK_BYTES


def _pack_node(fid: bytes, next_key: bytes, next_addr: int, tail: bool) -> bytes:
    if len(fid) != FID_BYTES or len(next_key) != LAMBDA_BYTES:
        raise ParameterError("bad node field sizes")
    flags = _FLAG_TAIL if tail else 0
    return (fid + next_key + next_addr.to_bytes(ADDR_BYTES, "big")
            + bytes([flags]))


def _unpack_node(data: bytes) -> tuple[bytes, bytes, int, bool]:
    if len(data) != NODE_PLAINTEXT_BYTES:
        raise SearchError("decrypted node has wrong size (bad key?)")
    fid = data[:FID_BYTES]
    next_key = data[FID_BYTES:FID_BYTES + LAMBDA_BYTES]
    offset = FID_BYTES + LAMBDA_BYTES
    next_addr = int.from_bytes(data[offset:offset + ADDR_BYTES], "big")
    tail = bool(data[-1] & _FLAG_TAIL)
    return fid, next_key, next_addr, tail


@dataclass
class SecureIndex:
    """SI = (A, T): what the patient uploads and the S-server searches.

    Contains **no plaintext**: A holds only ciphertext nodes (real ones
    interleaved with indistinguishable random padding), T holds only
    PRF-masked values behind PRP-randomized virtual addresses.
    """

    array: list[bytes]       # A: α slots of NODE_CIPHERTEXT_BYTES each
    table: FksTable          # T: virtual address -> masked (addr ‖ λ)
    array_size: int          # α

    def size_bytes(self) -> int:
        """Serialized size of the index (storage-cost experiments)."""
        return sum(len(slot) for slot in self.array) + self.table.size_bytes()

    def digest(self) -> bytes:
        """SHA-256 over SI = (A, T) — the value the upload HMAC binds.

        Binds *both* components: the array A and the serialized FKS lookup
        table T.  (T carries the masked list heads; leaving it out of the
        digest would let the storage server swap lookup tables between
        collections without the integrity check noticing.)
        """
        from repro.sse.fks import serialize_fks
        hasher = hashlib.sha256(b"secure-index:")
        hasher.update(self.array_size.to_bytes(8, "big"))
        for slot in self.array:
            hasher.update(slot)
        table_blob = serialize_fks(self.table)
        hasher.update(len(table_blob).to_bytes(8, "big"))
        hasher.update(table_blob)
        return hasher.digest()

    def to_bytes(self) -> bytes:
        """Full wire/persistence encoding of SI = (A, T)."""
        from repro.sse.fks import serialize_fks
        table_blob = serialize_fks(self.table)
        out = bytearray()
        out += self.array_size.to_bytes(8, "big")
        out += len(self.array).to_bytes(8, "big")
        for slot in self.array:
            out += len(slot).to_bytes(4, "big")
            out += slot
        out += len(table_blob).to_bytes(8, "big")
        out += table_blob
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SecureIndex":
        """Inverse of :meth:`to_bytes` (server-side load from disk)."""
        from repro.sse.fks import deserialize_fks
        offset = 0

        def read(n: int) -> bytes:
            nonlocal offset
            chunk = data[offset:offset + n]
            if len(chunk) != n:
                raise ParameterError("truncated SecureIndex encoding")
            offset += n
            return chunk

        array_size = int.from_bytes(read(8), "big")
        n_slots = int.from_bytes(read(8), "big")
        array = []
        for _ in range(n_slots):
            length = int.from_bytes(read(4), "big")
            array.append(read(length))
        table_length = int.from_bytes(read(8), "big")
        table = deserialize_fks(read(table_length))
        return cls(array=array, table=table, array_size=array_size)

    def search(self, trapdoor: Trapdoor) -> list[bytes]:
        """The S-server's SEARCH algorithm (paper §IV.D).

        δ = T[ℓ_c(kw)];  υ = δ ⊕ f_b(kw) = (addr ‖ λ);  then walk the
        linked list, decrypting each node with the key carried by its
        predecessor.  Returns the file identifiers, in list order.
        Unknown keywords return an empty list (δ absent from T).
        """
        masked = self.table.get(trapdoor.address)
        if masked is None:
            return []
        if len(masked) != MASK_BYTES or len(trapdoor.mask) != MASK_BYTES:
            raise SearchError("malformed table entry or trapdoor")
        value = bytes(m ^ k for m, k in zip(masked, trapdoor.mask))
        addr = int.from_bytes(value[:ADDR_BYTES], "big")
        key = value[ADDR_BYTES:]
        fids: list[bytes] = []
        for _ in range(self.array_size + 1):  # cycle guard
            if addr >= self.array_size:
                raise SearchError("node pointer out of range (bad trapdoor?)")
            cipher = SemanticCipher(key)
            try:
                node = cipher.decrypt(self.array[addr])
            except Exception as exc:
                raise SearchError("node decryption failed") from exc
            fid, key, addr, tail = _unpack_node(node)
            fids.append(fid)
            if tail:
                return fids
        raise SearchError("linked list does not terminate (corrupt index)")


def build_secure_index(
    keyword_to_fids: dict[str, list[bytes]],
    key_a: bytes,
    prf_b: Prf,
    address_for: "callable",
    array_size: int | None,
    rng: HmacDrbg,
) -> SecureIndex:
    """Fig. 2: construct SI = (A, T) from the keyword → file-ids map.

    ``address_for(kw) -> int`` supplies ℓ_c(kw) (the scheme passes a PRP
    evaluation); ``prf_b`` is the masking PRF f_b; ``key_a`` keys the
    address-scrambling PRP φ_a.  ``array_size`` is α; when ``None`` it is
    sized to the real node count padded ~25% (and at least 8) so padding
    hides the exact pair count.
    """
    total_nodes = sum(len(fids) for fids in keyword_to_fids.values())
    if array_size is None:
        array_size = max(8, total_nodes + max(2, total_nodes // 4))
    if array_size < total_nodes:
        raise ParameterError("array size α smaller than the node count")
    phi = DomainPrp(key_a, array_size)

    array: list[bytes | None] = [None] * array_size
    table_entries: dict[int, bytes] = {}
    counter = 0  # Fig. 2's global counter C (0-based here)

    # Deterministic keyword order keeps builds reproducible from one seed.
    for keyword in sorted(keyword_to_fids):
        fids = keyword_to_fids[keyword]
        if not fids:
            continue
        head_addr = phi.encrypt(counter)
        # λ_{i,0}: the key stored (masked) in T that opens the head node.
        lam_prev = rng.random_bytes(LAMBDA_BYTES)
        head_key = lam_prev
        for j, fid in enumerate(fids):
            tail = j == len(fids) - 1
            lam_next = rng.random_bytes(LAMBDA_BYTES)
            next_addr = 0 if tail else phi.encrypt(counter + 1)
            node = _pack_node(fid, lam_next if not tail else bytes(LAMBDA_BYTES),
                              next_addr, tail)
            slot = phi.encrypt(counter)
            array[slot] = SemanticCipher(lam_prev).encrypt(node, rng)
            lam_prev = lam_next
            counter += 1
        value = head_addr.to_bytes(ADDR_BYTES, "big") + head_key
        mask = prf_b(keyword.encode())
        if len(mask) != MASK_BYTES:
            raise ParameterError("PRF f_b output must be %d bytes" % MASK_BYTES)
        virtual_address = address_for(keyword)
        if virtual_address in table_entries:
            raise ParameterError("virtual-address collision in T "
                                 "(increase β)")
        table_entries[virtual_address] = bytes(
            v ^ m for v, m in zip(value, mask))

    # Pad A: unused slots get random blocks indistinguishable from nodes.
    for i, slot in enumerate(array):
        if slot is None:
            array[i] = rng.random_bytes(NODE_CIPHERTEXT_BYTES)

    table = FksTable.build(table_entries, rng)
    return SecureIndex(array=array, table=table,  # type: ignore[arg-type]
                       array_size=array_size)


# ---------------------------------------------------------------------------
# Deserialization cache: the S-server persists indexes as blobs and pays a
# full `from_bytes` (FKS rebuild included) on every search of a blob-backed
# collection.  Cache the deserialized object per blob hash so repeated
# searches of hot collections skip the parse entirely.
#
# Two deployment realities shape the implementation (federation PR):
#
# * N co-located S-server shards (loopback/sim transports, tests, the
#   CLI with --shards) share this one process-global cache, so the old
#   fixed 32-entry capacity thrashed.  ``HCPP_INDEX_CACHE`` (read at
#   call time) sizes it per deployment.
# * Concurrent misses on the *same* blob — pipelined async searches of
#   one hot collection — each paid a full duplicate ``from_bytes``.
#   Misses now collapse: the first caller becomes the loader, later
#   callers wait on its event and share the one deserialized object
#   (counted in ``index_cache_stats["collapsed"]``).
# ---------------------------------------------------------------------------

_INDEX_CACHE_CAPACITY = 32          # default when HCPP_INDEX_CACHE is unset
_INDEX_CACHE_ENV = "HCPP_INDEX_CACHE"
_index_cache: "OrderedDict[bytes, SecureIndex]" = OrderedDict()
_index_cache_lock = threading.Lock()
#: In-flight loads by blob hash; waiters block on the event instead of
#: re-parsing.  Guarded by _index_cache_lock.
_index_loading: "dict[bytes, threading.Event]" = {}
index_cache_stats = {"hits": 0, "misses": 0, "collapsed": 0}


def index_cache_capacity() -> int:
    """Resolved cache capacity: ``HCPP_INDEX_CACHE`` or the default.

    Read per call so tests and long-lived deployments can retune
    without reimporting; invalid or negative values fall back to the
    default (a cache must never crash a search).
    """
    raw = os.environ.get(_INDEX_CACHE_ENV)
    if raw:
        try:
            capacity = int(raw)
        except ValueError:
            return _INDEX_CACHE_CAPACITY
        if capacity >= 1:
            return capacity
    return _INDEX_CACHE_CAPACITY


def load_index_cached(blob: bytes) -> SecureIndex:
    """``SecureIndex.from_bytes(blob)``, memoised by SHA-256 of the blob.

    Callers must treat the returned index as read-only — it is shared
    between every caller that presents the same blob (including concurrent
    search workers; :meth:`SecureIndex.search` never mutates the index).

    Concurrent misses on one key collapse to a single deserialization:
    one thread loads, the rest wait and share its result.  If the load
    raises, waiters retry the load themselves (counted as their own
    misses) rather than inheriting the leader's exception blindly.
    """
    key = hashlib.sha256(blob).digest()
    while True:
        with _index_cache_lock:
            hit = _index_cache.get(key)
            if hit is not None:
                _index_cache.move_to_end(key)
                index_cache_stats["hits"] += 1
                return hit
            pending = _index_loading.get(key)
            if pending is None:
                # This thread is the loader for `key`.
                _index_loading[key] = threading.Event()
                index_cache_stats["misses"] += 1
                break
            index_cache_stats["collapsed"] += 1
        pending.wait()
        # Loader finished (or failed); loop to re-check the cache.
    loaded = None
    try:
        loaded = SecureIndex.from_bytes(blob)
        return loaded
    finally:
        with _index_cache_lock:
            if loaded is not None:
                _index_cache[key] = loaded
                _index_cache.move_to_end(key)
                capacity = index_cache_capacity()
                while len(_index_cache) > capacity:
                    _index_cache.popitem(last=False)
            event = _index_loading.pop(key, None)
        if event is not None:
            event.set()


def clear_index_cache() -> None:
    """Drop all cached indexes and reset every counter.

    In-flight loads are left to finish (their events still fire); their
    results land in the now-empty cache.
    """
    with _index_cache_lock:
        _index_cache.clear()
        index_cache_stats["hits"] = 0
        index_cache_stats["misses"] = 0
        index_cache_stats["collapsed"] = 0


# ---------------------------------------------------------------------------
# Engine task: the S-server's multi-collection search ships each blob-backed
# collection to a crypto-engine worker, which deserializes through its own
# per-process index cache and walks every trapdoor.  Defined here (not in
# the engine) so the crypto layer never has to import sse — the engine
# resolves the dotted spec with importlib inside the worker.
# ---------------------------------------------------------------------------

#: Task spec for :func:`repro.crypto.engine.CryptoEngine.map`.
SEARCH_BLOB_SPEC = "repro.sse.index:_search_blob_task"


def _search_blob_task(item: "tuple[bytes, list[bytes]]") -> list[list[bytes]]:
    """``(index_blob, raw_trapdoors)`` → one fid list per trapdoor.

    Pure function of the blob bytes: results equal
    ``SecureIndex.from_bytes(blob).search(td)`` per trapdoor, in order.
    """
    blob, raw_trapdoors = item
    index = load_index_cached(blob)
    return [index.search(Trapdoor.from_bytes(raw)) for raw in raw_trapdoors]
