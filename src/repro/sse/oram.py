"""Path ORAM — the paper's stronger search-pattern countermeasure.

Paper §VI.B, category 1: previous searches leak *"whether two searches
were for a same keyword.  There are well established schemes [15], [16]
to hide this information with lower efficiency"* — references [15]/[16]
are Ostrovsky's and Goldreich–Ostrovsky's oblivious-RAM line.  This
module supplies an ORAM so that trade-off can actually be measured
(experiment E10's ORAM ablation): storing the secure index's array A
inside an ORAM makes every search touch a *uniformly random tree path*,
eliminating the repeated-address leak at a logarithmic bandwidth cost.

We implement **Path ORAM** (Stefanov et al., CCS'13) — the simplest
tree-based ORAM with the same asymptotics as the cited constructions and
a much smaller constant:

* the server holds a complete binary tree of buckets, each with Z slots
  of fixed-size encrypted blocks (real blocks are indistinguishable from
  dummies — all slots are always ciphertext);
* the client holds a position map (block id → random leaf) and a small
  stash;
* ``access(id)`` reads the whole path to the block's leaf, remaps the
  block to a fresh random leaf, and writes the path back greedily.

Every access therefore presents the server with: one uniformly random
leaf path read + the same path written, independent of which block was
requested or whether two accesses hit the same block.

:class:`ObliviousStore` adapts the ORAM to a byte-addressed key/value
surface used by the SSE ablation (each SSE array slot is one block).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.modes import SemanticCipher
from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError, StorageError

BUCKET_SIZE = 4          # Z: blocks per bucket (the Path ORAM standard)
_BLOCK_HEADER = 8        # block id prefix inside the plaintext


@dataclass
class AccessTrace:
    """What the server observes for one access: the touched leaf path."""

    leaf: int
    path_nodes: tuple[int, ...]


class PathOram:
    """A Path ORAM over ``capacity`` fixed-size blocks.

    The *client* state is this object (position map + stash + key); the
    *server* state is :attr:`buckets` — all ciphertext, re-encrypted on
    every write-back.  ``trace`` records the leaf of every access so
    experiments can test the access-pattern distribution.
    """

    def __init__(self, capacity: int, block_size: int, key: bytes,
                 rng: HmacDrbg) -> None:
        if capacity < 1:
            raise ParameterError("capacity must be >= 1")
        if block_size < 1:
            raise ParameterError("block size must be >= 1")
        self.capacity = capacity
        self.block_size = block_size
        self._cipher = SemanticCipher(key)
        self._rng = rng
        # Tree with at least `capacity` leaves.
        self.levels = max(1, math.ceil(math.log2(max(2, capacity))))
        self.n_leaves = 1 << self.levels
        n_nodes = 2 * self.n_leaves - 1
        # Server storage: every slot always holds a ciphertext (dummies
        # included) so occupancy is invisible.
        self.buckets: list[list[bytes]] = [
            [self._encrypt_dummy() for _ in range(BUCKET_SIZE)]
            for _ in range(n_nodes)
        ]
        # Client storage.
        self._position: dict[int, int] = {}
        self._stash: dict[int, bytes] = {}
        self.trace: list[AccessTrace] = []

    # -- block encoding ---------------------------------------------------
    def _encrypt_block(self, block_id: int, data: bytes) -> bytes:
        if len(data) > self.block_size:
            raise ParameterError("block data exceeds block size")
        padded = data.ljust(self.block_size, b"\x00")
        plaintext = block_id.to_bytes(_BLOCK_HEADER, "big") + padded
        return self._cipher.encrypt(plaintext, self._rng)

    def _encrypt_dummy(self) -> bytes:
        plaintext = (0xFFFFFFFFFFFFFFFF).to_bytes(_BLOCK_HEADER, "big") \
            + bytes(self.block_size)
        return self._cipher.encrypt(plaintext, self._rng)

    def _decrypt_block(self, ciphertext: bytes) -> tuple[int, bytes] | None:
        plaintext = self._cipher.decrypt(ciphertext)
        block_id = int.from_bytes(plaintext[:_BLOCK_HEADER], "big")
        if block_id == 0xFFFFFFFFFFFFFFFF:
            return None
        return block_id, plaintext[_BLOCK_HEADER:]

    # -- tree geometry -----------------------------------------------------
    def _path_nodes(self, leaf: int) -> list[int]:
        """Node indices from root to the given leaf (heap layout)."""
        node = self.n_leaves - 1 + leaf  # leaves occupy the last level
        path = []
        while True:
            path.append(node)
            if node == 0:
                break
            node = (node - 1) // 2
        path.reverse()
        return path

    # -- the access protocol ----------------------------------------------
    def access(self, block_id: int, write_data: bytes | None = None) -> bytes:
        """Oblivious read (and optional write) of one block.

        Returns the block's previous contents (zeros if never written).
        The server-visible behaviour is identical for reads and writes,
        and for hits on the same or different blocks.
        """
        if not 0 <= block_id < self.capacity:
            raise ParameterError("block id out of range")
        leaf = self._position.get(block_id)
        if leaf is None:
            leaf = self._rng.randrange(self.n_leaves)
        # Remap before anything else: the next access is independent.
        self._position[block_id] = self._rng.randrange(self.n_leaves)

        path = self._path_nodes(leaf)
        self.trace.append(AccessTrace(leaf=leaf, path_nodes=tuple(path)))

        # 1. Read the whole path into the stash.
        for node in path:
            for slot, ciphertext in enumerate(self.buckets[node]):
                decoded = self._decrypt_block(ciphertext)
                if decoded is not None:
                    self._stash[decoded[0]] = decoded[1]
                self.buckets[node][slot] = self._encrypt_dummy()

        # 2. Serve the request from the stash.
        previous = self._stash.get(block_id, bytes(self.block_size))
        if write_data is not None:
            self._stash[block_id] = write_data.ljust(self.block_size,
                                                     b"\x00")
        elif block_id not in self._stash:
            self._stash[block_id] = previous

        # 3. Greedy write-back: push each stash block as deep as its
        #    (new) position allows along this path.
        for node in reversed(path):
            placed: list[int] = []
            for candidate, data in self._stash.items():
                if len(placed) == BUCKET_SIZE:
                    break
                candidate_leaf = self._position.get(candidate)
                if candidate_leaf is None:
                    continue
                if node in self._path_nodes(candidate_leaf):
                    slot = len(placed)
                    self.buckets[node][slot] = self._encrypt_block(candidate,
                                                                   data)
                    placed.append(candidate)
            for candidate in placed:
                del self._stash[candidate]
        return previous

    def read(self, block_id: int) -> bytes:
        return self.access(block_id)

    def write(self, block_id: int, data: bytes) -> None:
        self.access(block_id, write_data=data)

    # -- accounting ---------------------------------------------------------
    @property
    def stash_size(self) -> int:
        return len(self._stash)

    def server_storage_bytes(self) -> int:
        return sum(len(ct) for bucket in self.buckets for ct in bucket)

    def bandwidth_blocks_per_access(self) -> int:
        """Blocks moved per access: one full path, read + written."""
        return 2 * (self.levels + 1) * BUCKET_SIZE


class ObliviousStore:
    """A keyword-search front over Path ORAM for the E10 ablation.

    Maps opaque labels (e.g. SSE table addresses) to fixed-size values,
    with every lookup producing a full ORAM access — repeated queries for
    the same label are statistically indistinguishable from fresh ones.
    """

    def __init__(self, capacity: int, value_size: int, key: bytes,
                 rng: HmacDrbg) -> None:
        self._oram = PathOram(capacity, value_size, key, rng)
        self._labels: dict[bytes, int] = {}
        self._next = 0

    def put(self, label: bytes, value: bytes) -> None:
        index = self._labels.get(label)
        if index is None:
            if self._next >= self._oram.capacity:
                raise StorageError("oblivious store is full")
            index = self._next
            self._next += 1
            self._labels[label] = index
        self._oram.write(index, value)

    def get(self, label: bytes) -> bytes | None:
        index = self._labels.get(label)
        if index is None:
            # Unknown labels still perform a dummy access so misses are
            # indistinguishable from hits.
            if self._next > 0:
                self._oram.read(self._rng_dummy_index())
            return None
        value = self._oram.read(index)
        return value

    def _rng_dummy_index(self) -> int:
        return self._oram._rng.randrange(max(1, self._next))

    @property
    def trace(self) -> list[AccessTrace]:
        return self._oram.trace

    def bandwidth_blocks_per_access(self) -> int:
        return self._oram.bandwidth_blocks_per_access()
