"""Multi-user SSE: the ASSIGN / REVOKE extension (paper §IV.C).

Curtmola et al. extend SSE to many searchers with one extra PRP θ keyed by
a rotating secret ``d`` and a broadcast-encryption layer:

* The owner gives every privileged entity u ∈ U the SSE keys **and** the
  BE receiver secret X_u; the S-server holds the current ``d`` *and*
  ``BE_U(d)`` so privileged entities can fetch the current ``d`` on demand
  (this is steps 1–2 of the family-based emergency retrieval).
* A privileged searcher wraps its trapdoor: ``TD_U(kw) = θ_d(TD(kw))``.
  The server unwraps with θ_d⁻¹ and *checks validity* before searching —
  validity is an embedded MAC tag bound to ``d``, so a wrap under a stale
  ``d′ ≠ d`` unwraps to garbage and is rejected.
* REVOKE rotates ``d → d′`` and replaces the stored broadcast with
  ``BE_U′(d′)`` covering only the surviving set U′.  A revoked P-device
  still *knows* the old d, but the server no longer accepts θ_{d_old}
  wraps, and it cannot decrypt BE_U′(d′): search capability is gone
  without touching a single PHI ciphertext.

The owner (patient) bypasses θ entirely — the common-case retrieval
protocol sends bare trapdoors authenticated under the patient's pseudonym
key, matching the paper's §IV.D message flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.broadcast import (BroadcastCiphertext, BroadcastEncryption,
                                    ReceiverSecret)
from repro.crypto.hmac_impl import constant_time_equal, hmac_sha256
from repro.crypto.prp import FeistelPrp
from repro.crypto.rng import HmacDrbg
from repro.sse.index import Trapdoor
from repro.exceptions import AccessDenied, ParameterError

_TAG_BYTES = 8
_WRAP_BYTES = Trapdoor.WIRE_BYTES + _TAG_BYTES
_WRAP_BITS = _WRAP_BYTES * 8
D_BYTES = 32


@dataclass(frozen=True)
class WrappedTrapdoor:
    """TD_U(kw) = θ_d(TD(kw) ‖ tag): what a privileged entity sends."""

    data: bytes

    def size_bytes(self) -> int:
        return len(self.data)


def wrap_trapdoor(d: bytes, trapdoor: Trapdoor) -> WrappedTrapdoor:
    """Entity-side wrapping under the current group secret ``d``."""
    body = trapdoor.to_bytes()
    tag = hmac_sha256(d, b"td-validity:" + body)[:_TAG_BYTES]
    theta = FeistelPrp(d, _WRAP_BITS)
    return WrappedTrapdoor(theta.encrypt_bytes(body + tag))


def unwrap_trapdoor(d: bytes, wrapped: WrappedTrapdoor) -> Trapdoor:
    """Server-side θ_d⁻¹ plus the validity check the paper calls for.

    Raises :class:`AccessDenied` when the tag fails — which is what
    happens to every wrap produced under a stale (revoked) ``d``.
    """
    if len(wrapped.data) != _WRAP_BYTES:
        raise ParameterError("bad wrapped-trapdoor length")
    theta = FeistelPrp(d, _WRAP_BITS)
    plain = theta.decrypt_bytes(wrapped.data)
    body, tag = plain[:-_TAG_BYTES], plain[-_TAG_BYTES:]
    expected = hmac_sha256(d, b"td-validity:" + body)[:_TAG_BYTES]
    if not constant_time_equal(tag, expected):
        raise AccessDenied("wrapped trapdoor failed validity check "
                           "(revoked or forged)")
    return Trapdoor.from_bytes(body)


class PrivilegeManager:
    """Patient-side state for ASSIGN / REVOKE.

    Owns the BE tree (master secret + leaf assignment) and the current
    group secret ``d``.  ASSIGN yields the per-entity receiver secret X;
    REVOKE rotates ``d`` and emits the new ``BE_U′(d′)`` for the S-server.
    """

    def __init__(self, capacity: int, rng: HmacDrbg) -> None:
        self._be = BroadcastEncryption(rng.random_bytes(32), capacity)
        self._rng = rng
        self._next_leaf = 0
        self._leaves: dict[str, int] = {}
        self._revoked: set[int] = set()
        self.current_d = rng.random_bytes(D_BYTES)

    @property
    def capacity(self) -> int:
        return self._be.capacity

    def assign(self, entity_name: str) -> ReceiverSecret:
        """ASSIGN: register an entity and return its BE secret X."""
        if entity_name in self._leaves:
            return self._be.receiver_secret(self._leaves[entity_name])
        if self._next_leaf >= self._be.capacity:
            raise ParameterError("privilege capacity exhausted")
        leaf = self._next_leaf
        self._next_leaf += 1
        self._leaves[entity_name] = leaf
        return self._be.receiver_secret(leaf)

    def broadcast_d(self) -> BroadcastCiphertext:
        """BE_U(d) for the current set U — what the S-server stores."""
        # Leaves never assigned are treated as revoked so that only real
        # entities can open the broadcast.
        unassigned = set(range(self._next_leaf, self._be.capacity))
        return self._be.encrypt(self.current_d,
                                frozenset(self._revoked | unassigned),
                                self._rng)

    def revoke(self, entity_name: str) -> BroadcastCiphertext:
        """REVOKE: rotate d and return BE_U′(d′) to upload to the S-server.

        Paper §IV.C: ``patient → S-server: E′_ν(d′ ‖ BE′_U′(d′)) …`` — the
        protocol layer handles the envelope; this returns the new payload.
        """
        if entity_name not in self._leaves:
            raise ParameterError("unknown entity %r" % entity_name)
        self._revoked.add(self._leaves[entity_name])
        self.current_d = self._rng.random_bytes(D_BYTES)
        return self.broadcast_d()

    def is_revoked(self, entity_name: str) -> bool:
        leaf = self._leaves.get(entity_name)
        return leaf is None or leaf in self._revoked


def recover_d(broadcast: BroadcastCiphertext, secret: ReceiverSecret,
              capacity: int) -> bytes:
    """Entity-side recovery of the current d from BE_U(d) using X.

    Raises :class:`repro.exceptions.RevokedError` when the entity has been
    cut out of the cover.
    """
    return BroadcastEncryption.decrypt(broadcast, secret, capacity)
