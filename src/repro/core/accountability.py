"""Accountability: traces (TR), device records (RD), and the audit trail.

Paper §IV.E / §V.A: every P-device emergency transaction leaves *two*
signed artifacts —

* **TR = (ID_i, TP_p, t10, t11, IBS_Γi)** at the A-server: the physician's
  own signature on his passcode request, proving ID_i initiated access to
  the patient known as TP_p.
* **RD = (ID_i, TP_p, KW, t11, IBS_ΓA-server)** on the P-device: the
  A-server's signature on the passcode delivery, proving the transaction
  happened, *plus the searched keywords* — "for the patient to later
  decide if the physician performed only necessary and relevant searches."

After recovery, the patient reads the RDs off his P-device, requests the
matching TRs from the A-server, and files a complaint:
:class:`AccountabilityAuditor` verifies both signatures and cross-checks
the on-duty roster, producing :class:`ComplaintEvidence` that a third
party (court, health department) can verify with public information only.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.ec import Point
from repro.crypto.ibs import IbsSignature, verify as ibs_verify
from repro.crypto.params import DomainParams
from repro.core.protocols.messages import pack_fields, ts_ms, unpack_fields
from repro.exceptions import SignatureError

__all__ = ["TraceRecord", "DeviceRecord", "ComplaintEvidence",
           "AccountabilityAuditor", "tr_message", "rd_message"]


def tr_message(physician_id: str, request: bytes, t_request: float) -> bytes:
    """The byte string the physician's IBS inside a TR covers.

    This is exactly the step-1 message (ID_i ‖ m′ ‖ t10) the physician
    signed when requesting the passcode — the TR archives that signature
    as non-repudiable proof of initiation; TP_p and t11 are A-server
    annotations on the trace, not part of the physician's signature.
    """
    return pack_fields(physician_id.encode(), request,
                       ts_ms(t_request).to_bytes(8, "big"))


def rd_message(physician_id: str, patient_pseudonym: bytes,
               t_issue: float) -> bytes:
    """The byte string the A-server's IBS inside an RD covers.

    Note the signature covers the *transaction* (ID_i, TP_p, t11) only —
    the searched keywords KW are entered by the physician *after* step 3,
    so the A-server cannot sign them; the P-device appends KW to the RD as
    its own attestation (paper §IV.E.2: "KW is included for the patient to
    later decide if the physician performed only necessary and relevant
    searches").
    """
    return (b"HCPP-RD|" + physician_id.encode() + b"|" + patient_pseudonym
            + b"|" + ts_ms(t_issue).to_bytes(8, "big"))


@dataclass(frozen=True)
class TraceRecord:
    """TR = (ID_i, TP_p, t10, t11, IBS_Γi): kept by the A-server."""

    physician_id: str
    patient_pseudonym: bytes     # TP_p serialized
    request: bytes               # m′, the passcode request body
    t_request: float             # t10
    t_issue: float               # t11
    physician_signature: IbsSignature

    def verify(self, params: DomainParams, pkg_public: Point) -> bool:
        return ibs_verify(params, pkg_public, self.physician_id,
                          tr_message(self.physician_id, self.request,
                                     self.t_request),
                          self.physician_signature)

    def to_bytes(self) -> bytes:
        """Canonical serialization (what the A-server's audit log commits)."""
        return pack_fields(
            self.physician_id.encode(),
            self.patient_pseudonym,
            self.request,
            ts_ms(self.t_request).to_bytes(8, "big"),
            ts_ms(self.t_issue).to_bytes(8, "big"),
            self.physician_signature.to_bytes(),
        )

    @classmethod
    def from_bytes(cls, data: bytes, curve) -> "TraceRecord":
        """Inverse of :meth:`to_bytes` — lets the durable A-server reload
        its TR log from disk.  Round-trips byte-for-byte (timestamps are
        already millisecond-quantized in the canonical encoding)."""
        (physician_id, pseudonym, request,
         t_request, t_issue, signature) = unpack_fields(data, expected=6)
        return cls(
            physician_id=physician_id.decode(),
            patient_pseudonym=pseudonym,
            request=request,
            t_request=int.from_bytes(t_request, "big") / 1000.0,
            t_issue=int.from_bytes(t_issue, "big") / 1000.0,
            physician_signature=IbsSignature.from_bytes(signature, curve),
        )


@dataclass(frozen=True)
class DeviceRecord:
    """RD: kept by the P-device per emergency transaction."""

    physician_id: str
    patient_pseudonym: bytes
    keywords: tuple[str, ...]
    t_issue: float               # t11
    aserver_id: str
    aserver_signature: IbsSignature

    def verify(self, params: DomainParams, pkg_public: Point) -> bool:
        return ibs_verify(params, pkg_public, self.aserver_id,
                          rd_message(self.physician_id,
                                     self.patient_pseudonym, self.t_issue),
                          self.aserver_signature)

    def to_bytes(self) -> bytes:
        """Canonical serialization (what the durable P-device journals)."""
        return pack_fields(
            self.physician_id.encode(),
            self.patient_pseudonym,
            pack_fields(*[kw.encode() for kw in self.keywords]),
            ts_ms(self.t_issue).to_bytes(8, "big"),
            self.aserver_id.encode(),
            self.aserver_signature.to_bytes(),
        )

    @classmethod
    def from_bytes(cls, data: bytes, curve) -> "DeviceRecord":
        (physician_id, pseudonym, keywords,
         t_issue, aserver_id, signature) = unpack_fields(data, expected=6)
        return cls(
            physician_id=physician_id.decode(),
            patient_pseudonym=pseudonym,
            keywords=tuple(kw.decode() for kw in unpack_fields(keywords)),
            t_issue=int.from_bytes(t_issue, "big") / 1000.0,
            aserver_id=aserver_id.decode(),
            aserver_signature=IbsSignature.from_bytes(signature, curve),
        )


@dataclass(frozen=True)
class ComplaintEvidence:
    """A verified RD, with its matching TR when the A-server produced one.

    ``trace_record is None`` flags a missing/purged A-server trace — the
    RD alone (signed by the A-server) is still actionable evidence.
    """

    device_record: DeviceRecord
    trace_record: TraceRecord | None
    physician_was_on_duty: bool
    excessive_keywords: tuple[str, ...]

    @property
    def physician_id(self) -> str:
        return self.device_record.physician_id


@dataclass
class AccountabilityAuditor:
    """Patient-side audit after an emergency is resolved (§V.A).

    ``relevant_keywords``, when provided, encodes what the patient deems
    medically necessary for the episode; searches outside it are flagged
    as ``excessive_keywords`` — the paper: *"the patient can check the
    keywords in the RDs to determine if the physician should be held
    accountable for searching any PHI other than appropriate."*
    """

    params: DomainParams
    pkg_public: Point
    relevant_keywords: frozenset[str] = field(default_factory=frozenset)

    def build_complaints(
        self,
        device_records: list[DeviceRecord],
        trace_records: list[TraceRecord],
        duty_roster: "callable",
    ) -> list[ComplaintEvidence]:
        """Match RDs to TRs, verify all signatures, flag violations.

        ``duty_roster(physician_id, timestamp) -> bool`` answers whether
        the physician was on the published on-duty list at that time.
        Raises :class:`SignatureError` if any artifact fails verification
        — a forged record must never silently enter evidence.
        """
        traces_by_key = {
            (tr.physician_id, tr.patient_pseudonym, round(tr.t_issue, 3)): tr
            for tr in trace_records
        }
        complaints: list[ComplaintEvidence] = []
        for rd in device_records:
            if not rd.verify(self.params, self.pkg_public):
                raise SignatureError("device record RD failed verification")
            tr = traces_by_key.get(
                (rd.physician_id, rd.patient_pseudonym, round(rd.t_issue, 3)))
            if tr is None:
                # An RD without a TR means the A-server log was purged or
                # forged — still actionable with the RD alone.
                complaints.append(ComplaintEvidence(
                    device_record=rd,
                    trace_record=None,
                    physician_was_on_duty=False,
                    excessive_keywords=self._excessive(rd.keywords)))
                continue
            if not tr.verify(self.params, self.pkg_public):
                raise SignatureError("trace record TR failed verification")
            complaints.append(ComplaintEvidence(
                device_record=rd,
                trace_record=tr,
                physician_was_on_duty=duty_roster(rd.physician_id,
                                                  rd.t_issue),
                excessive_keywords=self._excessive(rd.keywords)))
        return complaints

    def _excessive(self, keywords: tuple[str, ...]) -> tuple[str, ...]:
        if not self.relevant_keywords:
            return ()
        return tuple(kw for kw in keywords
                     if kw not in self.relevant_keywords)
