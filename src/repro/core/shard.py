"""Consistent-hash shard ring: stable key → shard placement.

The federation layer partitions the S-server's per-collection state
across N shards.  Placement must satisfy two hard requirements:

* **deterministic across processes and restarts** — a collection stored
  through the router yesterday must route to the same shard today, in a
  different interpreter, under a different ``PYTHONHASHSEED``.  Every
  ring position is therefore derived with SHA-256 (never ``hash()``,
  never dict iteration order), and lookups walk a sorted position list.
* **minimal movement on membership change** — consistent hashing with
  virtual nodes: each shard owns ``vnodes`` pseudo-random arcs of the
  2^64 ring, so adding or removing one shard remaps only the arcs it
  owned (≈ 1/N of the keyspace), not everything.

What gets hashed: HCPP pseudonyms are *fresh and unlinkable per
request* (§IV.A), so the pseudonym itself cannot be a stable routing
key.  The stable handle every collection op carries is the collection
id — itself a SHA-256 of the accepted store envelope's tag (see
:func:`collection_id_for_tag`, shared with
:mod:`repro.core.sserver`) — and MHI ops carry the stable role-identity
bytes.  The router hashes whichever stable key the opcode carries; the
ring itself is key-agnostic bytes-in, shard-out.

This module sits below :mod:`repro.core.dispatch`: stdlib plus
:mod:`repro.exceptions` only (enforced by the hcpplint layering
contract), so the router, the server, and out-of-process tooling can
all agree on placement without importing any upper layer.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.exceptions import ParameterError

__all__ = ["DEFAULT_VNODES", "HashRing", "collection_id_for_tag",
           "ring_position"]

#: Virtual nodes per shard.  128 arcs keeps the keyspace imbalance
#: between shards under a few percent at the shard counts the
#: federation targets (1–64) while the ring stays tiny (N×128 ints).
DEFAULT_VNODES = 128

_POSITION_BYTES = 8  # u64 ring coordinates


def ring_position(shard_id: bytes, vnode_index: int) -> int:
    """The u64 ring coordinate of one virtual node.

    ``SHA-256(shard_id ‖ ':' ‖ vnode_index)`` truncated to 8 bytes —
    pure bytes arithmetic, identical in every process regardless of
    ``PYTHONHASHSEED`` (the bugfix this module's regression test pins).
    """
    digest = hashlib.sha256(
        b"hcpp-shard-ring:" + shard_id + b":" + b"%d" % vnode_index
    ).digest()
    return int.from_bytes(digest[:_POSITION_BYTES], "big")


def collection_id_for_tag(tag: bytes) -> bytes:
    """Deterministic collection id from a store envelope's HMAC tag.

    The single source of truth for the id both sides derive
    independently: the S-server mints it when it accepts an upload
    (:mod:`repro.core.sserver`), and the router re-derives it from the
    OP_STORE frame's envelope to pick the owning shard — so the shard
    that stores a collection is exactly the shard every later search
    for it routes to.
    """
    return hashlib.sha256(b"hcpp-collection-id:" + tag).digest()[:16]


class HashRing:
    """Consistent-hash ring over a fixed set of shard ids.

    Shard ids are opaque byte strings (the federation uses shard
    *addresses*).  Construction order does not matter: the ring sorts
    its positions, and every position is a pure SHA-256 of the shard id
    — two rings built from the same id set are identical, whatever
    order, process, or hash seed built them.
    """

    def __init__(self, shard_ids, vnodes: int = DEFAULT_VNODES) -> None:
        ids = [sid.encode() if isinstance(sid, str) else bytes(sid)
               for sid in shard_ids]
        if not ids:
            raise ParameterError("a hash ring needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ParameterError("duplicate shard id in ring")
        if vnodes < 1:
            raise ParameterError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.shard_ids = tuple(sorted(ids))
        points: list[tuple[int, bytes]] = []
        for sid in self.shard_ids:
            for v in range(vnodes):
                points.append((ring_position(sid, v), sid))
        # A u64 collision between two 128-vnode shards is ~2^-40 per
        # ring; sorting the (position, shard-id) pair makes even that
        # case deterministic.
        points.sort()
        self._positions = [p for p, _ in points]
        self._owners = [sid for _, sid in points]

    def key_position(self, key: bytes) -> int:
        """Where ``key`` lands on the ring (u64)."""
        digest = hashlib.sha256(b"hcpp-shard-key:" + key).digest()
        return int.from_bytes(digest[:_POSITION_BYTES], "big")

    def owner(self, key: bytes) -> bytes:
        """The shard id owning ``key``: the first virtual node at or
        clockwise-after the key's ring position (wrapping at the top)."""
        index = bisect.bisect_left(self._positions, self.key_position(key))
        if index == len(self._positions):
            index = 0
        return self._owners[index]

    def owner_str(self, key: bytes) -> str:
        return self.owner(key).decode()

    def distribution(self, keys) -> dict[bytes, int]:
        """How many of ``keys`` each shard owns (diagnostics/tests)."""
        counts = {sid: 0 for sid in self.shard_ids}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.shard_ids)
