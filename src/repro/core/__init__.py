"""HCPP core: entities, servers, protocols, accountability — the paper's
primary contribution (§III–IV)."""

from repro.core.entities import Family, Patient, PDevice, Physician
from repro.core.system import HcppSystem, build_system

__all__ = ["Family", "Patient", "PDevice", "Physician", "HcppSystem",
           "build_system"]
