"""Wire frames: the byte-level contract between clients and dispatch.

Every protocol interaction serializes to a *frame* — a
:func:`pack_fields`-encoded byte string whose first field is an opcode —
and every server answer is a *response* — a one-byte status followed by
either the result payload or a serialized exception.  The transport layer
(:mod:`repro.net.transport`) carries frames verbatim; the dispatch layer
(:mod:`repro.core.dispatch`) parses them back with the same codecs, so
what the experiments weigh is exactly what a real deployment would put on
a TCP socket.

Error transparency: a server-side :class:`~repro.exceptions.ReproError`
is serialized by name and message and re-raised client-side as the same
class, so protocol code keeps its natural ``try/except StorageError``
shape across process boundaries.
"""

from __future__ import annotations

import hashlib

import repro.exceptions as _exceptions
from repro.crypto.hmac_impl import constant_time_equal, hmac_sha256
from repro.core.protocols.messages import pack_fields, unpack_fields
from repro.exceptions import (AuthenticationError, ParameterError,
                              PartialResultError, ReproError,
                              TransportError)

__all__ = [
    "OP_STORE", "OP_SEARCH", "OP_GET_BROADCAST", "OP_SEARCH_WRAPPED",
    "OP_GROUP_UPDATE", "OP_MHI_STORE", "OP_MHI_SEARCH", "OP_XD_HANDSHAKE",
    "OP_XD_SEARCH", "OP_REGISTER_PDEVICE", "OP_EMERGENCY_AUTH",
    "OP_ROLE_KEY", "OP_ASSIGN", "OP_PASSCODE",
    "OP_SEARCH_BATCH", "OP_SEARCH_MULTI", "OP_SEARCH_SHARD",
    "OP_SEARCH_MERGE", "OP_MIGRATE_PULL", "OP_MIGRATE_ACK",
    "make_frame", "parse_frame", "ok_response", "error_response",
    "partial_response", "parse_partial",
    "parse_response", "transient_error_in", "encode_files",
    "decode_files", "files_digest",
    "seal_internal_frame", "open_internal_frame",
    "ts_to_bytes", "ts_from_bytes",
    "CORR_MAGIC", "MAX_CORR_ID", "wrap_corr", "unwrap_corr",
]

# -- opcodes (first frame field; also the dispatch routing key) -------------
OP_STORE = b"phi-store"                  # §IV.B upload
OP_SEARCH = b"phi-search"                # §IV.D common-case retrieval
OP_GET_BROADCAST = b"get-broadcast"      # §IV.E.1 step 1
OP_SEARCH_WRAPPED = b"search-wrapped"    # §IV.E.1 step 3
OP_GROUP_UPDATE = b"group-update"        # §IV.C ASSIGN push / REVOKE
OP_MHI_STORE = b"mhi-store"              # §IV.E.2 MHI upload
OP_MHI_SEARCH = b"mhi-search"            # §IV.E.2 MHI retrieval
OP_XD_HANDSHAKE = b"xd-handshake"        # §V.A HIBC key establishment
OP_XD_SEARCH = b"xd-search"              # §V.A session-keyed retrieval
OP_REGISTER_PDEVICE = b"register-pdevice"  # §IV.E.2 emergency registration
OP_EMERGENCY_AUTH = b"emergency-auth"    # §IV.E.2 steps 1-2
OP_ROLE_KEY = b"role-key"                # §IV.E.2 Γ_r issuance
OP_ASSIGN = b"assign"                    # §IV.C ASSIGN to an entity
OP_PASSCODE = b"ibe-passcode"            # §IV.E.2 step 3 (server push)

# Batched / federated search surface.  BATCH and MULTI are public ops a
# client (or the router, scatter-gathering) may send; SHARD and MERGE
# are the router→shard internal legs of a cross-shard MULTI: SHARD
# verifies the envelope *without* consuming the replay window and
# returns raw per-collection chunks, MERGE performs the single guarded
# open on the owning shard and seals the one combined reply.  Both
# internal legs carry a trailing federation tag
# (:func:`seal_internal_frame`) and a shard rejects any SHARD/MERGE
# frame whose tag does not verify under the federation-internal key —
# a client (or a network attacker re-framing a captured envelope)
# cannot reach the guard-free/raw-chunk paths.
OP_SEARCH_BATCH = b"phi-search-batch"    # many independent searches
OP_SEARCH_MULTI = b"phi-search-multi"    # one trapdoor set, many Λ
OP_SEARCH_SHARD = b"phi-search-shard"    # internal: guard-free sub-search
OP_SEARCH_MERGE = b"phi-search-merge"    # internal: guarded splice + seal

# Shard-lifecycle legs (ring membership change).  Like SHARD/MERGE these
# are federation-internal, never client opcodes: every frame carries a
# trailing :func:`seal_internal_frame` tag.  PULL is read-only on the
# source (list the held keys, or export a slice of collections/MHI
# windows/guard entries); ACK is the journaled half of the handoff — the
# ``install`` form makes the destination durably adopt a slice, the
# ``release`` form makes the source durably drop it *after* the
# destination's ack, so a kill -9 at any point leaves every collection
# recoverable on at least one shard (see repro.core.federation).
OP_MIGRATE_PULL = b"migrate-pull"        # internal: list / export a slice
OP_MIGRATE_ACK = b"migrate-ack"          # internal: install / release (journaled)

_STATUS_OK = 0x00
_STATUS_ERROR = 0x01
# A scattered request answered by some-but-not-all shards: the payload
# is the spliced result over the shards that answered, plus an explicit
# list of the shards that did not.  Healthy replies never use this
# status, so an all-shards-up federation stays byte-identical to a
# single server; degraded replies are *typed* (PartialResultError from
# parse_response) so a client must opt in via parse_partial.
_STATUS_PARTIAL = 0x02

# Exceptions cross the wire by class name; anything outside the ReproError
# hierarchy (or unknown to this build) degrades to TransportError.
_EXCEPTIONS_BY_NAME = {
    name: cls for name, cls in vars(_exceptions).items()
    if isinstance(cls, type) and issubclass(cls, ReproError)
}


def make_frame(opcode: bytes, *fields: bytes) -> bytes:
    """One request frame: opcode + operand fields, length-prefixed."""
    return pack_fields(opcode, *fields)


def parse_frame(frame: bytes) -> tuple[bytes, list[bytes]]:
    """Split a frame into (opcode, operand fields)."""
    fields = unpack_fields(frame)
    if not fields:
        raise ParameterError("empty frame")
    return fields[0], fields[1:]


def ok_response(payload: bytes = b"") -> bytes:
    return bytes([_STATUS_OK]) + payload


def error_response(exc: BaseException) -> bytes:
    return bytes([_STATUS_ERROR]) + pack_fields(
        type(exc).__name__.encode(), str(exc).encode())


def partial_response(payload: bytes, unavailable: "list[bytes]") -> bytes:
    """A degraded scatter-gather reply: payload + unavailable shards.

    ``payload`` is the spliced result over the shards that answered —
    the same encoding an OK reply would carry; ``unavailable`` names
    the shards (addresses, as bytes) whose legs were skipped (open
    circuit breaker) or exhausted their retries.
    """
    if not unavailable:
        raise ParameterError("a partial response must name at least one "
                             "unavailable shard")
    return bytes([_STATUS_PARTIAL]) + pack_fields(
        payload, pack_fields(*unavailable))


def parse_partial(response: bytes) -> "tuple[bytes, list[bytes]]":
    """Degradation-tolerant response parse: (payload, unavailable shards).

    An OK response yields ``(payload, [])``; a PARTIAL response yields
    the available payload plus the unavailable shard list; an error
    response re-raises as usual.  This is the opt-in counterpart of
    :func:`parse_response`, which refuses partial results with a typed
    :class:`~repro.exceptions.PartialResultError`.
    """
    if response[:1] == bytes([_STATUS_PARTIAL]):
        payload, unavailable_b = unpack_fields(response[1:], expected=2)
        return payload, list(unpack_fields(unavailable_b))
    return parse_response(response), []


def parse_response(response: bytes) -> bytes:
    """Return the result payload, or re-raise the server's exception."""
    if not response:
        raise TransportError("empty response frame")
    status, body = response[0], response[1:]
    if status == _STATUS_OK:
        return body
    if status == _STATUS_PARTIAL:
        payload, unavailable_b = unpack_fields(body, expected=2)
        shards = b", ".join(unpack_fields(unavailable_b))
        raise PartialResultError(
            "scattered request degraded to a partial result set "
            "(unavailable shards: %s); use parse_partial to consume it"
            % shards.decode(errors="replace"))
    if status != _STATUS_ERROR:
        raise TransportError("unknown response status %d" % status)
    name, message = unpack_fields(body, expected=2)
    try:
        name_text = name.decode()
    except UnicodeDecodeError:
        # A corrupted/hostile error response must still yield a typed
        # error, never a raw codec exception.
        raise TransportError("undecodable exception name %r in error "
                             "response" % name) from None
    cls = _EXCEPTIONS_BY_NAME.get(name_text, TransportError)
    raise cls(message.decode(errors="replace"))


def transient_error_in(response: bytes) -> str | None:
    """The message of a serialized TransientTransportError, or None.

    Over the in-process loopback a refusal (a durable endpoint that is
    down, or one that crashed mid journal write) *raises* through the
    transport, where the retry layer catches it.  Over a real carrier
    the server's blanket handler serializes the same exception into an
    ordinary error response — the retry layer peeks with this helper so
    remote refusals retry exactly like in-process ones.
    """
    if len(response) < 2 or response[0] != _STATUS_ERROR:
        return None
    try:
        name, message = unpack_fields(response[1:], expected=2)
    except ReproError:
        return None
    if name != b"TransientTransportError":
        return None
    return message.decode(errors="replace")


# -- federation-internal frames ---------------------------------------------
# OP_SEARCH_SHARD / OP_SEARCH_MERGE bypass the per-request guarded-open
# path by design (the merge shard performs the single guarded open for
# the whole scattered request), so they must never be acceptable from a
# client: the router authenticates each internal leg with an HMAC over
# opcode ‖ operands under a federation-internal key (derived from the
# S-server's private identity key, repro.core.federation), and a shard
# verifies the tag before any handler state — replay guards included —
# is touched.  The tag covers the opcode and *every* operand field, so
# an active attacker can neither re-frame a captured client envelope as
# an internal leg nor rewrite an in-flight merge's spliced chunks.
_FED_FRAME_CONTEXT = b"hcpp-federation-frame:"


def seal_internal_frame(key: bytes, opcode: bytes, *fields: bytes) -> bytes:
    """An internal federation frame: operands + trailing federation tag."""
    tag = hmac_sha256(key, _FED_FRAME_CONTEXT + pack_fields(opcode, *fields))
    return make_frame(opcode, *fields, tag)


def open_internal_frame(key: bytes | None, opcode: bytes,
                        fields: list[bytes]) -> list[bytes]:
    """Verify and strip an internal frame's federation tag.

    Returns the operand fields.  Raises
    :class:`~repro.exceptions.AuthenticationError` when the serving
    endpoint holds no federation key (a standalone S-server never
    serves internal legs), when the tag is absent, or when it does not
    verify — uniformly, so a probing peer learns nothing about which
    check failed.
    """
    if key is None:
        raise AuthenticationError(
            "opcode %r is federation-internal and this endpoint holds "
            "no federation key" % opcode)
    if not fields:
        raise AuthenticationError(
            "internal frame %r carries no federation tag" % opcode)
    operands, tag = fields[:-1], fields[-1]
    expected = hmac_sha256(key,
                           _FED_FRAME_CONTEXT + pack_fields(opcode, *operands))
    if not constant_time_equal(expected, tag):
        raise AuthenticationError(
            "federation tag on %r does not verify" % opcode)
    return operands


# -- correlation ids (multiplexed transports) -------------------------------
# A multiplexing transport pipelines many frames over one connection and
# must match each response to its caller.  The envelope is versioned by
# its leading byte: id 0 encodes as the *identity* (the exact bytes every
# blocking backend puts on the wire, so single-in-flight traffic stays
# byte-identical across all four backends and a legacy peer needs no
# upgrade), and nonzero ids prepend ``CORR_MAGIC ‖ u32-BE id``.  The
# magic starts with 0xff: a legacy frame starts with the u32-BE length
# of its opcode field (a few dozen bytes) and a response starts with a
# 0x00/0x01 status byte, so neither can ever collide with the prefix.
CORR_MAGIC = b"\xffMX1"
MAX_CORR_ID = 0xFFFFFFFF


def wrap_corr(frame_id: int, blob: bytes) -> bytes:
    """Prefix ``blob`` with correlation id ``frame_id`` (0 = identity)."""
    if frame_id == 0:
        return blob
    if not 0 < frame_id <= MAX_CORR_ID:
        raise ParameterError("correlation id %r outside the u32 wire range"
                             % frame_id)
    return CORR_MAGIC + frame_id.to_bytes(4, "big") + blob


def unwrap_corr(blob: bytes) -> tuple[int, bytes]:
    """Split a wire blob into (correlation id, frame-or-response bytes)."""
    if not blob.startswith(CORR_MAGIC):
        return 0, blob
    if len(blob) < len(CORR_MAGIC) + 4:
        raise TransportError("truncated correlation-id prefix")
    frame_id = int.from_bytes(blob[4:8], "big")
    if frame_id == 0:
        raise TransportError("explicit correlation id 0 is reserved for "
                             "the identity encoding")
    return frame_id, blob[8:]


# -- timestamps -------------------------------------------------------------
def ts_to_bytes(timestamp: float) -> bytes:
    """Canonical 8-byte millisecond encoding (round, not truncate, so the
    float→ms→float round trip is exact on both sides of the wire)."""
    ms = int(round(timestamp * 1000))
    if ms < 0:
        raise ParameterError(
            "timestamp %r predates the epoch; the wire carries unsigned "
            "milliseconds" % timestamp)
    try:
        return ms.to_bytes(8, "big")
    except OverflowError:
        raise ParameterError("timestamp %r exceeds the 8-byte wire range"
                             % timestamp) from None


def ts_from_bytes(data: bytes) -> float:
    return int.from_bytes(data, "big") / 1000.0


# -- the encrypted collection Λ --------------------------------------------
def encode_files(files: dict[bytes, bytes]) -> bytes:
    """Λ on the wire: one field per file, fid (16 B) ‖ ciphertext."""
    return pack_fields(*(fid + ct for fid, ct in sorted(files.items())))


def decode_files(blob: bytes) -> dict[bytes, bytes]:
    files: dict[bytes, bytes] = {}
    for entry in unpack_fields(blob):
        if len(entry) < 16:
            raise ParameterError("file entry shorter than its fid")
        files[entry[:16]] = entry[16:]
    return files


def files_digest(files: dict[bytes, bytes]) -> bytes:
    """Order-independent digest of the encrypted collection Λ."""
    hasher = hashlib.sha256(b"encrypted-collection:")
    for fid in sorted(files):
        hasher.update(fid)
        hasher.update(hashlib.sha256(files[fid]).digest())
    return hasher.digest()
