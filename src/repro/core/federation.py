"""Federated S-server deployment: shards + router, wired to a transport.

:func:`bind_federated_sserver` turns one logical S-server into an
N-shard federation behind a :class:`~repro.core.router.RouterEndpoint`
bound at the logical address — so every existing protocol flow (which
resolves the S-server by ``server.address``) runs unchanged, and
``dispatch.bind_sserver`` finds the router and returns it like any
other already-bound endpoint.

Every shard is its own :class:`~repro.core.sserver.StorageServer`
holding the *same* SOK identity key as the logical server: ν =
KDF(ê(Γ_S, client_public)) depends only on that key, so a client's
sealed envelopes verify on whichever shard the router picks.  What the
shards do **not** share is mutable state — each has its own collection
map, replay guard, MHI store, and (when ``data_dir`` is given) its own
journal/snapshot series under ``sserver-shard-<i>.*``, so one shard
crashes, tears, and recovers independently of its peers.

``n_shards=1`` degenerates to a router fronting a single shard —
useful for parity testing; production-equivalent to a plain bind.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

import repro.core.wire as wire
from repro.core import dispatch
from repro.core.router import RouterEndpoint
from repro.core.shard import DEFAULT_VNODES, HashRing
from repro.core.sserver import StorageServer
from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError, RecoveryError, TransportError
from repro.net.transport import as_transport
from repro.store.durable import DurableStore, bind_durable_sserver

__all__ = ["Federation", "federation_key_for", "shard_servers",
           "bind_federated_sserver", "rebalance", "MANIFEST_NAME"]

#: The federation manifest: ring geometry persisted beside the shard
#: journals, so recovering a data_dir under different ``--shards``/
#: ``vnodes`` fails loudly instead of silently stranding journals and
#: rerouting keys to different owners.  Since the rebalancing epoch
#: landed it is also the *migration journal*: a rebalance writes its
#: durable intent (``pending``) before moving a byte and its drain
#: obligation (``draining``) at commit, so a kill -9 anywhere inside a
#: rebalance leaves a manifest that names exactly how to roll forward.
MANIFEST_NAME = "federation.json"


def federation_key_for(identity_key) -> bytes:
    """The federation-internal frame key for one logical S-server.

    Derived (domain-separated SHA-256) from the server's private
    identity key Γ_S — the one secret every shard of the federation
    already shares and no client or network observer holds.  The router
    tags the internal OP_SEARCH_SHARD/OP_SEARCH_MERGE legs with an HMAC
    under this key; shards reject untagged or forged internal frames
    (:func:`repro.core.wire.open_internal_frame`).
    """
    return hashlib.sha256(b"hcpp-federation-key:"
                          + identity_key.private.to_bytes()).digest()


def _write_manifest(data_dir: str, manifest: dict) -> None:
    """Atomically (tmp + fsync + rename) persist the manifest.

    The manifest is the rebalance journal's ground truth: a torn write
    here could lose a ``pending``/``draining`` record and strand a
    half-migrated federation, so it gets the full durability treatment.
    """
    os.makedirs(data_dir, exist_ok=True)
    path = os.path.join(data_dir, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _load_manifest(data_dir: str) -> "dict | None":
    path = os.path.join(data_dir, MANIFEST_NAME)
    if not os.path.exists(path):
        return None
    with open(path, encoding="utf-8") as fh:
        manifest = json.load(fh)
    # Pre-epoch manifests (PR 7) carried only the geometry triple.
    manifest.setdefault("epoch", 0)
    return manifest


def _check_manifest(data_dir: str, n_shards: int, vnodes: int,
                    shard_names: "list[str]") -> dict:
    """Load-or-init the manifest; reject a geometry mismatch.

    Journals are named per shard index and keys are placed by the ring,
    so binding an existing ``data_dir`` with a different shard count or
    vnode count would silently ignore journals for indexes ≥ N and
    route previously stored collections to different owners.  The
    manifest turns that into a loud :class:`RecoveryError`.

    The one *sanctioned* way the count changes is a rebalance: binding
    with ``n_shards`` equal to either the committed count or an
    interrupted rebalance's pending count is accepted, and the caller
    rolls the migration forward.  Returns the manifest dict.
    """
    manifest = {"epoch": 0, "n_shards": n_shards, "vnodes": vnodes,
                "shards": list(shard_names)}
    existing = _load_manifest(data_dir)
    if existing is None:
        _write_manifest(data_dir, manifest)
        return manifest
    pending = existing.get("pending")
    stem = shard_names[0].rsplit("-", 1)[0] if shard_names else ""
    expected_committed = ["%s-%d" % (stem, i)
                          for i in range(existing["n_shards"])]
    count_ok = (n_shards == existing["n_shards"]
                or (pending is not None
                    and n_shards == pending["n_shards"]))
    if (existing["vnodes"] != vnodes or not count_ok
            or existing["shards"] != expected_committed):
        raise RecoveryError(
            "federation manifest mismatch in %r: directory was laid "
            "out as %r, refusing to recover as %r (journals would be "
            "stranded and keys rerouted)" % (data_dir, existing,
                                             manifest))
    return existing


@dataclass
class Federation:
    """One bound federation: the router plus its shard deployment.

    A federation built by :func:`bind_federated_sserver` also carries
    its bind context (logical server, transport, durability settings),
    which is what makes :meth:`add_shard`/:meth:`remove_shard` possible
    after the fact — a rebalance re-derives shard names, journal
    prefixes, and the federation key from that context.
    """

    router: RouterEndpoint
    ring: HashRing
    shards: tuple
    endpoints: tuple
    server: "StorageServer | None" = None
    transport: object = None
    epoch: int = 0
    data_dir: "str | None" = None
    snapshot_every: int = 0
    fault_policy: object = None

    @property
    def shard_addresses(self) -> tuple:
        return tuple(shard.address for shard in self.shards)

    def add_shard(self, *, on_step=None) -> "Federation":
        """Grow the ring by one shard, migrating owned keys to it."""
        return rebalance(self, len(self.shards) + 1, on_step=on_step)

    def remove_shard(self, *, on_step=None) -> "Federation":
        """Shrink the ring by one shard, migrating its keys away."""
        if len(self.shards) < 2:
            raise ParameterError(
                "cannot remove the last shard of a federation")
        return rebalance(self, len(self.shards) - 1, on_step=on_step)


def _make_shard(server: StorageServer, name: str) -> StorageServer:
    return StorageServer(
        name, server.params, server.identity_key,
        HmacDrbg(b"hcpp-shard/" + name.encode()),
        engine=server.engine)


def _shard_name(server: StorageServer, index: int) -> str:
    return "%s-shard-%d" % (server.name, index)


def shard_servers(server: StorageServer, n_shards: int) -> list:
    """N shard servers for one logical S-server.

    Names and addresses derive from the logical server's
    (``hospital-a`` → ``hospital-a-shard-0`` …), deterministically, so a
    restarted deployment rebuilds the identical ring.  Each shard gets
    its own domain-separated DRBG; the identity key and crypto engine
    are shared with the logical server.
    """
    if n_shards < 1:
        raise ParameterError("a federation needs at least one shard")
    return [_make_shard(server, _shard_name(server, i))
            for i in range(n_shards)]


# -- the rebalance protocol ---------------------------------------------------
#
# Ring membership changes move data in three phases, journaled in the
# manifest so a kill -9 at any instant rolls *forward* on the next bind:
#
#   plan     manifest gains ``pending`` (target epoch + shard list)
#            before a byte moves — the durable intent record.
#   copy     for every source shard, the keys whose owner differs under
#            the new ring are exported (OP_MIGRATE_PULL) and installed
#            on their new owner (OP_MIGRATE_ACK install, journaled and
#            fsynced by the destination before it acks).  The source
#            keeps serving: a moving collection is owned by *both*
#            shards until release.
#   commit   manifest flips to the new epoch with a ``draining`` record
#            naming the old shard set, then the router's ring swaps.
#   release  every source drops its moved-away keys (OP_MIGRATE_ACK
#            release, journaled on the source), and the ``draining``
#            record is cleared.
#
# Every migration step is idempotent (install overwrites with identical
# bytes, release tolerates already-dropped keys) and the move set is
# recomputed from live state (held keys x ring delta), never journaled
# — so resuming is simply re-running the remaining phases.


def _epoch8(epoch: int) -> bytes:
    return epoch.to_bytes(8, "big")


def _relay(fed: Federation, address: str, frame: bytes) -> bytes:
    """Deliver one sealed migration frame to one shard.

    Mirrors the router's forwarding rule: co-located endpoints are
    dispatched directly (crash/fault injection still applies — it hooks
    ``handle_frame``), remote ones go through ``transport.request``.
    """
    endpoint = fed.transport.endpoint_at(address)
    if endpoint is not None:
        response = endpoint.handle_frame(frame)
    else:
        response = fed.transport.request(fed.router.address, address,
                                         frame, "federation/migrate")
    return wire.parse_response(response)


def _pull_keys(fed: Federation, key: bytes, address: str,
               epoch_b: bytes) -> "tuple[list[bytes], list[bytes]]":
    payload = _relay(fed, address, wire.seal_internal_frame(
        key, wire.OP_MIGRATE_PULL, epoch_b))
    cids_b, roles_b = wire.unpack_fields(payload, expected=2)
    return (list(wire.unpack_fields(cids_b)),
            list(wire.unpack_fields(roles_b)))


def _moves_from(fed: Federation, key: bytes, address: str, ring: HashRing,
                epoch_b: bytes) -> dict:
    """Keys held by ``address`` owned elsewhere under ``ring``, grouped
    by destination: ``{dest_address: (cids, roles)}``.  Computed from
    the shard's *live* key list, so re-running after a partial release
    naturally sees only what is left to move."""
    cids, roles = _pull_keys(fed, key, address, epoch_b)
    moves: "dict[str, tuple[list, list]]" = {}
    for cid in cids:
        dest = ring.owner_str(cid)
        if dest != address:
            moves.setdefault(dest, ([], []))[0].append(cid)
    for role in roles:
        dest = ring.owner_str(role)
        if dest != address:
            moves.setdefault(dest, ([], []))[1].append(role)
    return moves


def _copy_moves(fed: Federation, key: bytes, sources: "list[str]",
                new_ring: HashRing, epoch_b: bytes) -> int:
    moved = 0
    for source in sources:
        for dest, (cids, roles) in sorted(
                _moves_from(fed, key, source, new_ring, epoch_b).items()):
            blob = _relay(fed, source, wire.seal_internal_frame(
                key, wire.OP_MIGRATE_PULL, epoch_b,
                wire.pack_fields(*cids), wire.pack_fields(*roles)))
            _relay(fed, dest, wire.seal_internal_frame(
                key, wire.OP_MIGRATE_ACK, b"install", epoch_b, blob))
            moved += len(cids)
    return moved


def _release_moves(fed: Federation, key: bytes, sources: "list[str]",
                   new_ring: HashRing, epoch_b: bytes) -> None:
    for source in sources:
        moves = _moves_from(fed, key, source, new_ring, epoch_b)
        cids = [cid for mc, _ in moves.values() for cid in mc]
        roles = [role for _, mr in moves.values() for role in mr]
        if not cids and not roles:
            continue
        _relay(fed, source, wire.seal_internal_frame(
            key, wire.OP_MIGRATE_ACK, b"release", epoch_b,
            wire.pack_fields(wire.pack_fields(*cids),
                             wire.pack_fields(*roles))))


def _bind_shard(fed: Federation, shard: StorageServer):
    """Bind one shard endpoint, durably when the federation is durable.

    Binding over an existing journal *is* recovery (a resumed migration
    replays the destination's journaled installs), and an already-bound
    address is returned as-is — both of which make this safe to call
    from any resume point.
    """
    existing = fed.transport.endpoint_at(shard.address)
    if existing is not None:
        return existing
    fed_key = federation_key_for(fed.server.identity_key)
    if fed.data_dir is not None:
        index = int(shard.name.rsplit("-", 1)[1])
        store = DurableStore(fed.data_dir, "sserver-shard-%d" % index,
                             snapshot_every=fed.snapshot_every)
        return bind_durable_sserver(
            fed.transport, shard, store, hibc_node=fed.router.hibc_node,
            root_public=fed.router.root_public,
            fault_policy=fed.fault_policy, federation_key=fed_key)
    return dispatch.bind_sserver(
        fed.transport, shard, hibc_node=fed.router.hibc_node,
        root_public=fed.router.root_public, federation_key=fed_key)


def rebalance(fed: Federation, new_count: int, *,
              on_step=None) -> Federation:
    """Resize ``fed`` to ``new_count`` shards via journaled migration.

    Mutates and returns ``fed``: the router (bound at the logical
    address) swaps its ring in place, so clients never re-resolve
    anything.  ``on_step`` (tests/benchmarks) is called with
    ``"planned"``, ``"copied"``, ``"committed"``, ``"released"`` as each
    phase completes — raising from it abandons the rebalance exactly as
    a crash would, and the next bind of the same ``data_dir`` rolls the
    migration forward.
    """
    if fed.server is None or fed.transport is None:
        raise ParameterError(
            "this Federation carries no bind context (not built by "
            "bind_federated_sserver); cannot rebalance")
    if new_count < 1:
        raise ParameterError("a federation needs at least one shard")
    step = on_step if on_step is not None else (lambda phase: None)
    fed_key = federation_key_for(fed.server.identity_key)
    old_addresses = [shard.address for shard in fed.shards]
    common = min(len(fed.shards), new_count)
    new_shards = list(fed.shards[:common]) + [
        _make_shard(fed.server, _shard_name(fed.server, i))
        for i in range(common, new_count)]
    new_addresses = [shard.address for shard in new_shards]
    if new_addresses == old_addresses:
        return fed
    new_epoch = fed.epoch + 1
    if fed.data_dir is not None:
        manifest = _load_manifest(fed.data_dir)
        manifest["pending"] = {"epoch": new_epoch, "n_shards": new_count,
                               "shards": [s.name for s in new_shards]}
        _write_manifest(fed.data_dir, manifest)
    for shard in new_shards[common:]:
        _bind_shard(fed, shard)
    step("planned")
    epoch_b = _epoch8(new_epoch)
    new_ring = HashRing(new_addresses, vnodes=fed.ring.vnodes)
    _copy_moves(fed, fed_key, old_addresses, new_ring, epoch_b)
    step("copied")
    if fed.data_dir is not None:
        manifest = {"epoch": new_epoch, "n_shards": new_count,
                    "vnodes": fed.ring.vnodes,
                    "shards": [s.name for s in new_shards],
                    "draining": {"from_shards":
                                 [s.name for s in fed.shards]}}
        _write_manifest(fed.data_dir, manifest)
    fed.router.update_ring(new_addresses)
    fed.ring = fed.router.ring
    fed.shards = tuple(new_shards)
    fed.endpoints = tuple(fed.transport.endpoint_at(address)
                          for address in new_addresses)
    fed.epoch = new_epoch
    step("committed")
    _release_moves(fed, fed_key, old_addresses, new_ring, epoch_b)
    if fed.data_dir is not None:
        manifest.pop("draining", None)
        _write_manifest(fed.data_dir, manifest)
    step("released")
    return fed


def _finish_drain(fed: Federation, from_names: "list[str]") -> None:
    """Resume a rebalance that crashed between commit and full release.

    The committed ring is already the truth; what remains is dropping
    moved-away keys from the old shard set.  Shards that left the ring
    (a crashed ``remove_shard``) are re-bound so the release reaches
    their journals; they stay bound but empty, outside the ring.
    """
    fed_key = federation_key_for(fed.server.identity_key)
    sources = []
    for name in from_names:
        shard = _make_shard(fed.server, name)
        _bind_shard(fed, shard)
        sources.append(shard.address)
    _release_moves(fed, fed_key, sources, fed.ring, _epoch8(fed.epoch))
    manifest = _load_manifest(fed.data_dir)
    manifest.pop("draining", None)
    _write_manifest(fed.data_dir, manifest)


def bind_federated_sserver(transport, server: StorageServer, n_shards: int,
                           *, hibc_node=None, root_public=None, engine=None,
                           data_dir: str | None = None,
                           snapshot_every: int = 0, fault_policy=None,
                           vnodes: int = DEFAULT_VNODES,
                           allow_partial: bool = True,
                           health_seed: int = 0) -> Federation:
    """Serve ``server.address`` with an N-shard federation.

    With ``data_dir`` each shard binds durably (its own
    ``DurableStore`` under ``sserver-shard-<i>``; binding over an
    existing directory *is* recovery) and registers with
    ``fault_policy`` for crash/restart injection.  Without it, shards
    are plain in-memory endpoints.  The router itself is stateless and
    needs no durability.

    The ring geometry is pinned in ``<data_dir>/federation.json`` at
    first bind; recovering with a different ``n_shards`` or ``vnodes``
    raises :class:`~repro.exceptions.RecoveryError` instead of silently
    stranding journals — except across a rebalance, where the manifest
    epoch records the sanctioned resize.  A directory holding an
    *interrupted* rebalance (a ``pending`` or ``draining`` record) is
    rolled forward before this returns: the shard set bound is the
    migration's target, every collection ends up owned by exactly one
    ring position, and no journaled install or release is lost.

    ``allow_partial`` configures degraded-mode scatter-gather on the
    router (PARTIAL replies instead of outright failure when a shard is
    down); byte-for-byte identical responses while all shards answer.
    Router and shards share the federation frame key
    (:func:`federation_key_for`), which authenticates the internal
    OP_SEARCH_SHARD/OP_SEARCH_MERGE and migration legs.
    """
    transport = as_transport(transport)
    if transport.endpoint_at(server.address) is not None:
        raise TransportError("address %r is already served"
                             % server.address)
    if engine is not None:
        server.engine = engine
    manifest = None
    if data_dir is not None:
        manifest = _check_manifest(
            data_dir, n_shards, vnodes,
            [_shard_name(server, i) for i in range(n_shards)])
        # The manifest's committed shard list is the truth — after a
        # rebalance it differs from what this call's n_shards implies.
        shards = [_make_shard(server, name) for name in manifest["shards"]]
    else:
        shards = shard_servers(server, n_shards)
    fed_key = federation_key_for(server.identity_key)
    endpoints = []
    for shard in shards:
        if data_dir is not None:
            index = int(shard.name.rsplit("-", 1)[1])
            store = DurableStore(data_dir, "sserver-shard-%d" % index,
                                 snapshot_every=snapshot_every)
            endpoint = bind_durable_sserver(
                transport, shard, store, hibc_node=hibc_node,
                root_public=root_public, fault_policy=fault_policy,
                federation_key=fed_key)
        else:
            endpoint = dispatch.bind_sserver(transport, shard,
                                             hibc_node=hibc_node,
                                             root_public=root_public,
                                             federation_key=fed_key)
        endpoints.append(endpoint)
    router = RouterEndpoint(server.address,
                            [shard.address for shard in shards],
                            vnodes=vnodes, federation_key=fed_key,
                            allow_partial=allow_partial,
                            health_seed=health_seed)
    if hibc_node is not None:
        router._hibc_node = hibc_node      # already applied per shard above
        router._root_public = root_public
    transport.bind(server.address, router)
    fed = Federation(router=router, ring=router.ring,
                     shards=tuple(shards), endpoints=tuple(endpoints),
                     server=server, transport=transport,
                     epoch=manifest["epoch"] if manifest else 0,
                     data_dir=data_dir, snapshot_every=snapshot_every,
                     fault_policy=fault_policy)
    if manifest is not None and manifest.get("pending") is not None:
        # Crashed before commit: roll the whole migration forward (all
        # steps are idempotent; already-journaled installs replayed
        # above, the rest re-run).
        rebalance(fed, manifest["pending"]["n_shards"])
    elif manifest is not None and manifest.get("draining") is not None:
        # Crashed after commit: the new ring is the truth, finish
        # dropping moved-away keys from the old shard set.
        _finish_drain(fed, manifest["draining"]["from_shards"])
    return fed
