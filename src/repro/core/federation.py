"""Federated S-server deployment: shards + router, wired to a transport.

:func:`bind_federated_sserver` turns one logical S-server into an
N-shard federation behind a :class:`~repro.core.router.RouterEndpoint`
bound at the logical address — so every existing protocol flow (which
resolves the S-server by ``server.address``) runs unchanged, and
``dispatch.bind_sserver`` finds the router and returns it like any
other already-bound endpoint.

Every shard is its own :class:`~repro.core.sserver.StorageServer`
holding the *same* SOK identity key as the logical server: ν =
KDF(ê(Γ_S, client_public)) depends only on that key, so a client's
sealed envelopes verify on whichever shard the router picks.  What the
shards do **not** share is mutable state — each has its own collection
map, replay guard, MHI store, and (when ``data_dir`` is given) its own
journal/snapshot series under ``sserver-shard-<i>.*``, so one shard
crashes, tears, and recovers independently of its peers.

``n_shards=1`` degenerates to a router fronting a single shard —
useful for parity testing; production-equivalent to a plain bind.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

from repro.core import dispatch
from repro.core.router import RouterEndpoint
from repro.core.shard import DEFAULT_VNODES, HashRing
from repro.core.sserver import StorageServer
from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError, RecoveryError, TransportError
from repro.net.transport import as_transport
from repro.store.durable import DurableStore, bind_durable_sserver

__all__ = ["Federation", "federation_key_for", "shard_servers",
           "bind_federated_sserver", "MANIFEST_NAME"]

#: The federation manifest: ring geometry persisted beside the shard
#: journals, so recovering a data_dir under different ``--shards``/
#: ``vnodes`` fails loudly instead of silently stranding journals and
#: rerouting keys to different owners.
MANIFEST_NAME = "federation.json"


def federation_key_for(identity_key) -> bytes:
    """The federation-internal frame key for one logical S-server.

    Derived (domain-separated SHA-256) from the server's private
    identity key Γ_S — the one secret every shard of the federation
    already shares and no client or network observer holds.  The router
    tags the internal OP_SEARCH_SHARD/OP_SEARCH_MERGE legs with an HMAC
    under this key; shards reject untagged or forged internal frames
    (:func:`repro.core.wire.open_internal_frame`).
    """
    return hashlib.sha256(b"hcpp-federation-key:"
                          + identity_key.private.to_bytes()).digest()


def _check_manifest(data_dir: str, n_shards: int, vnodes: int,
                    shard_names: "list[str]") -> None:
    """Persist the ring geometry on first bind; reject a mismatch.

    Journals are named per shard index and keys are placed by the ring,
    so binding an existing ``data_dir`` with a different shard count or
    vnode count would silently ignore journals for indexes ≥ N and
    route previously stored collections to different owners.  The
    manifest turns that into a loud :class:`RecoveryError`.
    """
    manifest = {"n_shards": n_shards, "vnodes": vnodes,
                "shards": list(shard_names)}
    path = os.path.join(data_dir, MANIFEST_NAME)
    if os.path.exists(path):
        with open(path, encoding="utf-8") as fh:
            existing = json.load(fh)
        if existing != manifest:
            raise RecoveryError(
                "federation manifest mismatch in %r: directory was laid "
                "out as %r, refusing to recover as %r (journals would be "
                "stranded and keys rerouted)" % (data_dir, existing,
                                                 manifest))
        return
    os.makedirs(data_dir, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)


@dataclass
class Federation:
    """One bound federation: the router plus its shard deployment."""

    router: RouterEndpoint
    ring: HashRing
    shards: tuple
    endpoints: tuple

    @property
    def shard_addresses(self) -> tuple:
        return tuple(shard.address for shard in self.shards)


def shard_servers(server: StorageServer, n_shards: int) -> list:
    """N shard servers for one logical S-server.

    Names and addresses derive from the logical server's
    (``hospital-a`` → ``hospital-a-shard-0`` …), deterministically, so a
    restarted deployment rebuilds the identical ring.  Each shard gets
    its own domain-separated DRBG; the identity key and crypto engine
    are shared with the logical server.
    """
    if n_shards < 1:
        raise ParameterError("a federation needs at least one shard")
    shards = []
    for i in range(n_shards):
        name = "%s-shard-%d" % (server.name, i)
        shards.append(StorageServer(
            name, server.params, server.identity_key,
            HmacDrbg(b"hcpp-shard/" + name.encode()),
            engine=server.engine))
    return shards


def bind_federated_sserver(transport, server: StorageServer, n_shards: int,
                           *, hibc_node=None, root_public=None, engine=None,
                           data_dir: str | None = None,
                           snapshot_every: int = 0, fault_policy=None,
                           vnodes: int = DEFAULT_VNODES) -> Federation:
    """Serve ``server.address`` with an N-shard federation.

    With ``data_dir`` each shard binds durably (its own
    ``DurableStore`` under ``sserver-shard-<i>``; binding over an
    existing directory *is* recovery) and registers with
    ``fault_policy`` for crash/restart injection.  Without it, shards
    are plain in-memory endpoints.  The router itself is stateless and
    needs no durability.

    The ring geometry is pinned in ``<data_dir>/federation.json`` at
    first bind; recovering with a different ``n_shards`` or ``vnodes``
    raises :class:`~repro.exceptions.RecoveryError` instead of silently
    stranding journals.  Router and shards share the federation frame
    key (:func:`federation_key_for`), which authenticates the internal
    OP_SEARCH_SHARD/OP_SEARCH_MERGE legs.
    """
    transport = as_transport(transport)
    if transport.endpoint_at(server.address) is not None:
        raise TransportError("address %r is already served"
                             % server.address)
    if engine is not None:
        server.engine = engine
    shards = shard_servers(server, n_shards)
    fed_key = federation_key_for(server.identity_key)
    if data_dir is not None:
        _check_manifest(data_dir, n_shards, vnodes,
                        [shard.name for shard in shards])
    endpoints = []
    for i, shard in enumerate(shards):
        if data_dir is not None:
            store = DurableStore(data_dir, "sserver-shard-%d" % i,
                                 snapshot_every=snapshot_every)
            endpoint = bind_durable_sserver(
                transport, shard, store, hibc_node=hibc_node,
                root_public=root_public, fault_policy=fault_policy,
                federation_key=fed_key)
        else:
            endpoint = dispatch.bind_sserver(transport, shard,
                                             hibc_node=hibc_node,
                                             root_public=root_public,
                                             federation_key=fed_key)
        endpoints.append(endpoint)
    router = RouterEndpoint(server.address,
                            [shard.address for shard in shards],
                            vnodes=vnodes, federation_key=fed_key)
    if hibc_node is not None:
        router._hibc_node = hibc_node      # already applied per shard above
        router._root_public = root_public
    transport.bind(server.address, router)
    return Federation(router=router, ring=router.ring,
                      shards=tuple(shards), endpoints=tuple(endpoints))
