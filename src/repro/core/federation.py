"""Federated S-server deployment: shards + router, wired to a transport.

:func:`bind_federated_sserver` turns one logical S-server into an
N-shard federation behind a :class:`~repro.core.router.RouterEndpoint`
bound at the logical address — so every existing protocol flow (which
resolves the S-server by ``server.address``) runs unchanged, and
``dispatch.bind_sserver`` finds the router and returns it like any
other already-bound endpoint.

Every shard is its own :class:`~repro.core.sserver.StorageServer`
holding the *same* SOK identity key as the logical server: ν =
KDF(ê(Γ_S, client_public)) depends only on that key, so a client's
sealed envelopes verify on whichever shard the router picks.  What the
shards do **not** share is mutable state — each has its own collection
map, replay guard, MHI store, and (when ``data_dir`` is given) its own
journal/snapshot series under ``sserver-shard-<i>.*``, so one shard
crashes, tears, and recovers independently of its peers.

``n_shards=1`` degenerates to a router fronting a single shard —
useful for parity testing; production-equivalent to a plain bind.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import dispatch
from repro.core.router import RouterEndpoint
from repro.core.shard import DEFAULT_VNODES, HashRing
from repro.core.sserver import StorageServer
from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError, TransportError
from repro.net.transport import as_transport
from repro.store.durable import DurableStore, bind_durable_sserver

__all__ = ["Federation", "shard_servers", "bind_federated_sserver"]


@dataclass
class Federation:
    """One bound federation: the router plus its shard deployment."""

    router: RouterEndpoint
    ring: HashRing
    shards: tuple
    endpoints: tuple

    @property
    def shard_addresses(self) -> tuple:
        return tuple(shard.address for shard in self.shards)


def shard_servers(server: StorageServer, n_shards: int) -> list:
    """N shard servers for one logical S-server.

    Names and addresses derive from the logical server's
    (``hospital-a`` → ``hospital-a-shard-0`` …), deterministically, so a
    restarted deployment rebuilds the identical ring.  Each shard gets
    its own domain-separated DRBG; the identity key and crypto engine
    are shared with the logical server.
    """
    if n_shards < 1:
        raise ParameterError("a federation needs at least one shard")
    shards = []
    for i in range(n_shards):
        name = "%s-shard-%d" % (server.name, i)
        shards.append(StorageServer(
            name, server.params, server.identity_key,
            HmacDrbg(b"hcpp-shard/" + name.encode()),
            engine=server.engine))
    return shards


def bind_federated_sserver(transport, server: StorageServer, n_shards: int,
                           *, hibc_node=None, root_public=None, engine=None,
                           data_dir: str | None = None,
                           snapshot_every: int = 0, fault_policy=None,
                           vnodes: int = DEFAULT_VNODES) -> Federation:
    """Serve ``server.address`` with an N-shard federation.

    With ``data_dir`` each shard binds durably (its own
    ``DurableStore`` under ``sserver-shard-<i>``; binding over an
    existing directory *is* recovery) and registers with
    ``fault_policy`` for crash/restart injection.  Without it, shards
    are plain in-memory endpoints.  The router itself is stateless and
    needs no durability.
    """
    transport = as_transport(transport)
    if transport.endpoint_at(server.address) is not None:
        raise TransportError("address %r is already served"
                             % server.address)
    if engine is not None:
        server.engine = engine
    shards = shard_servers(server, n_shards)
    endpoints = []
    for i, shard in enumerate(shards):
        if data_dir is not None:
            store = DurableStore(data_dir, "sserver-shard-%d" % i,
                                 snapshot_every=snapshot_every)
            endpoint = bind_durable_sserver(
                transport, shard, store, hibc_node=hibc_node,
                root_public=root_public, fault_policy=fault_policy)
        else:
            endpoint = dispatch.bind_sserver(transport, shard,
                                             hibc_node=hibc_node,
                                             root_public=root_public)
        endpoints.append(endpoint)
    router = RouterEndpoint(server.address,
                            [shard.address for shard in shards],
                            vnodes=vnodes)
    if hibc_node is not None:
        router._hibc_node = hibc_node      # already applied per shard above
        router._root_public = root_public
    transport.bind(server.address, router)
    return Federation(router=router, ring=router.ring,
                      shards=tuple(shards), endpoints=tuple(endpoints))
