"""Privilege assignment — ASSIGN and REVOKE (paper §IV.C).

ASSIGN (patient → each entity u ∈ U, over the patient LAN):

    patient → U :  E′_μ(TP_p ‖ ν ‖ a ‖ b ‖ c ‖ d ‖ SI ‖ KI ‖ dictionary
                   ‖ s ‖ X), t2, HMAC_μ(E′_μ ‖ t2)

REVOKE (patient → S-server, to rotate the group secret):

    patient → S-server :  E′_ν(d′ ‖ BE′_U′(d′)), t3, HMAC_ν(E′_ν ‖ t3)

After REVOKE, the revoked entity can neither recover d′ from the new
broadcast (its leaf is outside the NNL cover) nor have θ_{d_old}-wrapped
trapdoors accepted (the validity tag fails under d′).

Both messages travel as wire frames: the entity's
:class:`~repro.core.dispatch.EntityEndpoint` opens E′_μ and installs the
package; the S-server's endpoint routes the group-state update.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.crypto.modes import AuthenticatedCipher
from repro.net.transport import as_transport
from repro.core import dispatch, wire
from repro.core.entities import Patient, _PrivilegedEntity
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import pack_fields, seal
from repro.core.sserver import StorageServer, _serialize_broadcast


@dataclass(frozen=True)
class AssignResult:
    entity_name: str
    package_bytes: int
    stats: ProtocolStats


@dataclass(frozen=True)
class RevokeResult:
    revoked_entity: str
    broadcast_bytes: int
    stats: ProtocolStats


def _send_group_state(patient: Patient, server: StorageServer, transport,
                      envelope_label: str, wire_label: str) -> int:
    """One E′_ν(d ‖ BE_U(d)) frame to the S-server; returns frame bytes."""
    broadcast = patient.privileges.broadcast_d()
    pseudonym = patient.fresh_pseudonym()
    nu = patient.session_key_with(server.identity_key.public, pseudonym)
    plaintext = pack_fields(patient.privileges.current_d,
                            _serialize_broadcast(broadcast))
    body = AuthenticatedCipher(nu).encrypt(plaintext, patient.rng)
    envelope = seal(nu, envelope_label, body, transport.now)
    collection_id = patient.collection_ids[server.address]
    frame = wire.make_frame(wire.OP_GROUP_UPDATE,
                            pseudonym.public.to_bytes(), collection_id,
                            envelope.to_bytes())
    wire.parse_response(transport.notify(
        patient.address, server.address, frame, label=wire_label))
    return len(frame)


def push_group_state(patient: Patient, server: StorageServer,
                     network) -> int:
    """Send the current (d, BE_U(d)) to the S-server under E′_ν.

    §IV.C: *"the interactions … between patient and S-server (i.e.,
    sending θ, d, BE_U(d)) take the same secure procedures"* — ASSIGN and
    REVOKE both end with this one-message update.  Returns wire bytes.
    """
    transport = as_transport(network)
    dispatch.bind_sserver(transport, server)
    return _send_group_state(patient, server, transport,
                             envelope_label="group-update",
                             wire_label="assign/group-update")


def assign_privilege(patient: Patient, entity: _PrivilegedEntity,
                     server: StorageServer,
                     network) -> AssignResult:
    """Run ASSIGN: ship the package to one family member / P-device."""
    transport = as_transport(network)
    mu = patient.preshared_key(entity.name)
    dispatch.bind_entity(transport, entity, patient.params,
                         preshared_key=mu)
    started_at = transport.now
    mark = transport.mark()

    package = patient.make_assign_package(entity.name, server.address)
    # ν for the entity's own pseudonym pair, derived patient-side (the
    # patient knows the server's public key; ν rides inside E′_μ).
    nu = patient.session_key_with(server.identity_key.public,
                                  package.pseudonym)
    package = replace(package, nu=nu)

    body = AuthenticatedCipher(mu).encrypt(package.to_bytes(patient.params),
                                           patient.rng)
    envelope = seal(mu, "assign", body, transport.now)
    frame = wire.make_frame(wire.OP_ASSIGN, envelope.to_bytes())
    # The entity's endpoint verifies HMAC_μ, decrypts E′_μ, and installs
    # the package parsed from its actual wire bytes.
    wire.parse_response(transport.notify(
        patient.address, entity.address, frame, label="assign"))

    # The new entity's leaf must enter the server-side broadcast cover.
    push_group_state(patient, server, transport)

    return AssignResult(
        entity_name=entity.name,
        package_bytes=package.size_bytes(patient.params),
        stats=ProtocolStats.capture("privilege-assign", transport, mark,
                                    started_at))


def revoke_privilege(patient: Patient, entity_name: str,
                     server: StorageServer,
                     network) -> RevokeResult:
    """Run REVOKE: rotate d and install BE_U′(d′) at the S-server."""
    transport = as_transport(network)
    dispatch.bind_sserver(transport, server)
    started_at = transport.now
    mark = transport.mark()

    broadcast = patient.privileges.revoke(entity_name)
    _send_group_state(patient, server, transport,
                      envelope_label="revoke", wire_label="revoke")

    return RevokeResult(
        revoked_entity=entity_name,
        broadcast_bytes=broadcast.size_bytes(),
        stats=ProtocolStats.capture("privilege-revoke", transport, mark,
                                    started_at))
