"""Privilege assignment — ASSIGN and REVOKE (paper §IV.C).

ASSIGN (patient → each entity u ∈ U, over the patient LAN):

    patient → U :  E′_μ(TP_p ‖ ν ‖ a ‖ b ‖ c ‖ d ‖ SI ‖ KI ‖ dictionary
                   ‖ s ‖ X), t2, HMAC_μ(E′_μ ‖ t2)

REVOKE (patient → S-server, to rotate the group secret):

    patient → S-server :  E′_ν(d′ ‖ BE′_U′(d′)), t3, HMAC_ν(E′_ν ‖ t3)

After REVOKE, the revoked entity can neither recover d′ from the new
broadcast (its leaf is outside the NNL cover) nor have θ_{d_old}-wrapped
trapdoors accepted (the validity tag fails under d′).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.crypto.modes import AuthenticatedCipher
from repro.net.sim import Network
from repro.core.entities import Patient, _PrivilegedEntity
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import open_envelope, pack_fields, seal
from repro.core.sserver import StorageServer, _serialize_broadcast



@dataclass(frozen=True)
class AssignResult:
    entity_name: str
    package_bytes: int
    stats: ProtocolStats


@dataclass(frozen=True)
class RevokeResult:
    revoked_entity: str
    broadcast_bytes: int
    stats: ProtocolStats


def push_group_state(patient: Patient, server: StorageServer,
                     network: Network) -> int:
    """Send the current (d, BE_U(d)) to the S-server under E′_ν.

    §IV.C: *"the interactions … between patient and S-server (i.e.,
    sending θ, d, BE_U(d)) take the same secure procedures"* — ASSIGN and
    REVOKE both end with this one-message update.  Returns wire bytes.
    """
    broadcast = patient.privileges.broadcast_d()
    pseudonym = patient.fresh_pseudonym()
    nu = patient.session_key_with(server.identity_key.public, pseudonym)
    plaintext = pack_fields(patient.privileges.current_d,
                            _serialize_broadcast(broadcast))
    body = AuthenticatedCipher(nu).encrypt(plaintext, patient.rng)
    envelope = seal(nu, "group-update", body, network.clock.now)
    network.transmit(patient.address, server.address, envelope.size_bytes(),
                     label="assign/group-update")
    collection_id = patient.collection_ids[server.address]
    server.handle_revoke(pseudonym.public, collection_id, envelope,
                         network.clock.now)
    return envelope.size_bytes()


def assign_privilege(patient: Patient, entity: _PrivilegedEntity,
                     server: StorageServer,
                     network: Network) -> AssignResult:
    """Run ASSIGN: ship the package to one family member / P-device."""
    started_at = network.clock.now
    mark = network.mark()

    package = patient.make_assign_package(entity.name, server.address)
    # ν for the entity's own pseudonym pair, derived patient-side (the
    # patient knows the server's public key; ν rides inside E′_μ).
    nu = patient.session_key_with(server.identity_key.public,
                                  package.pseudonym)
    package = replace(package, nu=nu)

    mu = patient.preshared_key(entity.name)
    body = AuthenticatedCipher(mu).encrypt(package.to_bytes(patient.params),
                                           patient.rng)
    envelope = seal(mu, "assign", body, network.clock.now)
    network.transmit(patient.address, entity.address,
                     envelope.size_bytes(), label="assign")

    # Entity side: verify HMAC_μ, decrypt E′_μ, parse and install the
    # package from its actual wire bytes.
    payload = open_envelope(mu, envelope, network.clock.now)
    plaintext = AuthenticatedCipher(mu).decrypt(payload)
    from repro.core.entities import AssignPackage
    received = AssignPackage.from_bytes(plaintext, patient.params)
    entity.receive_assign(received)

    # The new entity's leaf must enter the server-side broadcast cover.
    push_group_state(patient, server, network)

    return AssignResult(
        entity_name=entity.name,
        package_bytes=package.size_bytes(patient.params),
        stats=ProtocolStats.capture("privilege-assign", network, mark,
                                    started_at))


def revoke_privilege(patient: Patient, entity_name: str,
                     server: StorageServer,
                     network: Network) -> RevokeResult:
    """Run REVOKE: rotate d and install BE_U′(d′) at the S-server."""
    started_at = network.clock.now
    mark = network.mark()

    broadcast = patient.privileges.revoke(entity_name)
    d_new = patient.privileges.current_d

    pseudonym = patient.fresh_pseudonym()
    nu = patient.session_key_with(server.identity_key.public, pseudonym)
    plaintext = pack_fields(d_new, _serialize_broadcast(broadcast))
    body = AuthenticatedCipher(nu).encrypt(plaintext, patient.rng)
    envelope = seal(nu, "revoke", body, network.clock.now)
    network.transmit(patient.address, server.address,
                     envelope.size_bytes(), label="revoke")

    collection_id = patient.collection_ids[server.address]
    server.handle_revoke(pseudonym.public, collection_id, envelope,
                         network.clock.now)

    return RevokeResult(
        revoked_entity=entity_name,
        broadcast_bytes=broadcast.size_bytes(),
        stats=ProtocolStats.capture("privilege-revoke", network, mark,
                                    started_at))
