"""The HCPP protocol suite (paper §IV).

* :mod:`~repro.core.protocols.storage` — private PHI storage (§IV.B)
* :mod:`~repro.core.protocols.privilege` — ASSIGN / REVOKE (§IV.C)
* :mod:`~repro.core.protocols.retrieval` — common-case retrieval (§IV.D)
* :mod:`~repro.core.protocols.emergency` — family & P-device paths (§IV.E)
* :mod:`~repro.core.protocols.mhi` — MHI storage/retrieval (§IV.E.2)
* :mod:`~repro.core.protocols.messages` — envelopes / replay defence
"""
