"""Cross-domain retrieval — the HIBC-keyed variant (§IV.D, §V.A).

Paper §IV.D: *"The protocol execution remains the same for retrieval
across hospitals, except for the shared key which is derived in the HIBC
domain."*  §V.A: *"The patient can be provided a temporary key pair
(similar to TP_p/Γ_p) at level 3 of the hierarchical tree, enabling the
patient to interact with any S-server throughout the country."*

Within one state, ν comes from the SOK pairing of same-domain IBC keys.
Across states the masters differ, so that pairing identity breaks; the
HIBC tree supplies the replacement:

1. The patient holds a *pseudonymous level-3 HIBC node* (issued by any
   hospital he visited; the leaf identity is a random string, so it
   carries no identity linkage).
2. To talk to a foreign S-server, the patient picks a fresh session key
   k, **HIBE-encrypts** it to the server's identity tuple
   (federal / state / hospital / sserver), and **HIDS-signs** the
   transcript with his level-3 key.
3. The server verifies the signature against the patient's (pseudonymous)
   tuple using only the federal root key Q_0, decrypts k with its ψ, and
   both sides use k exactly where ν would have been — the §IV.D message
   flow is otherwise byte-identical (the S-server's endpoint keys the
   established session by a transcript-derived handle, and the retrieval
   frame names that handle instead of a pseudonym).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.ec import Point
from repro.crypto.hibc import (HibcNode, HibeCiphertext, HidsSignature,
                               hibe_encrypt, hids_verify)
from repro.crypto.params import DomainParams
from repro.crypto.rng import HmacDrbg
from repro.ehr.records import PhiFile
from repro.net.transport import as_transport
from repro.core import dispatch, wire
from repro.core.entities import Patient
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import (Envelope, open_envelope,
                                           pack_fields, seal, unpack_fields)
from repro.core.sserver import StorageServer
from repro.exceptions import AuthenticationError

SESSION_KEY_BYTES = 32


@dataclass(frozen=True)
class CrossDomainHandshake:
    """What travels in the key-establishment message."""

    patient_tuple: tuple[str, ...]
    ciphertext: HibeCiphertext
    signature: HidsSignature

    def size_bytes(self) -> int:
        return (sum(len(t) for t in self.patient_tuple)
                + self.ciphertext.size_bytes()
                + self.signature.size_bytes())


def initiate_session(patient_node: HibcNode, server_tuple: tuple[str, ...],
                     params: DomainParams, root_public: Point,
                     rng: HmacDrbg) -> tuple[bytes, CrossDomainHandshake]:
    """Patient side: fresh k, HIBE to the server, HIDS over the transcript."""
    session_key = rng.random_bytes(SESSION_KEY_BYTES)
    ciphertext = hibe_encrypt(params, root_public, server_tuple,
                              session_key, rng)
    transcript = _transcript(patient_node.id_tuple, server_tuple,
                             ciphertext)
    signature = patient_node.sign(transcript)
    return session_key, CrossDomainHandshake(
        patient_tuple=patient_node.id_tuple,
        ciphertext=ciphertext,
        signature=signature)


def accept_session(server_node: HibcNode, handshake: CrossDomainHandshake,
                   params: DomainParams, root_public: Point) -> bytes:
    """Server side: verify the HIDS via Q_0 only, decrypt the session key.

    Raises :class:`AuthenticationError` on a bad signature — a handshake
    from outside the federal tree cannot produce one.
    """
    transcript = _transcript(handshake.patient_tuple, server_node.id_tuple,
                             handshake.ciphertext)
    if not hids_verify(params, root_public, handshake.patient_tuple,
                       transcript, handshake.signature):
        raise AuthenticationError(
            "cross-domain handshake signature failed for %r"
            % (handshake.patient_tuple,))
    session_key = server_node.decrypt(handshake.ciphertext)
    if len(session_key) != SESSION_KEY_BYTES:
        raise AuthenticationError("malformed cross-domain session key")
    return session_key


def _transcript(patient_tuple: tuple[str, ...],
                server_tuple: tuple[str, ...],
                ciphertext: HibeCiphertext) -> bytes:
    return pack_fields(
        "\x1f".join(patient_tuple).encode(),
        "\x1f".join(server_tuple).encode(),
        ciphertext.U0.to_bytes(),
        ciphertext.V,
    )


def session_handle(patient_tuple: tuple[str, ...],
                   server_tuple: tuple[str, ...],
                   ciphertext: HibeCiphertext) -> bytes:
    """Public identifier of an established session, derived by both sides
    from the handshake transcript (never from the secret key k)."""
    return hashlib.sha256(
        b"hcpp-xd-session:"
        + _transcript(patient_tuple, server_tuple, ciphertext)).digest()


@dataclass(frozen=True)
class CrossDomainResult:
    keywords: tuple[str, ...]
    files: list[PhiFile]
    stats: ProtocolStats


def cross_domain_retrieval(patient: Patient, patient_node: HibcNode,
                           server: StorageServer, server_node: HibcNode,
                           root_public: Point, network,
                           keywords: list[str]) -> CrossDomainResult:
    """The §IV.D flow against a foreign-state S-server.

    One extra message (the handshake) establishes the HIBC-derived key;
    the retrieval round itself is identical to the same-domain protocol,
    with the session key standing in for ν.
    """
    transport = as_transport(network)
    dispatch.bind_sserver(transport, server, hibc_node=server_node,
                          root_public=root_public)
    started_at = transport.now
    mark = transport.mark()

    session_key, handshake = initiate_session(
        patient_node, server_node.id_tuple, patient.params, root_public,
        patient.rng)
    frame = wire.make_frame(
        wire.OP_XD_HANDSHAKE,
        "\x1f".join(handshake.patient_tuple).encode(),
        handshake.ciphertext.to_bytes(),
        handshake.signature.to_bytes())
    wire.parse_response(transport.notify(
        patient.address, server.address, frame,
        label="crossdomain/handshake"))
    handle = session_handle(patient_node.id_tuple, server_node.id_tuple,
                            handshake.ciphertext)

    collection_id = patient.collection_ids[server.address]
    trapdoors = [patient.trapdoor(kw).to_bytes() for kw in keywords]
    request = seal(session_key, "crossdomain/retrieve",
                   pack_fields(*trapdoors), transport.now)
    frame = wire.make_frame(wire.OP_XD_SEARCH, handle, collection_id,
                            request.to_bytes())
    response = transport.request(patient.address, server.address, frame,
                                 label="crossdomain/request",
                                 reply_label="crossdomain/response")
    reply = Envelope.from_bytes(wire.parse_response(response))
    payload = open_envelope(session_key, reply, transport.now,
                            patient.replay_guard,
                            expected_label="phi-results")
    files = patient.decrypt_results(unpack_fields(payload))
    return CrossDomainResult(
        keywords=tuple(keywords),
        files=files,
        stats=ProtocolStats.capture("cross-domain-retrieval", transport,
                                    mark, started_at))
