"""Cross-domain retrieval — the HIBC-keyed variant (§IV.D, §V.A).

Paper §IV.D: *"The protocol execution remains the same for retrieval
across hospitals, except for the shared key which is derived in the HIBC
domain."*  §V.A: *"The patient can be provided a temporary key pair
(similar to TP_p/Γ_p) at level 3 of the hierarchical tree, enabling the
patient to interact with any S-server throughout the country."*

Within one state, ν comes from the SOK pairing of same-domain IBC keys.
Across states the masters differ, so that pairing identity breaks; the
HIBC tree supplies the replacement:

1. The patient holds a *pseudonymous level-3 HIBC node* (issued by any
   hospital he visited; the leaf identity is a random string, so it
   carries no identity linkage).
2. To talk to a foreign S-server, the patient picks a fresh session key
   k, **HIBE-encrypts** it to the server's identity tuple
   (federal / state / hospital / sserver), and **HIDS-signs** the
   transcript with his level-3 key.
3. The server verifies the signature against the patient's (pseudonymous)
   tuple using only the federal root key Q_0, decrypts k with its ψ, and
   both sides use k exactly where ν would have been — the §IV.D message
   flow is otherwise byte-identical (the S-server exposes a
   session-keyed search entry point for this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ec import Point
from repro.crypto.hibc import (HibcNode, HibeCiphertext, HidsSignature,
                               hibe_encrypt, hids_verify)
from repro.crypto.params import DomainParams
from repro.crypto.rng import HmacDrbg
from repro.ehr.records import PhiFile
from repro.net.sim import Network
from repro.core.entities import Patient
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import pack_fields, seal, open_envelope, unpack_fields
from repro.core.sserver import StorageServer
from repro.exceptions import AuthenticationError

SESSION_KEY_BYTES = 32


@dataclass(frozen=True)
class CrossDomainHandshake:
    """What travels in the key-establishment message."""

    patient_tuple: tuple[str, ...]
    ciphertext: HibeCiphertext
    signature: HidsSignature

    def size_bytes(self) -> int:
        return (sum(len(t) for t in self.patient_tuple)
                + self.ciphertext.size_bytes()
                + self.signature.size_bytes())


def initiate_session(patient_node: HibcNode, server_tuple: tuple[str, ...],
                     params: DomainParams, root_public: Point,
                     rng: HmacDrbg) -> tuple[bytes, CrossDomainHandshake]:
    """Patient side: fresh k, HIBE to the server, HIDS over the transcript."""
    session_key = rng.random_bytes(SESSION_KEY_BYTES)
    ciphertext = hibe_encrypt(params, root_public, server_tuple,
                              session_key, rng)
    transcript = _transcript(patient_node.id_tuple, server_tuple,
                             ciphertext)
    signature = patient_node.sign(transcript)
    return session_key, CrossDomainHandshake(
        patient_tuple=patient_node.id_tuple,
        ciphertext=ciphertext,
        signature=signature)


def accept_session(server_node: HibcNode, handshake: CrossDomainHandshake,
                   params: DomainParams, root_public: Point) -> bytes:
    """Server side: verify the HIDS via Q_0 only, decrypt the session key.

    Raises :class:`AuthenticationError` on a bad signature — a handshake
    from outside the federal tree cannot produce one.
    """
    transcript = _transcript(handshake.patient_tuple, server_node.id_tuple,
                             handshake.ciphertext)
    if not hids_verify(params, root_public, handshake.patient_tuple,
                       transcript, handshake.signature):
        raise AuthenticationError(
            "cross-domain handshake signature failed for %r"
            % (handshake.patient_tuple,))
    session_key = server_node.decrypt(handshake.ciphertext)
    if len(session_key) != SESSION_KEY_BYTES:
        raise AuthenticationError("malformed cross-domain session key")
    return session_key


def _transcript(patient_tuple: tuple[str, ...],
                server_tuple: tuple[str, ...],
                ciphertext: HibeCiphertext) -> bytes:
    return pack_fields(
        "\x1f".join(patient_tuple).encode(),
        "\x1f".join(server_tuple).encode(),
        ciphertext.U0.to_bytes(),
        ciphertext.V,
    )


@dataclass(frozen=True)
class CrossDomainResult:
    keywords: tuple[str, ...]
    files: list[PhiFile]
    stats: ProtocolStats


def cross_domain_retrieval(patient: Patient, patient_node: HibcNode,
                           server: StorageServer, server_node: HibcNode,
                           root_public: Point, network: Network,
                           keywords: list[str]) -> CrossDomainResult:
    """The §IV.D flow against a foreign-state S-server.

    One extra message (the handshake) establishes the HIBC-derived key;
    the retrieval round itself is identical to the same-domain protocol,
    with the session key standing in for ν.
    """
    started_at = network.clock.now
    mark = network.mark()

    session_key, handshake = initiate_session(
        patient_node, server_node.id_tuple, patient.params, root_public,
        patient.rng)
    network.transmit(patient.address, server.address,
                     handshake.size_bytes(), label="crossdomain/handshake")
    server_key = accept_session(server_node, handshake, patient.params,
                                root_public)
    assert server_key == session_key  # both sides now hold k

    collection_id = patient.collection_ids[server.address]
    trapdoors = [patient.trapdoor(kw).to_bytes() for kw in keywords]
    request = seal(session_key, "crossdomain/retrieve",
                   pack_fields(*trapdoors), network.clock.now)
    network.transmit(patient.address, server.address, request.size_bytes(),
                     label="crossdomain/request")
    reply = server.handle_search_session(session_key, collection_id,
                                         request, network.clock.now)
    network.transmit(server.address, patient.address, reply.size_bytes(),
                     label="crossdomain/response")
    payload = open_envelope(session_key, reply, network.clock.now)
    files = patient.decrypt_results(unpack_fields(payload))
    return CrossDomainResult(
        keywords=tuple(keywords),
        files=files,
        stats=ProtocolStats.capture("cross-domain-retrieval", network,
                                    mark, started_at))
