"""Emergency health-information retrieval — paper §IV.E.

Two backup mechanisms for when the patient is physically incompetent:

**Family-based (§IV.E.1)** — the trusted family member runs a 4-message
exchange with the S-server:

    1. family → S-server : TP_p, m, t6, HMAC_ν(…)          (request BE_U(d))
    2. S-server → family : BE_U′(d), t7, HMAC_ν(…)
    3. family → S-server : SI, TD_U(kw), t8, HMAC_ν(…)      (θ_d-wrapped)
    4. S-server → family : E′_s(kw) [= Λ(kw)], t9, HMAC_ν(…)

**P-device-based (§IV.E.2)** — when no family is present.  The physician
pushes the emergency button; the P-device connects to the A-server; the
physician authenticates as the on-duty emergency caregiver:

    1. physician → A-server : ID_i, m′, t10, IBS_Γi(ID_i ‖ m′ ‖ t10)
    2. A-server → physician : E′_ϖ(nounce), t11, IBS_ΓA(…)
    3. A-server → P-device  : ID_i, IBE_TPp(ID_i ‖ nounce ‖ t11), t11, IBS(…)

then enters ID + nounce on the device (physical contact), the device
checks the passcode and the keyword dictionary, performs the family-style
retrieval with the S-server, and returns plaintext PHI.  The A-server logs
the TR; the P-device logs the RD — the accountability evidence.

Steps 2 and 3 both originate at the A-server: its dispatch endpoint
pushes the IBE passcode frame to the registered P-device while answering
the physician's authenticated request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.modes import AuthenticatedCipher
from repro.ehr.records import PhiFile
from repro.net.transport import as_transport
from repro.core import dispatch, wire
from repro.core.accountability import DeviceRecord
from repro.core.aserver import StateAServer
from repro.core.entities import Family, PDevice, Physician, _PrivilegedEntity
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import (Envelope, open_envelope,
                                           pack_fields, seal, unpack_fields)
from repro.core.sserver import StorageServer, _deserialize_broadcast
from repro.exceptions import AccessDenied, AuthenticationError


@dataclass(frozen=True)
class EmergencyResult:
    approach: str
    keywords: tuple[str, ...]
    files: list[PhiFile]
    stats: ProtocolStats


def _privileged_retrieval(entity: _PrivilegedEntity, entity_address: str,
                          server: StorageServer, network,
                          keywords: list[str]) -> list[PhiFile]:
    """The shared 4-message family-style exchange (steps 1–4 above)."""
    transport = as_transport(network)
    dispatch.bind_sserver(transport, server)
    package = entity.package
    if package is None:
        raise AccessDenied("%s holds no ASSIGN package" % entity.name)
    nu = package.nu
    pseud_b = package.pseudonym.public.to_bytes()
    collection_id = package.collection_id

    # Steps 1–2: request the current broadcast, get BE_U(d) back.
    request = seal(nu, "emergency/get-d", b"m:request-broadcast",
                   transport.now)
    frame = wire.make_frame(wire.OP_GET_BROADCAST, pseud_b, collection_id,
                            request.to_bytes())
    response = transport.request(entity_address, server.address, frame,
                                 label="emergency/get-d",
                                 reply_label="emergency/broadcast-d")
    reply = Envelope.from_bytes(wire.parse_response(response))
    blob = open_envelope(nu, reply, transport.now,
                         expected_label="broadcast-d")
    d_current = entity.recover_group_secret(_deserialize_broadcast(blob))

    # Steps 3–4: θ_d-wrapped trapdoors out, Λ(kw) back.
    wrapped = [entity.wrapped_trapdoor(kw, d_current).data for kw in keywords]
    search = seal(nu, "emergency/search", pack_fields(*wrapped),
                  transport.now)
    frame = wire.make_frame(wire.OP_SEARCH_WRAPPED, pseud_b, collection_id,
                            search.to_bytes())
    response = transport.request(entity_address, server.address, frame,
                                 label="emergency/search",
                                 reply_label="emergency/results")
    results = Envelope.from_bytes(wire.parse_response(response))
    payload = open_envelope(nu, results, transport.now,
                            expected_label="phi-results")
    return entity.decrypt_results(unpack_fields(payload))


def family_based_retrieval(family: Family, server: StorageServer,
                           network, keywords: list[str],
                           physician: Physician | None = None,
                           physician_on_duty: bool = True
                           ) -> EmergencyResult:
    """§IV.E.1: the family retrieves PHI on the patient's behalf.

    The family's *subjective judgment* gates the exchange: if the
    requesting physician does not look legitimate, the family refuses
    (:class:`AccessDenied`) — no crypto needed, exactly the paper's point.
    """
    transport = as_transport(network)
    started_at = transport.now
    mark = transport.mark()

    if physician is not None and not family.approves(
            physician.physician_id, physician_on_duty):
        raise AccessDenied(
            "family refused PHI access for %r" % physician.physician_id)

    files = _privileged_retrieval(family, family.address, server, transport,
                                  keywords)
    if physician is not None:
        transport.deliver(family.address, physician.address,
                          sum(f.size_bytes() for f in files),
                          label="emergency/handover")
        physician.received_phi.extend(files)
    return EmergencyResult(
        approach="family",
        keywords=tuple(keywords),
        files=files,
        stats=ProtocolStats.capture("family-emergency-retrieval", transport,
                                    mark, started_at))


def pdevice_emergency_retrieval(physician: Physician, pdevice: PDevice,
                                aserver: StateAServer,
                                server: StorageServer, network,
                                keywords: list[str]) -> EmergencyResult:
    """§IV.E.2: the full P-device break-glass flow with accountability."""
    transport = as_transport(network)
    dispatch.bind_sserver(transport, server)
    dispatch.bind_aserver(transport, aserver)
    dispatch.bind_entity(transport, pdevice, pdevice.params)
    started_at = transport.now
    mark = transport.mark()
    package = pdevice.package
    if package is None:
        raise AccessDenied("P-device holds no ASSIGN package")

    # The physician pushes the emergency button; the device connects to the
    # A-server over wireless access and registers its pseudonym + address.
    pdevice.enter_emergency_mode()
    pd_public = package.pseudonym.public
    frame = wire.make_frame(wire.OP_REGISTER_PDEVICE, pd_public.to_bytes(),
                            pdevice.address.encode())
    wire.parse_response(transport.notify(
        pdevice.address, aserver.address, frame, label="emergency/register"))

    # Step 1: signed passcode request.  Steps 2 and 3 "take place
    # simultaneously and only after the physician successfully
    # authenticates himself as the emergency caregiver on duty" — the
    # A-server endpoint pushes the IBE passcode to the device while the
    # step-2 reply returns to the physician.
    request = b"m':one-time-passcode"
    t_request = transport.now
    signature = physician.sign_passcode_request(request, t_request)
    frame = wire.make_frame(wire.OP_EMERGENCY_AUTH,
                            physician.physician_id.encode(), request,
                            wire.ts_to_bytes(t_request),
                            signature.to_bytes(), pd_public.to_bytes())
    response = transport.request(physician.address, aserver.address, frame,
                                 label="emergency/auth-request",
                                 reply_label="emergency/passcode")
    enc_for_physician, _aserver_sig_b, t_issue_b = unpack_fields(
        wire.parse_response(response), expected=3)
    t_issue = wire.ts_from_bytes(t_issue_b)

    # The physician recovers the nounce under ϖ; the P-device's endpoint
    # already opened the step-3 push under Γ_p and armed the device.
    omega = physician.session_key_with(aserver.identity_key.public)
    nounce_physician = AuthenticatedCipher(omega).decrypt(enc_for_physician)
    if pdevice.expected_physician != physician.physician_id:
        raise AuthenticationError("P-device: passcode issued for a "
                                  "different physician")

    # Physical contact: the physician types ID + passcode on the device.
    transport.deliver(physician.address, pdevice.address,
                      len(physician.physician_id) + len(nounce_physician),
                      label="emergency/passcode-entry")
    if not pdevice.check_passcode(nounce_physician):
        raise AuthenticationError("invalid one-time passcode")

    # Keyword entry + dictionary gate.
    canonical = pdevice.validate_keywords(keywords)
    transport.deliver(physician.address, pdevice.address,
                      sum(len(kw) for kw in canonical),
                      label="emergency/keywords")

    # The device now runs the family-style retrieval with the S-server.
    files = _privileged_retrieval(pdevice, pdevice.address, server,
                                  transport, canonical)

    # RD = (ID_i, TP_p, KW, t11, IBS_ΓA-server), stored on the device.
    if pdevice.pending_t_issue is None or pdevice.pending_signature is None:
        raise AuthenticationError("P-device never received the passcode "
                                  "push")
    pdevice.record_transaction(DeviceRecord(
        physician_id=physician.physician_id,
        patient_pseudonym=pd_public.to_bytes(),
        keywords=tuple(canonical),
        t_issue=t_issue,
        aserver_id=aserver.identity_key.identity,
        aserver_signature=pdevice.pending_signature))

    # Plaintext PHI handed to the physician on the spot.
    transport.deliver(pdevice.address, physician.address,
                      sum(f.size_bytes() for f in files),
                      label="emergency/handover")
    physician.received_phi.extend(files)
    pdevice.exit_emergency_mode()
    return EmergencyResult(
        approach="p-device",
        keywords=tuple(canonical),
        files=files,
        stats=ProtocolStats.capture("pdevice-emergency-retrieval", transport,
                                    mark, started_at))
