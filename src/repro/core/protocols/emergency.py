"""Emergency health-information retrieval — paper §IV.E.

Two backup mechanisms for when the patient is physically incompetent:

**Family-based (§IV.E.1)** — the trusted family member runs a 4-message
exchange with the S-server:

    1. family → S-server : TP_p, m, t6, HMAC_ν(…)          (request BE_U(d))
    2. S-server → family : BE_U′(d), t7, HMAC_ν(…)
    3. family → S-server : SI, TD_U(kw), t8, HMAC_ν(…)      (θ_d-wrapped)
    4. S-server → family : E′_s(kw) [= Λ(kw)], t9, HMAC_ν(…)

**P-device-based (§IV.E.2)** — when no family is present.  The physician
pushes the emergency button; the P-device connects to the A-server; the
physician authenticates as the on-duty emergency caregiver:

    1. physician → A-server : ID_i, m′, t10, IBS_Γi(ID_i ‖ m′ ‖ t10)
    2. A-server → physician : E′_ϖ(nounce), t11, IBS_ΓA(…)
    3. A-server → P-device  : ID_i, IBE_TPp(ID_i ‖ nounce ‖ t11), t11, IBS(…)

then enters ID + nounce on the device (physical contact), the device
checks the passcode and the keyword dictionary, performs the family-style
retrieval with the S-server, and returns plaintext PHI.  The A-server logs
the TR; the P-device logs the RD — the accountability evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ibe import decrypt_with_point
from repro.crypto.modes import AuthenticatedCipher
from repro.ehr.records import PhiFile
from repro.net.sim import Network
from repro.core.accountability import DeviceRecord
from repro.core.aserver import StateAServer
from repro.core.entities import Family, PDevice, Physician, _PrivilegedEntity
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import (open_envelope, pack_fields, seal,
                                           unpack_fields)
from repro.core.sserver import StorageServer, _deserialize_broadcast
from repro.exceptions import AccessDenied, AuthenticationError


@dataclass(frozen=True)
class EmergencyResult:
    approach: str
    keywords: tuple[str, ...]
    files: list[PhiFile]
    stats: ProtocolStats


def _privileged_retrieval(entity: _PrivilegedEntity, entity_address: str,
                          server: StorageServer, network: Network,
                          keywords: list[str]) -> list[PhiFile]:
    """The shared 4-message family-style exchange (steps 1–4 above)."""
    package = entity.package
    if package is None:
        raise AccessDenied("%s holds no ASSIGN package" % entity.name)
    nu = package.nu
    pseudonym = package.pseudonym
    collection_id = package.collection_id

    # Step 1: request the current broadcast.
    request = seal(nu, "emergency/get-d", b"m:request-broadcast",
                   network.clock.now)
    network.transmit(entity_address, server.address,
                     request.size_bytes() + len(pseudonym.public.to_bytes()),
                     label="emergency/get-d")
    # Step 2: BE_U(d).
    reply = server.handle_get_broadcast(pseudonym.public, collection_id,
                                        request, network.clock.now)
    network.transmit(server.address, entity_address, reply.size_bytes(),
                     label="emergency/broadcast-d")
    blob = open_envelope(nu, reply, network.clock.now)
    d_current = entity.recover_group_secret(_deserialize_broadcast(blob))

    # Step 3: θ_d-wrapped trapdoors.
    wrapped = [entity.wrapped_trapdoor(kw, d_current).data for kw in keywords]
    search = seal(nu, "emergency/search", pack_fields(*wrapped),
                  network.clock.now)
    network.transmit(entity_address, server.address, search.size_bytes(),
                     label="emergency/search")
    # Step 4: Λ(kw).
    results = server.handle_search_wrapped(pseudonym.public, collection_id,
                                           search, network.clock.now)
    network.transmit(server.address, entity_address, results.size_bytes(),
                     label="emergency/results")
    payload = open_envelope(nu, results, network.clock.now)
    return entity.decrypt_results(unpack_fields(payload))


def family_based_retrieval(family: Family, server: StorageServer,
                           network: Network, keywords: list[str],
                           physician: Physician | None = None,
                           physician_on_duty: bool = True
                           ) -> EmergencyResult:
    """§IV.E.1: the family retrieves PHI on the patient's behalf.

    The family's *subjective judgment* gates the exchange: if the
    requesting physician does not look legitimate, the family refuses
    (:class:`AccessDenied`) — no crypto needed, exactly the paper's point.
    """
    started_at = network.clock.now
    mark = network.mark()

    if physician is not None and not family.approves(
            physician.physician_id, physician_on_duty):
        raise AccessDenied(
            "family refused PHI access for %r" % physician.physician_id)

    files = _privileged_retrieval(family, family.address, server, network,
                                  keywords)
    if physician is not None:
        network.transmit(family.address, physician.address,
                         sum(f.size_bytes() for f in files),
                         label="emergency/handover")
        physician.received_phi.extend(files)
    return EmergencyResult(
        approach="family",
        keywords=tuple(keywords),
        files=files,
        stats=ProtocolStats.capture("family-emergency-retrieval", network,
                                    mark, started_at))


def pdevice_emergency_retrieval(physician: Physician, pdevice: PDevice,
                                aserver: StateAServer,
                                server: StorageServer, network: Network,
                                keywords: list[str]) -> EmergencyResult:
    """§IV.E.2: the full P-device break-glass flow with accountability."""
    started_at = network.clock.now
    mark = network.mark()
    package = pdevice.package
    if package is None:
        raise AccessDenied("P-device holds no ASSIGN package")

    # The physician pushes the emergency button; the device connects to the
    # A-server over wireless access and registers its pseudonym.
    pdevice.enter_emergency_mode()
    pd_public = package.pseudonym.public
    network.transmit(pdevice.address, aserver.address,
                     len(pd_public.to_bytes()), label="emergency/register")
    aserver.register_pdevice(pd_public)

    # Step 1: signed passcode request.
    request = b"m':one-time-passcode"
    t_request = network.clock.now
    signature = physician.sign_passcode_request(request, t_request)
    network.transmit(physician.address, aserver.address,
                     len(request) + signature.size_bytes(),
                     label="emergency/auth-request")

    # Steps 2 and 3 "take place simultaneously and only after the physician
    # successfully authenticates himself as the emergency caregiver on duty."
    issue = aserver.authenticate_emergency(
        physician.physician_id, request, t_request, signature, pd_public,
        network.clock.now)
    network.transmit(aserver.address, physician.address,
                     issue.size_to_physician(), label="emergency/passcode")
    network.transmit(aserver.address, pdevice.address,
                     issue.size_to_pdevice(), label="emergency/ibe-passcode")

    # The physician recovers the nounce under ϖ; the P-device under Γ_p.
    omega = physician.session_key_with(aserver.identity_key.public)
    nounce_physician = AuthenticatedCipher(omega).decrypt(
        issue.encrypted_for_physician)
    pd_plain = decrypt_with_point(package.pseudonym.private,
                                  issue.pdevice_ciphertext)
    physician_id_bytes, nounce_device, _t11 = unpack_fields(pd_plain,
                                                            expected=3)
    if physician_id_bytes.decode() != physician.physician_id:
        raise AuthenticationError("P-device: passcode issued for a "
                                  "different physician")
    pdevice.expect_nounce(nounce_device)

    # Physical contact: the physician types ID + passcode on the device.
    network.transmit(physician.address, pdevice.address,
                     len(physician.physician_id) + len(nounce_physician),
                     label="emergency/passcode-entry")
    if not pdevice.check_passcode(nounce_physician):
        raise AuthenticationError("invalid one-time passcode")

    # Keyword entry + dictionary gate.
    canonical = pdevice.validate_keywords(keywords)
    network.transmit(physician.address, pdevice.address,
                     sum(len(kw) for kw in canonical),
                     label="emergency/keywords")

    # The device now runs the family-style retrieval with the S-server.
    files = _privileged_retrieval(pdevice, pdevice.address, server, network,
                                  canonical)

    # RD = (ID_i, TP_p, KW, t11, IBS_ΓA-server), stored on the device.
    pdevice.record_transaction(DeviceRecord(
        physician_id=physician.physician_id,
        patient_pseudonym=pd_public.to_bytes(),
        keywords=tuple(canonical),
        t_issue=issue.t_issue,
        aserver_id=aserver.identity_key.identity,
        aserver_signature=issue.pdevice_signature))

    # Plaintext PHI handed to the physician on the spot.
    network.transmit(pdevice.address, physician.address,
                     sum(f.size_bytes() for f in files),
                     label="emergency/handover")
    physician.received_phi.extend(files)
    pdevice.exit_emergency_mode()
    return EmergencyResult(
        approach="p-device",
        keywords=tuple(canonical),
        files=files,
        stats=ProtocolStats.capture("pdevice-emergency-retrieval", network,
                                    mark, started_at))
