"""Shared protocol-run bookkeeping.

Every protocol function returns a result object embedding a
:class:`ProtocolStats`, read off the transport's frame log — these are
the raw rows of the communication-cost experiments (E4) and the
end-to-end latency experiment (E8).  The stats are backend-agnostic:
the same capture works over the loopback transport, the discrete-event
simulator, or real sockets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.transport import as_transport


@dataclass(frozen=True)
class ProtocolStats:
    """Messages / bytes / wall-clock of one protocol execution."""

    protocol: str
    messages: int
    bytes_total: int
    latency_s: float

    @staticmethod
    def capture(protocol: str, network, mark: int,
                started_at: float) -> "ProtocolStats":
        transport = as_transport(network)
        window = transport.records_since(mark)
        return ProtocolStats(
            protocol=protocol,
            messages=len(window),
            bytes_total=sum(r.nbytes for r in window),
            latency_s=transport.now - started_at,
        )
