"""Shared protocol-run bookkeeping.

Every protocol function returns a result object embedding a
:class:`ProtocolStats`, read off the transport's frame log — these are
the raw rows of the communication-cost experiments (E4) and the
end-to-end latency experiment (E8).  The stats are backend-agnostic:
the same capture works over the loopback transport, the discrete-event
simulator, or real sockets.

Failure semantics are inherited, not re-implemented: protocols hand
their frames to ``transport.request``/``notify``, and whatever
:class:`~repro.net.transport.faults.RetryPolicy` /
:class:`~repro.net.transport.faults.FaultPolicy` the transport carries
applies to every protocol uniformly.  :func:`with_policies` is the one
place callers (CLI, chaos tests, benchmarks) arm them, and
``ProtocolStats.retries`` reports how many frames had to be re-sent —
lost attempts stay in the byte/message accounting, because their bytes
did leave the sender.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.transport import as_transport
from repro.net.transport.base import LOST_SUFFIX


@dataclass(frozen=True)
class ProtocolStats:
    """Messages / bytes / wall-clock of one protocol execution."""

    protocol: str
    messages: int
    bytes_total: int
    latency_s: float
    retries: int = 0

    @staticmethod
    def capture(protocol: str, network, mark: int,
                started_at: float) -> "ProtocolStats":
        transport = as_transport(network)
        window = transport.records_since(mark)
        return ProtocolStats(
            protocol=protocol,
            messages=len(window),
            bytes_total=sum(r.nbytes for r in window),
            latency_s=transport.now - started_at,
            retries=sum(1 for r in window if r.label.endswith(LOST_SUFFIX)))


def with_policies(network, retry=None, faults=None):
    """Resolve ``network`` to its transport and arm failure policies.

    ``retry`` (a :class:`~repro.net.transport.faults.RetryPolicy`) and
    ``faults`` (a :class:`~repro.net.transport.faults.FaultPolicy`)
    install on the shared transport instance, so every protocol run
    against the same network inherits them.  Returns the transport —
    pass it wherever a protocol takes its ``network`` argument.
    """
    transport = as_transport(network)
    if retry is not None:
        transport.set_retry_policy(retry)
    if faults is not None:
        transport.install_faults(faults)
    return transport
