"""Shared protocol-run bookkeeping.

Every protocol function returns a result object embedding a
:class:`ProtocolStats`, read off the network log — these are the raw rows
of the communication-cost experiments (E4) and the end-to-end latency
experiment (E8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.sim import Network


@dataclass(frozen=True)
class ProtocolStats:
    """Messages / bytes / wall-clock of one protocol execution."""

    protocol: str
    messages: int
    bytes_total: int
    latency_s: float

    @staticmethod
    def capture(protocol: str, network: Network, mark: int,
                started_at: float) -> "ProtocolStats":
        window = network.log[mark:]
        return ProtocolStats(
            protocol=protocol,
            messages=len(window),
            bytes_total=sum(r.nbytes for r in window),
            latency_s=network.clock.now - started_at,
        )
