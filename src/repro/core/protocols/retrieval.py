"""Common-case PHI retrieval — paper §IV.D.

    1. patient → S-server : TP_p, SI, TD(kw), t4, HMAC_ν(…)
    2. S-server → patient : Λ(kw), t5, HMAC_ν(Λ(kw) ‖ t5)

One round.  The patient's cell phone computes the trapdoor(s), the server
runs SEARCH (O(1) table hit + list walk), and only the files containing
the keyword come back — "the small number of files (instead of the entire
file collection) … fits the EHR system elegantly according to the privacy
requirement for disclosing only minimum necessary health information."

The patient then decrypts Λ(kw) with E′⁻¹_s and hands the plaintext PHI to
the physician over the physical link (speech / screen), which the
simulator models as a :class:`~repro.net.link.LinkClass.PHYSICAL` hop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ehr.records import PhiFile
from repro.net.onion import OnionOverlay
from repro.net.transport import as_transport
from repro.core import dispatch, wire
from repro.core.entities import Patient, Physician
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import (Envelope, open_envelope,
                                           pack_fields, seal, unpack_fields)
from repro.core.sserver import StorageServer
from repro.exceptions import TransportError


@dataclass(frozen=True)
class RetrievalResult:
    keywords: tuple[str, ...]
    files: list[PhiFile]
    stats: ProtocolStats
    anonymized: bool = False


def common_case_retrieval(patient: Patient, server: StorageServer,
                          network, keywords: list[str],
                          physician: Physician | None = None,
                          onion: OnionOverlay | None = None
                          ) -> RetrievalResult:
    """Run the two-message retrieval; optionally hand PHI to a physician.

    When ``onion`` is given (the §VI.B category-2 countermeasure), the
    request frame travels through a fresh 3-hop circuit so the S-server's
    uplink never carries the patient's network address; the response
    returns via the exit relay.  Trades the extra hop latency for origin
    anonymity — measured by experiment E10.
    """
    transport = as_transport(network)
    dispatch.bind_sserver(transport, server)
    started_at = transport.now
    mark = transport.mark()

    pseudonym = patient.fresh_pseudonym()
    nu = patient.session_key_with(server.identity_key.public, pseudonym)
    collection_id = patient.collection_ids[server.address]

    # Step 1: TP_p, collection handle, TD(kw₁..kwₙ) under HMAC_ν.
    trapdoors = [patient.trapdoor(kw).to_bytes() for kw in keywords]
    request = seal(nu, "phi-retrieve", pack_fields(*trapdoors),
                   transport.now)
    frame = wire.make_frame(wire.OP_SEARCH, pseudonym.public.to_bytes(),
                            collection_id, request.to_bytes())
    anonymized = False
    if onion is not None:
        route = getattr(transport, "request_via_onion", None)
        if route is None:
            raise TransportError(
                "onion routing needs the simulated network transport")
        response, _exit_relay = route(
            onion, patient.address, server.address, frame, patient.rng,
            label="retrieval/request", reply_label="retrieval/response")
        anonymized = True
    else:
        response = transport.request(
            patient.address, server.address, frame,
            label="retrieval/request", reply_label="retrieval/response")

    # Step 2: Λ(kw) under HMAC_ν — back via the exit relay when onioned
    # (the server only ever talks to the relay, never the patient).
    reply = Envelope.from_bytes(wire.parse_response(response))
    payload = open_envelope(nu, reply, transport.now, patient.replay_guard,
                            expected_label="phi-results")
    files = patient.decrypt_results(unpack_fields(payload))

    # Hand the plaintext PHI to the physician at the point of care.
    if physician is not None:
        transport.deliver(patient.address, physician.address,
                          sum(f.size_bytes() for f in files),
                          label="retrieval/handover")
        physician.received_phi.extend(files)

    return RetrievalResult(
        keywords=tuple(keywords),
        files=files,
        stats=ProtocolStats.capture("common-case-retrieval", transport, mark,
                                    started_at),
        anonymized=anonymized)
