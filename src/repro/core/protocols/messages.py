"""Protocol message envelopes: timestamps, HMAC integrity, replay defence.

Every HCPP wire message has the shape

    sender → receiver :  fields, t_i, HMAC_key(fields ‖ t_i)

(paper §IV.B: *"t₁ is the current system time and is included to prevent
replay attack [26], HMAC_ν is a keyed-hash message authentication code for
ensuring message integrity"*).  :class:`Envelope` realizes that shape over
an opaque payload; :class:`ReplayGuard` is the receiver-side freshness
window (bounded clock skew + duplicate-suppression cache).

Payloads themselves are built with :func:`pack_fields` /
:func:`unpack_fields` — a minimal length-prefixed encoding, so message
sizes measured by the experiments reflect real serialized bytes.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass

from repro.crypto.hmac_impl import HMAC_OUTPUT_SIZE, hmac_sha256, verify_hmac
from repro.exceptions import IntegrityError, ParameterError, ReplayError

_TS_BYTES = 8
DEFAULT_MAX_SKEW_S = 60.0


def ts_ms(timestamp: float) -> int:
    """Canonical millisecond quantization for MACed/signed timestamps.

    Rounding (not truncation) makes the float→ms→float wire round trip
    exact: ``round(ms/1000*1000) == ms`` for any realistic clock value,
    so a receiver that re-derives the MAC/signature input from a decoded
    timestamp reproduces the sender's bytes bit-for-bit.
    """
    return int(round(timestamp * 1000))


def pack_fields(*fields: bytes) -> bytes:
    """Length-prefixed concatenation (unambiguous, order-preserving)."""
    out = bytearray()
    for field in fields:
        out += len(field).to_bytes(4, "big")
        out += field
    return bytes(out)


def unpack_fields(payload: bytes, expected: int | None = None) -> list[bytes]:
    """Inverse of :func:`pack_fields`; validates structure."""
    fields: list[bytes] = []
    offset = 0
    while offset < len(payload):
        if offset + 4 > len(payload):
            raise ParameterError("truncated field header")
        length = int.from_bytes(payload[offset:offset + 4], "big")
        offset += 4
        chunk = payload[offset:offset + length]
        if len(chunk) != length:
            raise ParameterError("truncated field body")
        fields.append(chunk)
        offset += length
    if expected is not None and len(fields) != expected:
        raise ParameterError("expected %d fields, got %d"
                             % (expected, len(fields)))
    return fields


@dataclass(frozen=True)
class Envelope:
    """payload ‖ t ‖ HMAC_key(payload ‖ t) — one HCPP wire message."""

    label: str          # which protocol step this envelope belongs to
    payload: bytes
    timestamp: float
    tag: bytes

    def size_bytes(self) -> int:
        """Serialized size: payload + timestamp + MAC (label is metadata)."""
        return len(self.payload) + _TS_BYTES + HMAC_OUTPUT_SIZE

    @staticmethod
    def _mac_input(label: str, payload: bytes, timestamp: float) -> bytes:
        # The label is length-prefixed and MACed: an envelope sealed for
        # one protocol step cannot be replayed as a different step inside
        # the skew window (the tag would not verify under the new label).
        encoded = label.encode()
        return (len(encoded).to_bytes(2, "big") + encoded + payload
                + ts_ms(timestamp).to_bytes(_TS_BYTES, "big"))

    def to_bytes(self) -> bytes:
        """Wire form: the frame field carrying one envelope."""
        return pack_fields(self.label.encode(), self.payload,
                           ts_ms(self.timestamp).to_bytes(_TS_BYTES, "big"),
                           self.tag)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Envelope":
        label, payload, ts, tag = unpack_fields(data, expected=4)
        return cls(label=label.decode(), payload=payload,
                   timestamp=int.from_bytes(ts, "big") / 1000.0, tag=tag)


def seal(key: bytes, label: str, payload: bytes, now: float) -> Envelope:
    """Build an authenticated envelope stamped with the current time."""
    tag = hmac_sha256(key, Envelope._mac_input(label, payload, now))
    return Envelope(label=label, payload=payload, timestamp=now, tag=tag)


def open_envelope(key: bytes, envelope: Envelope, now: float,
                  guard: "ReplayGuard | None" = None,
                  max_skew_s: float = DEFAULT_MAX_SKEW_S,
                  expected_label: "str | tuple[str, ...] | None" = None
                  ) -> bytes:
    """Verify integrity + freshness; return the payload.

    Raises :class:`IntegrityError` on a bad MAC and :class:`ReplayError`
    on stale or duplicated timestamps.  When ``expected_label`` is given
    (one label or a tuple of acceptable ones), an envelope whose label is
    anything else is rejected before the MAC is even checked — a receiver
    states which protocol step it is serving.
    """
    if expected_label is not None:
        accepted = ((expected_label,) if isinstance(expected_label, str)
                    else expected_label)
        if envelope.label not in accepted:
            raise IntegrityError(
                "envelope label %r does not match expected %r"
                % (envelope.label, accepted))
    verify_hmac(key,
                Envelope._mac_input(envelope.label, envelope.payload,
                                    envelope.timestamp),
                envelope.tag)
    if abs(now - envelope.timestamp) > max_skew_s:
        raise ReplayError(
            "stale message %r: sent %.1f, now %.1f (skew limit %.0fs)"
            % (envelope.label, envelope.timestamp, now, max_skew_s))
    if guard is not None:
        guard.check_and_remember(envelope)
    return envelope.payload


class ReplayGuard:
    """Duplicate-suppression cache over (tag, timestamp) pairs.

    Remembers message tags inside the skew window; a second presentation
    of the same tag raises :class:`ReplayError`.  Entries older than the
    window are pruned lazily so memory stays bounded.

    Thread-safe: the S-server's batched search path checks envelopes from
    worker threads, so the check-then-insert must be atomic (two threads
    presenting the same tag concurrently must not both pass).
    """

    def __init__(self, window_s: float = DEFAULT_MAX_SKEW_S) -> None:
        self.window_s = window_s
        self._seen: dict[bytes, float] = {}
        self._lock = threading.Lock()
        #: Optional listener invoked as ``on_remember(tag, timestamp)``
        #: after a tag is newly committed to the window.  The durable
        #: layer uses it to journal the guard's high-water state so a
        #: crash-restart does not reopen the replay window.  Called
        #: outside the lock (listeners may do I/O).
        self.on_remember = None

    def check_and_remember(self, envelope: Envelope) -> None:
        with self._lock:
            self._prune(envelope.timestamp)
            if envelope.tag in self._seen:
                raise ReplayError("replayed message %r" % envelope.label)
            self._seen[envelope.tag] = envelope.timestamp
        if self.on_remember is not None:
            self.on_remember(envelope.tag, envelope.timestamp)

    def seen(self, tag: bytes) -> bool:
        """Probe without remembering — for receivers that must finish a
        side effect before committing the tag (check at entry, remember
        on success, so a failed handling stays retryable)."""
        with self._lock:
            return tag in self._seen

    def insert(self, tag: bytes, timestamp: float) -> None:
        """Idempotently seed a (tag, timestamp) pair — recovery path.

        Unlike :meth:`check_and_remember` this never raises and never
        notifies :attr:`on_remember`; it exists so crash recovery can
        reload journaled guard entries without re-journaling them.
        """
        with self._lock:
            self._prune(timestamp)
            self._seen.setdefault(tag, timestamp)

    def export_state(self) -> list[tuple[bytes, float]]:
        """Stable dump of the live window for snapshotting."""
        with self._lock:
            return sorted(self._seen.items())

    def load_state(self, entries: list[tuple[bytes, float]]) -> None:
        with self._lock:
            for tag, ts in entries:
                self._seen.setdefault(tag, ts)

    def _prune(self, now: float) -> None:
        # Caller holds self._lock.
        horizon = now - self.window_s
        stale = [tag for tag, ts in self._seen.items() if ts < horizon]
        for tag in stale:
            del self._seen[tag]

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)
