"""Private PHI storage — paper §IV.B.

    patient → S-server :  TP_p, SI, Λ, t1, HMAC_ν(TP_p ‖ SI ‖ Λ ‖ t1)

One message.  The patient (home PC) builds the secure index SI per Fig. 2,
encrypts the file collection Λ = E′_s(F), derives ν non-interactively from
a freshly self-generated pseudonym, and uploads.  The initial multi-user
material (d, BE_U(d)) rides along, as §IV.C notes ("the interactions …
take the same secure procedures").

The envelope's HMAC binds TP_p and SHA-256 digests of SI and Λ; the
server side (:class:`~repro.core.dispatch.SServerEndpoint`) recomputes
the digests over the bytes it actually received — any in-flight
modification is detected (data-integrity requirement, §III.C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.pseudonym import TemporaryKeyPair
from repro.core import dispatch, wire
from repro.core.entities import Patient
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import pack_fields, seal
from repro.core.sserver import StorageServer, _serialize_broadcast
from repro.core.wire import files_digest
from repro.net.transport import as_transport

__all__ = ["StorageResult", "files_digest", "private_phi_storage"]


@dataclass(frozen=True)
class StorageResult:
    collection_id: bytes
    pseudonym: TemporaryKeyPair
    index_bytes: int
    files_bytes: int
    stats: ProtocolStats


def private_phi_storage(patient: Patient, server: StorageServer,
                        network) -> StorageResult:
    """Run the one-message upload; returns the new collection handle."""
    transport = as_transport(network)
    dispatch.bind_sserver(transport, server)
    started_at = transport.now
    mark = transport.mark()

    pseudonym = patient.fresh_pseudonym()
    index, files = patient.build_upload()
    group_d = patient.privileges.current_d
    broadcast = patient.privileges.broadcast_d()
    nu = patient.session_key_with(server.identity_key.public, pseudonym)

    payload = pack_fields(pseudonym.public.to_bytes(), index.digest(),
                          files_digest(files))
    envelope = seal(nu, "phi-store", payload, transport.now)

    frame = wire.make_frame(
        wire.OP_STORE, pseudonym.public.to_bytes(), envelope.to_bytes(),
        index.to_bytes(), wire.encode_files(files), group_d,
        _serialize_broadcast(broadcast))
    collection_id = wire.parse_response(transport.notify(
        patient.address, server.address, frame, label="phi-storage/upload"))

    patient.collection_ids[server.address] = collection_id
    patient.upload_pseudonyms[server.address] = pseudonym
    return StorageResult(
        collection_id=collection_id,
        pseudonym=pseudonym,
        index_bytes=index.size_bytes(),
        files_bytes=sum(len(ct) for ct in files.values()),
        stats=ProtocolStats.capture("private-phi-storage", transport, mark,
                                    started_at))
