"""Private PHI storage — paper §IV.B.

    patient → S-server :  TP_p, SI, Λ, t1, HMAC_ν(TP_p ‖ SI ‖ Λ ‖ t1)

One message.  The patient (home PC) builds the secure index SI per Fig. 2,
encrypts the file collection Λ = E′_s(F), derives ν non-interactively from
a freshly self-generated pseudonym, and uploads.  The initial multi-user
material (d, BE_U(d)) rides along, as §IV.C notes ("the interactions …
take the same secure procedures").

The envelope's HMAC binds TP_p and SHA-256 digests of SI and Λ, and the
server recomputes the digests over what it received — any in-flight
modification is detected (data-integrity requirement, §III.C).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.pseudonym import TemporaryKeyPair
from repro.net.sim import Network
from repro.core.entities import Patient
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import pack_fields, seal
from repro.core.sserver import StorageServer
from repro.exceptions import IntegrityError


@dataclass(frozen=True)
class StorageResult:
    collection_id: bytes
    pseudonym: TemporaryKeyPair
    index_bytes: int
    files_bytes: int
    stats: ProtocolStats


def files_digest(files: dict[bytes, bytes]) -> bytes:
    """Order-independent digest of the encrypted collection Λ."""
    hasher = hashlib.sha256(b"encrypted-collection:")
    for fid in sorted(files):
        hasher.update(fid)
        hasher.update(hashlib.sha256(files[fid]).digest())
    return hasher.digest()


def private_phi_storage(patient: Patient, server: StorageServer,
                        network: Network) -> StorageResult:
    """Run the one-message upload; returns the new collection handle."""
    started_at = network.clock.now
    mark = network.mark()

    pseudonym = patient.fresh_pseudonym()
    index, files = patient.build_upload()
    group_d = patient.privileges.current_d
    broadcast = patient.privileges.broadcast_d()
    nu = patient.session_key_with(server.identity_key.public, pseudonym)

    payload = pack_fields(pseudonym.public.to_bytes(), index.digest(),
                          files_digest(files))
    envelope = seal(nu, "phi-store", payload, network.clock.now)

    files_bytes = sum(len(ct) for ct in files.values())
    wire_bytes = (envelope.size_bytes() + index.size_bytes() + files_bytes
                  + broadcast.size_bytes() + len(group_d))
    network.transmit(patient.address, server.address, wire_bytes,
                     label="phi-storage/upload")

    # Server-side: verify HMAC_ν and the SI/Λ digests before accepting.
    received_payload = pack_fields(pseudonym.public.to_bytes(),
                                   index.digest(), files_digest(files))
    if received_payload != envelope.payload:
        raise IntegrityError("SI/Λ digest mismatch on upload")
    collection_id = server.handle_store(
        pseudonym.public, envelope, index, files, group_d, broadcast,
        network.clock.now)

    patient.collection_ids[server.address] = collection_id
    patient.upload_pseudonyms[server.address] = pseudonym
    return StorageResult(
        collection_id=collection_id,
        pseudonym=pseudonym,
        index_bytes=index.size_bytes(),
        files_bytes=files_bytes,
        stats=ProtocolStats.capture("private-phi-storage", network, mark,
                                    started_at))
