"""MHI storage and retrieval — paper §IV.E.2 (role-based, IBE + PEKS).

Storage (the P-device, in advance, offline-precomputable):

    P-device → S-server : TP_p, IBE_IDr(MHI) ‖ PEKS_σ(ID_r, kw), t12,
                          HMAC_ν(TP_p ‖ IBE_IDr ‖ PEKS_σ ‖ t12)

The role identity ID_r is a general descriptive string
``Date‖Duty‖ServiceArea`` — only the A-server can extract Γ_r, and it
does so only for an authenticated on-duty emergency caregiver.  Each
day's window is made searchable for the following 5 days.

Retrieval (after the physician has obtained Γ_r from the A-server):

    1. physician → S-server : ID_r, TD_r(kw), t13, HMAC_ρ(…)
    2. S-server → physician : IBE_IDr(MHI), t14, HMAC_ρ(…)

with ρ = ê(Γ_r, PK_S) = ê(PK_r, Γ_S) derived locally by both sides.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ec import Point
from repro.crypto.ibe import FullIdent, IdentityKeyPair
from repro.crypto.nike import shared_key_from_points
from repro.crypto.peks import MultiKeywordPeks, RolePeks
from repro.ehr.mhi import MhiWindow
from repro.net.sim import Network
from repro.core.aserver import StateAServer
from repro.core.entities import PDevice, Physician
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import open_envelope, seal
from repro.core.sserver import StorageServer
from repro.exceptions import AccessDenied


def role_identity_for(date: str, duty: str = "emergency",
                      service_area: str = "default") -> str:
    """The paper's ID_r = "Date ‖ Duty ‖ ServiceArea" convention."""
    return "role:%s|%s|%s" % (date, duty, service_area)


@dataclass(frozen=True)
class MhiStoreResult:
    role_identity: str
    ciphertext_bytes: int
    tag_bytes: int
    stats: ProtocolStats


@dataclass(frozen=True)
class MhiRetrieveResult:
    role_identity: str
    keyword: str
    windows: list[MhiWindow]
    stats: ProtocolStats


def mhi_store(pdevice: PDevice, server: StorageServer,
              aserver_public: Point, network: Network,
              window: MhiWindow, role_identity: str) -> MhiStoreResult:
    """Encrypt one MHI window under ID_r, tag it, upload it."""
    started_at = network.clock.now
    mark = network.mark()
    package = pdevice.package
    if package is None:
        raise AccessDenied("P-device has no ASSIGN package (no pseudonym)")

    ibe = FullIdent(pdevice.params, aserver_public)
    ciphertext = ibe.encrypt(role_identity, window.to_bytes(), pdevice.rng)
    peks = MultiKeywordPeks(pdevice.params, aserver_public)
    # Searchable under the date keywords (the paper's 5-day horizon).
    tag = peks.tag(role_identity, list(window.searchable_days), pdevice.rng)

    nu = package.nu
    envelope = seal(nu, "mhi-store",
                    role_identity.encode() + ciphertext.to_bytes()[:32],
                    network.clock.now)
    wire = (envelope.size_bytes() + ciphertext.size_bytes()
            + tag.size_bytes())
    network.transmit(pdevice.address, server.address, wire,
                     label="mhi/store")
    server.handle_mhi_store(package.pseudonym.public, envelope,
                            role_identity, ciphertext, tag,
                            network.clock.now)
    return MhiStoreResult(
        role_identity=role_identity,
        ciphertext_bytes=ciphertext.size_bytes(),
        tag_bytes=tag.size_bytes(),
        stats=ProtocolStats.capture("mhi-store", network, mark, started_at))


def mhi_retrieve(physician: Physician, aserver: StateAServer,
                 server: StorageServer, network: Network,
                 role_identity: str, keyword: str) -> MhiRetrieveResult:
    """Obtain Γ_r, search the encrypted MHI, decrypt the matches.

    The physician must already hold an authenticated emergency session at
    the A-server (the passcode flow) — :meth:`StateAServer.extract_role_key`
    enforces it.
    """
    started_at = network.clock.now
    mark = network.mark()

    # Role-key issuance (rides on the authenticated session; one round).
    network.transmit(physician.address, aserver.address,
                     len(role_identity) + 16, label="mhi/role-key-request")
    role_key: IdentityKeyPair = aserver.extract_role_key(
        physician.physician_id, role_identity)
    network.transmit(aserver.address, physician.address,
                     len(role_key.private.to_bytes()),
                     label="mhi/role-key")

    # Step 1: ID_r, TD_r(kw) under HMAC_ρ.
    trapdoor = RolePeks.trapdoor(role_key.private, physician.params, keyword)
    rho = shared_key_from_points(role_key.private,
                                 server.identity_key.public)
    request = seal(rho, "mhi-search",
                   role_identity.encode() + trapdoor.point.to_bytes(),
                   network.clock.now)
    network.transmit(physician.address, server.address,
                     request.size_bytes(), label="mhi/search")

    # Server verifies under its own ρ = ê(Γ_S, H1(ID_r)) and tests tags.
    reply, matches = server.handle_mhi_search(
        role_identity, request, trapdoor, aserver.public_key,
        network.clock.now)

    # Step 2: IBE_IDr(MHI) under HMAC_ρ.
    network.transmit(server.address, physician.address, reply.size_bytes(),
                     label="mhi/results")
    open_envelope(rho, reply, network.clock.now)

    ibe = FullIdent(physician.params, aserver.public_key)
    windows = [MhiWindow.from_bytes(ibe.decrypt(role_key, ct))
               for ct in matches]
    physician.received_mhi.extend(windows)
    return MhiRetrieveResult(
        role_identity=role_identity,
        keyword=keyword,
        windows=windows,
        stats=ProtocolStats.capture("mhi-retrieve", network, mark,
                                    started_at))
