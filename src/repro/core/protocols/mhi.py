"""MHI storage and retrieval — paper §IV.E.2 (role-based, IBE + PEKS).

Storage (the P-device, in advance, offline-precomputable):

    P-device → S-server : TP_p, IBE_IDr(MHI) ‖ PEKS_σ(ID_r, kw), t12,
                          HMAC_ν(TP_p ‖ IBE_IDr ‖ PEKS_σ ‖ t12)

The role identity ID_r is a general descriptive string
``Date‖Duty‖ServiceArea`` — only the A-server can extract Γ_r, and it
does so only for an authenticated on-duty emergency caregiver.  Each
day's window is made searchable for the following 5 days.

Retrieval (after the physician has obtained Γ_r from the A-server):

    1. physician → S-server : ID_r, TD_r(kw), t13, HMAC_ρ(…)
    2. S-server → physician : IBE_IDr(MHI), t14, HMAC_ρ(…)

with ρ = ê(Γ_r, PK_S) = ê(PK_r, Γ_S) derived locally by both sides.
The role key travels sealed under ϖ (the physician's A-server session
key), so the role-key round is safe to carry over any transport.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.ec import Point
from repro.crypto.hashes import h1_identity
from repro.crypto.ibe import FullIdent, IbeCiphertext, IdentityKeyPair
from repro.crypto.modes import AuthenticatedCipher
from repro.crypto.nike import shared_key_from_points
from repro.crypto.peks import MultiKeywordPeks, RolePeks
from repro.ehr.mhi import MhiWindow
from repro.net.transport import as_transport
from repro.core import dispatch, wire
from repro.core.aserver import StateAServer
from repro.core.entities import PDevice, Physician
from repro.core.protocols.base import ProtocolStats
from repro.core.protocols.messages import (Envelope, open_envelope,
                                           pack_fields, seal, unpack_fields)
from repro.core.sserver import StorageServer
from repro.exceptions import AccessDenied


def role_identity_for(date: str, duty: str = "emergency",
                      service_area: str = "default") -> str:
    """The paper's ID_r = "Date ‖ Duty ‖ ServiceArea" convention."""
    return "role:%s|%s|%s" % (date, duty, service_area)


@dataclass(frozen=True)
class MhiStoreResult:
    role_identity: str
    ciphertext_bytes: int
    tag_bytes: int
    stats: ProtocolStats


@dataclass(frozen=True)
class MhiRetrieveResult:
    role_identity: str
    keyword: str
    windows: list[MhiWindow]
    stats: ProtocolStats


def mhi_store(pdevice: PDevice, server: StorageServer,
              aserver_public: Point, network,
              window: MhiWindow, role_identity: str) -> MhiStoreResult:
    """Encrypt one MHI window under ID_r, tag it, upload it."""
    transport = as_transport(network)
    dispatch.bind_sserver(transport, server)
    started_at = transport.now
    mark = transport.mark()
    package = pdevice.package
    if package is None:
        raise AccessDenied("P-device has no ASSIGN package (no pseudonym)")

    ibe = FullIdent(pdevice.params, aserver_public)
    ciphertext = ibe.encrypt(role_identity, window.to_bytes(), pdevice.rng)
    peks = MultiKeywordPeks(pdevice.params, aserver_public)
    # Searchable under the date keywords (the paper's 5-day horizon).
    tag = peks.tag(role_identity, list(window.searchable_days), pdevice.rng)

    role_b = role_identity.encode()
    ct_b = ciphertext.to_bytes()
    tag_b = tag.to_bytes()
    # HMAC_ν binds the role and digests of what actually travels; the
    # server endpoint recomputes both digests over the received bytes.
    payload = pack_fields(role_b, hashlib.sha256(ct_b).digest(),
                          hashlib.sha256(tag_b).digest())
    envelope = seal(package.nu, "mhi-store", payload, transport.now)
    frame = wire.make_frame(wire.OP_MHI_STORE,
                            package.pseudonym.public.to_bytes(),
                            envelope.to_bytes(), role_b, ct_b, tag_b)
    wire.parse_response(transport.notify(
        pdevice.address, server.address, frame, label="mhi/store"))
    return MhiStoreResult(
        role_identity=role_identity,
        ciphertext_bytes=ciphertext.size_bytes(),
        tag_bytes=tag.size_bytes(),
        stats=ProtocolStats.capture("mhi-store", transport, mark,
                                    started_at))


def mhi_retrieve(physician: Physician, aserver: StateAServer,
                 server: StorageServer, network,
                 role_identity: str, keyword: str) -> MhiRetrieveResult:
    """Obtain Γ_r, search the encrypted MHI, decrypt the matches.

    The physician must already hold an authenticated emergency session at
    the A-server (the passcode flow) — :meth:`StateAServer.extract_role_key`
    enforces it server-side before Γ_r leaves, sealed under ϖ.
    """
    transport = as_transport(network)
    dispatch.bind_sserver(transport, server)
    dispatch.bind_aserver(transport, aserver)
    started_at = transport.now
    mark = transport.mark()

    # Role-key issuance (rides on the authenticated session; one round).
    frame = wire.make_frame(wire.OP_ROLE_KEY,
                            physician.physician_id.encode(),
                            role_identity.encode())
    sealed = wire.parse_response(transport.request(
        physician.address, aserver.address, frame,
        label="mhi/role-key-request", reply_label="mhi/role-key"))
    omega = physician.session_key_with(aserver.identity_key.public)
    role_private = Point.from_bytes(AuthenticatedCipher(omega).decrypt(sealed),
                                    physician.params.curve)
    role_key = IdentityKeyPair(
        identity=role_identity,
        public=h1_identity(physician.params, role_identity),
        private=role_private)

    # Step 1: ID_r, TD_r(kw) under HMAC_ρ.
    trapdoor = RolePeks.trapdoor(role_key.private, physician.params, keyword)
    rho = shared_key_from_points(role_key.private,
                                 server.identity_key.public)
    request = seal(rho, "mhi-search",
                   role_identity.encode() + trapdoor.point.to_bytes(),
                   transport.now)
    frame = wire.make_frame(wire.OP_MHI_SEARCH, role_identity.encode(),
                            request.to_bytes(), trapdoor.to_bytes(),
                            aserver.public_key.to_bytes())
    response = transport.request(physician.address, server.address, frame,
                                 label="mhi/search",
                                 reply_label="mhi/results")

    # Step 2: IBE_IDr(MHI) under HMAC_ρ.
    reply = Envelope.from_bytes(wire.parse_response(response))
    payload = open_envelope(rho, reply, transport.now,
                            expected_label="mhi-results")
    matches = [IbeCiphertext.from_bytes(ct_b, physician.params.curve)
               for ct_b in unpack_fields(payload)]

    ibe = FullIdent(physician.params, aserver.public_key)
    windows = [MhiWindow.from_bytes(ibe.decrypt(role_key, ct))
               for ct in matches]
    physician.received_mhi.extend(windows)
    return MhiRetrieveResult(
        role_identity=role_identity,
        keyword=keyword,
        windows=windows,
        stats=ProtocolStats.capture("mhi-retrieve", transport, mark,
                                    started_at))
