"""HCPP entities: patient, family, P-device, physician (§III.A).

Each entity is a state holder — keys, indexes, records — while the
message flows live in :mod:`repro.core.protocols`.  The paper's definitions:

* **Patient** = a person plus computing facilities (home PC for storage,
  cell phone for retrieval).  Holds the SSE secret S = {a,b,c,d,1^γ}, the
  file key s, the keyword index KI, the dictionary, and the privilege
  manager; self-generates pseudonyms from the hospital's temporary pair.
* **Family** = a trusted person holding everything needed to search
  (the ASSIGN package) and capable of *subjective judgment* about
  physician access rights.
* **P-device** = a patient-owned device: ASSIGN package + the dictionary
  gate + emergency mode + the RD record log + the MHI encryption duty.
* **Physician** = a licensed healthcare provider with an IBC key pair
  from the state A-server; in emergencies authenticates as the on-duty
  caregiver.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.broadcast import ReceiverSecret
from repro.crypto.ec import Point
from repro.crypto.hmac_impl import constant_time_equal, hmac_sha256
from repro.crypto.ibe import IdentityKeyPair
from repro.crypto.ibs import IbsSignature, sign as ibs_sign
from repro.crypto.nike import shared_key_from_points
from repro.crypto.params import DomainParams
from repro.crypto.pseudonym import TemporaryKeyPair, self_generate
from repro.crypto.rng import HmacDrbg
from repro.ehr.dictionary import KeywordDictionary, canonicalize
from repro.ehr.keyindex import KeywordIndex
from repro.ehr.mhi import MhiWindow, VitalsGenerator
from repro.ehr.phi import PhiCollection
from repro.ehr.records import Category, PhiFile, make_phi_file
from repro.sse.index import SecureIndex, Trapdoor
from repro.sse.multiuser import (PrivilegeManager, WrappedTrapdoor,
                                 recover_d, wrap_trapdoor)
from repro.sse.scheme import Sse1Scheme, SseKeys, keygen
from repro.core.accountability import DeviceRecord
from repro.core.protocols.messages import ReplayGuard, pack_fields, ts_ms
from repro.exceptions import AccessDenied, ParameterError, SearchError

PRIVILEGE_CAPACITY = 8  # family members + devices per patient


@dataclass(frozen=True)
class AssignPackage:
    """The ASSIGN payload (paper §IV.C):

    E′_μ(TP_p ‖ ν ‖ a ‖ b ‖ c ‖ d ‖ SI ‖ KI ‖ dictionary ‖ s ‖ X)

    — serialized by :meth:`to_bytes` so the privilege-assignment protocol
    ships real bytes (and the experiments can weigh them).
    """

    pseudonym: TemporaryKeyPair       # TP_p (a per-entity derived pair)
    nu: bytes                         # ν: shared key with the S-server
    sse_keys: SseKeys                 # a, b, c, d(initial), s
    collection_id: bytes              # the handle standing in for "SI"
    keyword_index: KeywordIndex       # KI
    dictionary: KeywordDictionary
    be_secret: ReceiverSecret         # X
    be_capacity: int
    server_address: str

    def to_bytes(self, params: DomainParams) -> bytes:
        be_blob = pack_fields(
            self.be_secret.leaf.to_bytes(4, "big"),
            *self.be_secret.path_keys)
        return pack_fields(
            self.pseudonym.public.to_bytes(),
            self.pseudonym.private.to_bytes(),
            self.nu,
            self.sse_keys.to_bytes(),
            self.collection_id,
            self.keyword_index.to_bytes(),
            self.dictionary.to_bytes(),
            be_blob,
            self.be_capacity.to_bytes(4, "big"),
            self.server_address.encode(),
        )

    def size_bytes(self, params: DomainParams) -> int:
        return len(self.to_bytes(params))

    @classmethod
    def from_bytes(cls, data: bytes, params: DomainParams) -> "AssignPackage":
        """Parse the wire form (the receiving entity's side of ASSIGN)."""
        from repro.core.protocols.messages import unpack_fields
        fields = unpack_fields(data, expected=10)
        (pub, priv, nu, keys, collection_id, ki, dictionary, be_blob,
         capacity, server_address) = fields
        be_fields = unpack_fields(be_blob)
        be_secret = ReceiverSecret(
            leaf=int.from_bytes(be_fields[0], "big"),
            path_keys=tuple(be_fields[1:]))
        return cls(
            pseudonym=TemporaryKeyPair(
                public=Point.from_bytes(pub, params.curve),
                private=Point.from_bytes(priv, params.curve)),
            nu=nu,
            sse_keys=SseKeys.from_bytes(keys),
            collection_id=collection_id,
            keyword_index=KeywordIndex.from_bytes(ki),
            dictionary=KeywordDictionary.from_bytes(dictionary),
            be_secret=be_secret,
            be_capacity=int.from_bytes(capacity, "big"),
            server_address=server_address.decode(),
        )


class Patient:
    """The HCPP user: person + home PC + cell phone."""

    def __init__(self, name: str, params: DomainParams, pkg_public: Point,
                 temporary_pair: TemporaryKeyPair, rng: HmacDrbg) -> None:
        self.name = name
        self.address = "patient://" + name
        self.params = params
        self.pkg_public = pkg_public
        self.rng = rng
        self._base_pair = temporary_pair
        # System setup (§IV.A): SSE keygen on the home PC.
        self.sse_keys: SseKeys = keygen(rng)
        self.sse = Sse1Scheme(self.sse_keys)
        self.collection = PhiCollection()
        self.dictionary = KeywordDictionary()
        self.privileges = PrivilegeManager(PRIVILEGE_CAPACITY, rng)
        # Pre-shared keys μ, one per privileged entity (§IV.C).
        self._mu: dict[str, bytes] = {}
        # Collection handles per S-server address.
        self.collection_ids: dict[str, bytes] = {}
        # The pseudonym currently bound to each stored collection.
        self.upload_pseudonyms: dict[str, TemporaryKeyPair] = {}
        # Client-side freshness window over server replies (§IV.B applies
        # to both directions: a recorded reply must not be replayable).
        self.replay_guard = ReplayGuard()

    # -- pseudonyms -----------------------------------------------------------
    def fresh_pseudonym(self) -> TemporaryKeyPair:
        """Self-generate an unlinkable pair TP′ = ρTP, Γ′ = ρΓ (§IV.B)."""
        return self_generate(self._base_pair, self.params, self.rng)

    def session_key_with(self, server_public: Point,
                         pseudonym: TemporaryKeyPair) -> bytes:
        """ν = ê(Γ_p, PK_S), derived locally — no key exchange messages."""
        return shared_key_from_points(pseudonym.private, server_public)

    # -- PHI authoring ----------------------------------------------------
    def add_record(self, category: Category, keywords: list[str],
                   medical_content: str, server_address: str,
                   created_at: float = 0.0) -> PhiFile:
        """Author one PHI file (after a diagnosis/test, §IV.B)."""
        canonical = [self.dictionary.add(kw) for kw in keywords]
        phi_file = make_phi_file(
            rng=self.rng, category=category, keywords=canonical,
            medical_content=medical_content,
            patient_fields={"name": self.name}, created_at=created_at)
        self.collection.add(phi_file, server_address)
        return phi_file

    def import_collection(self, collection: PhiCollection) -> None:
        """Adopt a pre-generated workload (benchmarks)."""
        self.collection = collection
        for keyword in collection.index.keywords():
            self.dictionary.add(keyword)

    # -- upload preparation (§IV.B) -----------------------------------------
    def build_upload(self) -> tuple[SecureIndex, dict[bytes, bytes]]:
        """BuildIndex + encrypt the collection: SI and Λ = E′_s(F)."""
        index = self.sse.build_index(self.collection.keyword_map(), self.rng)
        files = self.sse.encrypt_collection(self.collection.plaintext_map(),
                                            self.rng)
        return index, files

    # -- privilege assignment (§IV.C) ----------------------------------------
    def preshared_key(self, entity_name: str) -> bytes:
        """μ: established out of band (at home) with each trusted entity."""
        key = self._mu.get(entity_name)
        if key is None:
            key = self.rng.random_bytes(32)
            self._mu[entity_name] = key
        return key

    def make_assign_package(self, entity_name: str,
                            server_address: str) -> AssignPackage:
        """Everything a privileged entity needs to search on my behalf."""
        collection_id = self.collection_ids.get(server_address)
        if collection_id is None:
            raise ParameterError("no collection stored at %r yet"
                                 % server_address)
        return AssignPackage(
            pseudonym=self.fresh_pseudonym(),
            nu=b"",  # filled by the protocol, which knows the server key
            sse_keys=self.sse_keys,
            collection_id=collection_id,
            keyword_index=self.collection.index,
            dictionary=self.dictionary,
            be_secret=self.privileges.assign(entity_name),
            be_capacity=self.privileges.capacity,
            server_address=server_address,
        )

    # -- retrieval helpers -----------------------------------------------------
    def trapdoor(self, keyword: str) -> Trapdoor:
        if keyword not in self.dictionary:
            raise SearchError("keyword not in my dictionary")
        return self.sse.trapdoor(canonicalize(keyword))

    def decrypt_results(self, blobs: list[bytes]) -> list[PhiFile]:
        """E′⁻¹_s on fid-prefixed ciphertexts returned by the S-server."""
        files = []
        for blob in blobs:
            plaintext = self.sse.decrypt_file(blob[16:])
            files.append(PhiFile.from_bytes(plaintext))
        return files


class _PrivilegedEntity:
    """Shared behaviour of family and P-device once ASSIGN has run."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.package: AssignPackage | None = None
        self._sse: Sse1Scheme | None = None

    def receive_assign(self, package: AssignPackage) -> None:
        self.package = package
        self._sse = Sse1Scheme(package.sse_keys)

    def _require_package(self) -> AssignPackage:
        if self.package is None:
            raise AccessDenied("%s has no ASSIGN package" % self.name)
        return self.package

    @property
    def sse(self) -> Sse1Scheme:
        self._require_package()
        assert self._sse is not None
        return self._sse

    def recover_group_secret(self, broadcast_blob) -> bytes:
        """Open BE_U(d) with my X — raises RevokedError if I'm cut off."""
        package = self._require_package()
        return recover_d(broadcast_blob, package.be_secret,
                         package.be_capacity)

    def wrapped_trapdoor(self, keyword: str, d: bytes) -> WrappedTrapdoor:
        """TD_U(kw) = θ_d(TD(kw)) (§IV.E.1)."""
        return wrap_trapdoor(d, self.sse.trapdoor(keyword))

    def decrypt_results(self, blobs: list[bytes]) -> list[PhiFile]:
        return [PhiFile.from_bytes(self.sse.decrypt_file(blob[16:]))
                for blob in blobs]


class Family(_PrivilegedEntity):
    """A trusted family member (emergency contact).

    Carries *subjective judgment*: :meth:`approves` models the human
    decision whether a requesting physician looks legitimate (§IV.E.1).
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.address = "family://" + name

    @staticmethod
    def approves(physician_id: str, on_duty: bool) -> bool:
        """The family's access-rights judgment: trust on-duty caregivers."""
        return on_duty


class PDevice(_PrivilegedEntity):
    """The patient's monitoring device (smartphone / wearable / IMD)."""

    def __init__(self, name: str, params: DomainParams,
                 rng: HmacDrbg) -> None:
        super().__init__(name)
        self.address = "pdevice://" + name
        self.params = params
        self.rng = rng
        self.emergency_mode = False
        self.records: list[DeviceRecord] = []
        self.vitals = VitalsGenerator(rng.fork("vitals"))
        self._expected_nounce: bytes | None = None
        self._alert_log: list[str] = []  # §VI.A countermeasure: cell alerts
        # Step-3 delivery state (who the pending passcode was issued for,
        # plus the A-server's RD signature evidence).
        self.expected_physician: str | None = None
        self.pending_t_issue: float | None = None
        self.pending_signature: IbsSignature | None = None
        #: Optional listener invoked as ``on_record(record)`` after an RD
        #: is appended — the durable layer journals it there (RDs are
        #: minted client-side, not by an incoming wire frame).
        self.on_record = None

    def enter_emergency_mode(self) -> None:
        """The paper's emergency button."""
        self.emergency_mode = True

    def exit_emergency_mode(self) -> None:
        self.emergency_mode = False
        self._expected_nounce = None
        self.expected_physician = None
        self.pending_t_issue = None
        self.pending_signature = None

    def expect_nounce(self, nounce: bytes) -> None:
        self._expected_nounce = nounce

    def receive_passcode(self, physician_id: str, nounce: bytes,
                         t_issue: float, signature: IbsSignature) -> None:
        """Step 3 lands (§IV.E.2): the decrypted IBE passcode delivery.

        The device remembers which physician the passcode was issued for;
        the signature becomes the RD evidence once the transaction runs.
        """
        self.expected_physician = physician_id
        self._expected_nounce = nounce
        self.pending_t_issue = t_issue
        self.pending_signature = signature

    def check_passcode(self, entered: bytes) -> bool:
        """Constant-size comparison of the physician-entered passcode."""
        if self._expected_nounce is None:
            return False
        return constant_time_equal(hmac_sha256(b"pc", entered),
                                   hmac_sha256(b"pc",
                                               self._expected_nounce))

    def validate_keywords(self, keywords: list[str]) -> list[str]:
        """The dictionary gate before any emergency search (§IV.E.2)."""
        package = self._require_package()
        return package.dictionary.validate(keywords)

    def record_transaction(self, record: DeviceRecord) -> None:
        """Store the RD and fire the §VI.A alert to the patient's phone."""
        self.records.append(record)
        self._alert_log.append(
            "PHI-retrieval secrets accessed by %s at t=%.1f"
            % (record.physician_id, record.t_issue))
        if self.on_record is not None:
            self.on_record(record)

    @property
    def alerts(self) -> list[str]:
        return list(self._alert_log)

    # -- durable state ------------------------------------------------------
    def export_state(self) -> bytes:
        """Serialize the device's evidence + session state for a snapshot:
        the ASSIGN package (which carries the REVOKE group secret X and
        the current SSE keys), the RD log, emergency-mode/passcode state,
        and the alert log."""
        package = (self.package.to_bytes(self.params)
                   if self.package is not None else b"")
        records = [rd.to_bytes() for rd in self.records]
        pending = pack_fields(
            (self.expected_physician or "").encode(),
            self._expected_nounce or b"",
            b"" if self.pending_t_issue is None
            else ts_ms(self.pending_t_issue).to_bytes(8, "big"),
            b"" if self.pending_signature is None
            else self.pending_signature.to_bytes())
        return pack_fields(
            package,
            b"\x01" if self.emergency_mode else b"\x00",
            pack_fields(*records),
            pending,
            pack_fields(*[a.encode() for a in self._alert_log]))

    def load_state(self, blob: bytes) -> None:
        """Inverse of :meth:`export_state` — restore from a snapshot."""
        from repro.core.protocols.messages import unpack_fields
        package_b, emergency, records_b, pending_b, alerts_b = \
            unpack_fields(blob, expected=5)
        if package_b:
            self.receive_assign(AssignPackage.from_bytes(package_b,
                                                         self.params))
        self.emergency_mode = emergency == b"\x01"
        curve = self.params.curve
        self.records = [DeviceRecord.from_bytes(rd, curve)
                        for rd in unpack_fields(records_b)]
        physician, nounce, t_issue, signature = \
            unpack_fields(pending_b, expected=4)
        self.expected_physician = physician.decode() or None
        self._expected_nounce = nounce or None
        self.pending_t_issue = (int.from_bytes(t_issue, "big") / 1000.0
                                if t_issue else None)
        self.pending_signature = (IbsSignature.from_bytes(signature, curve)
                                  if signature else None)
        self._alert_log = [a.decode() for a in unpack_fields(alerts_b)]


class Physician:
    """A healthcare provider (person + workstation)."""

    def __init__(self, physician_id: str, hospital: str,
                 identity_key: IdentityKeyPair, params: DomainParams,
                 rng: HmacDrbg) -> None:
        self.physician_id = physician_id
        self.hospital = hospital
        self.identity_key = identity_key
        self.params = params
        self.rng = rng
        self.address = "physician://" + physician_id
        self.received_phi: list[PhiFile] = []
        self.received_mhi: list[MhiWindow] = []

    def sign_passcode_request(self, request: bytes,
                              t_request: float) -> IbsSignature:
        """Step 1 of §IV.E.2: IBS_Γi(ID_i ‖ m′ ‖ t10)."""
        message = pack_fields(self.physician_id.encode(), request,
                              ts_ms(t_request).to_bytes(8, "big"))
        return ibs_sign(self.params, self.identity_key, message, self.rng)

    def session_key_with(self, other_public: Point) -> bytes:
        """ϖ (or ρ) via SOK with my own private key."""
        return shared_key_from_points(self.identity_key.private, other_public)
