"""Federation router: one wire surface over N S-server shards.

The :class:`RouterEndpoint` is bound at the *logical* S-server address
(``sserver://hospital``) and speaks the exact opcoded wire protocol of
:class:`repro.core.dispatch.SServerEndpoint` — clients and protocol
flows cannot tell a router from a single server.  Behind it, every
frame is routed by the stable key its opcode carries:

====================  ==================================================
opcode                routing key
====================  ==================================================
OP_STORE              collection id re-derived from the envelope tag
                      (:func:`repro.core.shard.collection_id_for_tag`)
OP_SEARCH,            the collection id field (minted at store time, so
OP_GET_BROADCAST,     it lands on the shard that accepted the upload)
OP_SEARCH_WRAPPED,
OP_GROUP_UPDATE,
OP_XD_SEARCH
OP_MHI_STORE,         the role-identity bytes (every MHI op for a role
OP_MHI_SEARCH         meets the role's stored windows on one shard)
OP_XD_HANDSHAKE       scattered to *all* shards (session establishment
                      is deterministic and idempotent, so any shard can
                      later serve the session's searches)
OP_SEARCH_BATCH       per entry, by each entry's collection id
OP_SEARCH_MULTI       per collection id; cross-shard sets scatter
====================  ==================================================

**Byte parity.**  Co-located shards (``transport.endpoint_at`` finds
them) are dispatched *directly* — no extra frame records, no simulated
clock ticks — so every response the router returns is byte-identical
to a single S-server holding all the data.  Scatter-gather merges are
deterministic: results concatenate in the caller's collection order
(OP_SEARCH_MULTI) or splice back by entry index (OP_SEARCH_BATCH),
never in shard or completion order.

**Internal-leg authentication.**  The router→shard legs of a
cross-shard OP_SEARCH_MULTI (OP_SEARCH_SHARD / OP_SEARCH_MERGE) are
*not* client opcodes: each carries a trailing HMAC over opcode ‖
operands under the federation-internal key
(:func:`repro.core.wire.seal_internal_frame`), and shards reject the
opcodes outright unless the tag verifies — the guard-free raw-chunk
path and the chunk-splicing merge are unreachable for clients and
network attackers.  The router itself never routes those opcodes (they
are absent from its table), so they cannot arrive through the public
logical address either.

**Retry semantics.**  A crashed/torn shard raises
:class:`~repro.exceptions.TransientTransportError`; the router lets it
propagate (a serialized transient error from a remote shard is
re-raised the same way), so the client's standard
:class:`~repro.net.transport.faults.RetryPolicy` fires exactly as it
would against a single durable server.  For a scattered
OP_SEARCH_MULTI the guard-free shard legs run *first* and the single
guarded merge leg runs *last*: a transient failure anywhere leaves the
replay window unconsumed, so the client's retry replays cleanly.

This module sits below dispatch: it imports only the wire codecs, the
shard ring, and the exception hierarchy (enforced by the hcpplint
layering contract) — never entities, protocols, or the net backends.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import (FIRST_COMPLETED, ThreadPoolExecutor,
                                TimeoutError as _FutureTimeout, wait)

import repro.core.wire as wire
from repro.core.health import HealthTable
from repro.core.shard import DEFAULT_VNODES, HashRing
from repro.core.shard import collection_id_for_tag
from repro.exceptions import (AuthenticationError, ParameterError,
                              ReplayError, ReproError,
                              TransientTransportError, TransportError)

__all__ = ["RouterEndpoint"]


def _envelope_tag(env_b: bytes) -> bytes:
    """The HMAC tag field of a serialized Envelope.

    Envelopes serialize as ``pack_fields(label, payload, ts8, tag)``
    (:mod:`repro.core.protocols.messages`); the router peeks the tag to
    derive the collection id an OP_STORE will mint — without importing
    the protocol layer or verifying anything (the owning shard does the
    cryptographic checks).
    """
    fields = wire.unpack_fields(env_b, expected=4)
    return fields[3]


class RouterEndpoint:
    """A stateless scatter-gather front for a set of S-server shards.

    Not an :class:`~repro.core.dispatch.Endpoint` subclass: the router
    owns no entity, no replay guard, and no durable state — it is pure
    routing.  It still honours the endpoint wire contract
    (``attach``/``now``/``handle_frame``/``guards``) so ``bind`` and the
    server loops of every backend treat it like any other endpoint.
    """

    def __init__(self, address: str, shard_addresses: "list[str]",
                 vnodes: int = DEFAULT_VNODES,
                 federation_key: "bytes | None" = None,
                 allow_partial: bool = True, health_seed: int = 0,
                 failure_threshold: int = 3,
                 reset_timeout_s: float = 1.0) -> None:
        if not shard_addresses:
            raise ParameterError("a router needs at least one shard")
        self.address = address
        self.shard_addresses = tuple(shard_addresses)
        self.ring = HashRing(self.shard_addresses, vnodes=vnodes)
        # Authenticates the internal OP_SEARCH_SHARD/OP_SEARCH_MERGE
        # legs (wire.seal_internal_frame); shards reject those opcodes
        # from anyone who cannot produce the tag, so a router without
        # the key cannot scatter a cross-shard OP_SEARCH_MULTI.
        self._federation_key = federation_key
        # Degraded-mode scatter-gather: when True a scattered read that
        # loses a shard (open breaker, or retries exhausted) degrades
        # to a PARTIAL reply over the shards that answered instead of
        # failing outright.  Healthy replies are byte-identical either
        # way.  Single-key ops and the write path never degrade: a dead
        # owner keeps surfacing TransientTransportError.
        self.allow_partial = allow_partial
        # Per-shard breakers on the *transport* clock (deterministic
        # under simulated time) plus the latency window the hedging
        # budget derives from.
        self.health = HealthTable(
            self.shard_addresses, clock=lambda: self.now,
            seed=health_seed, failure_threshold=failure_threshold,
            reset_timeout_s=reset_timeout_s)
        self._transport = None
        self._hibc_node = None
        self._root_public = None
        # One bounded scatter pool per router, created on first
        # concurrent scatter (serial transports never pay for it) and
        # reused across frames — not per frame, which would put thread
        # spawn/teardown on the hot path of every scattered request.
        self._scatter_pool = None
        self._scatter_pool_lock = threading.Lock()
        self._routes = {
            wire.OP_STORE: self._route_store,
            wire.OP_SEARCH: self._route_by_cid,
            wire.OP_GET_BROADCAST: self._route_by_cid,
            wire.OP_SEARCH_WRAPPED: self._route_by_cid,
            wire.OP_GROUP_UPDATE: self._route_by_cid,
            wire.OP_MHI_STORE: self._route_mhi_store,
            wire.OP_MHI_SEARCH: self._route_mhi_search,
            wire.OP_XD_HANDSHAKE: self._route_xd_handshake,
            wire.OP_XD_SEARCH: self._route_xd_search,
            wire.OP_SEARCH_BATCH: self._route_search_batch,
            wire.OP_SEARCH_MULTI: self._route_search_multi,
        }

    # -- endpoint wire contract ----------------------------------------------
    def attach(self, transport) -> None:
        self._transport = transport

    @property
    def now(self) -> float:
        if self._transport is None:
            raise TransportError("router is not attached to a transport")
        return self._transport.now

    def guards(self) -> list:
        return []  # stateless: nothing to persist across a crash

    # bind_sserver assigns an HIBC credential on an already-bound
    # endpoint (the cross-domain flow); a router propagates it to every
    # shard it can reach locally, so whichever shard serves the
    # scattered OP_XD_HANDSHAKE holds the credential.
    @property
    def hibc_node(self):
        return self._hibc_node

    @hibc_node.setter
    def hibc_node(self, value) -> None:
        self._hibc_node = value
        for endpoint in self._local_endpoints():
            endpoint.hibc_node = value

    @property
    def root_public(self):
        return self._root_public

    @root_public.setter
    def root_public(self, value) -> None:
        self._root_public = value
        for endpoint in self._local_endpoints():
            endpoint.root_public = value

    def _local_endpoints(self) -> list:
        if self._transport is None:
            return []
        endpoints = []
        for address in self.shard_addresses:
            endpoint = self._transport.endpoint_at(address)
            if endpoint is not None:
                endpoints.append(endpoint)
        return endpoints

    # -- frame handling ------------------------------------------------------
    def handle_frame(self, frame: bytes) -> bytes:
        try:
            opcode, fields = wire.parse_frame(frame)
            route = self._routes.get(opcode)
            if route is None:
                raise TransportError("unknown opcode %r" % opcode)
            return route(fields, frame)
        except TransientTransportError:
            # A down/torn shard must surface as a transport refusal so
            # the client's retry policy fires — never as a terminal
            # error response (mirrors DurableEndpoint).
            raise
        except ReproError as exc:
            return wire.error_response(exc)
        except Exception as exc:  # defensive: never kill a server thread
            return wire.error_response(exc)

    # -- the forwarding primitive --------------------------------------------
    def _forward(self, shard: str, frame: bytes,
                 label: str = "router/forward") -> bytes:
        """Deliver one frame to one shard and return its raw response.

        A co-located shard is dispatched directly — no frame records,
        no clock ticks, so the response bytes (seal timestamps
        included) are exactly a single server's.  A remote shard goes
        through ``transport.request``, inheriting the transport's retry
        policy; a serialized transient refusal is re-raised so the
        *client's* retry fires too.
        """
        breaker = self.health.breaker(shard)
        start = time.monotonic()
        try:
            endpoint = self._transport.endpoint_at(shard)
            if endpoint is not None:
                response = endpoint.handle_frame(frame)
            else:
                response = self._transport.request(self.address, shard,
                                                   frame, label)
            message = wire.transient_error_in(response)
            if message is not None:
                raise TransientTransportError(message)
        except TransientTransportError:
            # Consecutive transient failures trip the shard's breaker;
            # a terminal error response is a healthy answer and does
            # not count.  The error still propagates — single-key ops
            # (writes included) always surface the refusal so the
            # client's retry policy fires.
            breaker.record_failure()
            raise
        breaker.record_success()
        self.health.observe_latency(time.monotonic() - start)
        return response

    def _executor(self) -> ThreadPoolExecutor:
        pool = self._scatter_pool
        if pool is None:
            with self._scatter_pool_lock:
                pool = self._scatter_pool
                if pool is None:
                    # Twice the shard count: hedged legs need workers
                    # while their stalled primaries still occupy one.
                    pool = ThreadPoolExecutor(
                        max_workers=min(2 * len(self.shard_addresses), 16),
                        thread_name_prefix="hcpp-router")
                    self._scatter_pool = pool
        return pool

    def update_ring(self, shard_addresses: "list[str]") -> None:
        """Atomically swap the shard set (a federation rebalance commit).

        Safe against in-flight frames: the rebalance protocol keeps a
        moving collection on *both* its old and new owner between the
        copy and release phases, so a frame routed under either ring
        during the swap still lands on a shard that serves it.
        """
        addresses = tuple(shard_addresses)
        if not addresses:
            raise ParameterError("a router needs at least one shard")
        ring = HashRing(addresses, vnodes=self.ring.vnodes)
        self.ring = ring
        self.shard_addresses = addresses
        for address in addresses:
            self.health.breaker(address)  # pre-create: known from day one
        with self._scatter_pool_lock:
            pool, self._scatter_pool = self._scatter_pool, None
        if pool is not None:
            # In-flight scatters hold their own reference and drain
            # normally; new scatters get a pool sized for the new ring.
            pool.shutdown(wait=False)

    def _scatter(self, targets: "list[tuple[str, bytes]]", label: str,
                 hedge: bool = False,
                 tolerant: bool = False) -> "list[bytes | None]":
        """Forward one frame per (shard, frame) pair; responses by index.

        Pipelined (the router's persistent scatter pool) when the
        transport multiplexes concurrent requests
        (``CONCURRENT_REQUESTS``, the async backend); serial in target
        order otherwise.  Either way the gathered list is indexed like
        ``targets`` — deterministic merge order never depends on
        completion order.

        ``tolerant`` turns a leg's transient failure into ``None`` at
        its index (degraded-mode callers account the loss); otherwise
        the failure propagates.  ``hedge`` (concurrent transports only)
        re-sends a leg to the same shard once it has been pending
        longer than the p99-derived budget and takes whichever copy
        answers first — only ever requested for the idempotent,
        guard-free OP_SEARCH_SHARD legs, where a duplicate delivery is
        harmless by construction.
        """
        if len(targets) > 1 and getattr(self._transport,
                                        "CONCURRENT_REQUESTS", False):
            pool = self._executor()
            futures = [pool.submit(self._forward, shard, frame, label)
                       for shard, frame in targets]
            budget = self.health.hedge_budget_s() if hedge else None
            responses: "list[bytes | None]" = []
            for (shard, frame), future in zip(targets, futures):
                try:
                    if budget is None:
                        responses.append(future.result())
                        continue
                    try:
                        responses.append(future.result(timeout=budget))
                    except _FutureTimeout:
                        self.health.hedges_sent += 1
                        backup = pool.submit(self._forward, shard, frame,
                                             label)
                        responses.append(self._first_result(future, backup))
                except TransientTransportError:
                    if not tolerant:
                        raise
                    responses.append(None)
            return responses
        responses = []
        for shard, frame in targets:
            try:
                responses.append(self._forward(shard, frame, label))
            except TransientTransportError:
                if not tolerant:
                    raise
                responses.append(None)
        return responses

    def _first_result(self, primary, backup) -> bytes:
        """The first *successful* of a hedged pair; prefer the primary's
        error only once both have failed."""
        pending = {primary, backup}
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                if future.exception() is None:
                    if future is backup:
                        self.health.hedges_won += 1
                    return future.result()
        return primary.result()  # both failed: re-raise the primary's error

    # -- per-opcode routing --------------------------------------------------
    def _route_store(self, fields: "list[bytes]", frame: bytes) -> bytes:
        self._expect(fields, 6)
        # The store frame carries no collection id (the server mints it
        # from the envelope tag on accept); re-derive it here so the
        # accepting shard is the shard every later search routes to.
        cid = collection_id_for_tag(_envelope_tag(fields[1]))
        return self._forward(self.ring.owner_str(cid), frame)

    def _route_by_cid(self, fields: "list[bytes]", frame: bytes) -> bytes:
        if len(fields) < 2:
            raise ParameterError("frame carries no collection id to route")
        return self._forward(self.ring.owner_str(fields[1]), frame)

    def _route_mhi_store(self, fields: "list[bytes]", frame: bytes) -> bytes:
        self._expect(fields, 5)
        return self._forward(self.ring.owner_str(fields[2]), frame)

    def _route_mhi_search(self, fields: "list[bytes]",
                          frame: bytes) -> bytes:
        if not fields:
            raise ParameterError("frame carries no role identity to route")
        return self._forward(self.ring.owner_str(fields[0]), frame)

    def _route_xd_search(self, fields: "list[bytes]", frame: bytes) -> bytes:
        self._expect(fields, 3)
        return self._forward(self.ring.owner_str(fields[1]), frame)

    def _route_xd_handshake(self, fields: "list[bytes]",
                            frame: bytes) -> bytes:
        """Scatter the handshake so every shard holds the session key.

        ``accept_session`` is a deterministic decryption + verification
        and storing the key is idempotent, so establishing the session
        on all shards is safe — and necessary, because the later
        OP_XD_SEARCH routes by collection id and must find the session
        on whichever shard owns the collection.  All responses are
        byte-identical (empty OK) on success; the first failure's
        response is returned as-is for error parity.

        This route stays *strict* even in degraded mode: a handshake
        that skipped an open-breaker shard would strand every later
        OP_XD_SEARCH whose collection that shard owns with an
        unknown-session AuthenticationError — a silent correctness
        failure, unlike a visibly PARTIAL search.  Better to fail the
        handshake loudly and let the client retry once the shard heals.
        """
        self._expect(fields, 3)
        responses = self._scatter(
            [(shard, frame) for shard in self.shard_addresses],
            "router/handshake")
        for response in responses:
            if response[:1] != b"\x00":
                return response
        return responses[0]

    def _route_search_batch(self, fields: "list[bytes]",
                            frame: bytes) -> bytes:
        """Scatter batch entries to their owning shards; splice by index.

        Each entry routes independently by its collection id.  The
        per-entry response framing (every entry a full status-framed
        response, see ``SServerEndpoint._op_search_batch``) makes the
        splice exact: entry k's bytes depend only on entry k, so
        reassembling sub-batch replies in original entry order is
        byte-identical to one server serving the whole batch.
        """
        if len(self.shard_addresses) == 1:
            return self._forward(self.shard_addresses[0], frame,
                                 "router/scatter")
        by_shard: dict[str, list[int]] = {}
        seen_tags: set[bytes] = set()
        for i, entry in enumerate(fields):
            entry_fields = wire.unpack_fields(entry, expected=3)
            # Cross-shard replay defence: two entries carrying the same
            # envelope tag would scatter to *different* shards and each
            # pass its shard's local replay guard — reject the batch
            # before any leg runs (a single server would reject the
            # duplicate entry through its guard; the router has no
            # guard, so it refuses the whole frame instead).
            tag = _envelope_tag(entry_fields[2])
            if tag in seen_tags:
                raise ReplayError(
                    "duplicate envelope tag within one batch (entry %d)"
                    % i)
            seen_tags.add(tag)
            shard = self.ring.owner_str(entry_fields[1])
            by_shard.setdefault(shard, []).append(i)
        # Deterministic scatter order: shards sorted by address.
        targets, index_map = [], []
        for shard in sorted(by_shard):
            indexes = by_shard[shard]
            targets.append((shard, wire.make_frame(
                wire.OP_SEARCH_BATCH, *[fields[i] for i in indexes])))
            index_map.append(indexes)
        if not self.allow_partial:
            responses = self._scatter(targets, "router/scatter")
            unavailable: list[str] = []
        else:
            responses, unavailable = self._scatter_degraded(
                targets, "router/scatter")
        entries: list = [None] * len(fields)
        for (shard, _), indexes, response in zip(targets, index_map,
                                                 responses):
            if response is None:
                refusal = wire.error_response(TransientTransportError(
                    "shard %s unavailable" % shard))
                for i in indexes:
                    entries[i] = refusal
                continue
            sub_entries = wire.unpack_fields(wire.parse_response(response))
            if len(sub_entries) != len(indexes):
                raise TransportError(
                    "shard answered %d batch entries, expected %d"
                    % (len(sub_entries), len(indexes)))
            for i, entry in zip(indexes, sub_entries):
                entries[i] = entry
        payload = wire.pack_fields(*entries)
        if unavailable:
            return wire.partial_response(
                payload, [shard.encode() for shard in unavailable])
        return wire.ok_response(payload)

    def _scatter_degraded(self, targets: "list[tuple[str, bytes]]",
                          label: str, hedge: bool = False):
        """Health-gated tolerant scatter: (responses, unavailable shards).

        Legs whose breaker is open are routed *around* (never attempted
        — the open→half-open clock, not traffic, decides when the shard
        is next probed); attempted legs that fail transiently come back
        as ``None``.  Raises :class:`TransientTransportError` when every
        leg is lost — an all-shards-down scatter is a failure, not an
        empty partial result.
        """
        allowed = [self.health.breaker(shard).allow()
                   for shard, _ in targets]
        live = [target for target, ok in zip(targets, allowed) if ok]
        live_responses = iter(self._scatter(live, label, hedge=hedge,
                                            tolerant=True))
        responses: "list[bytes | None]" = [
            next(live_responses) if ok else None for ok in allowed]
        unavailable = [shard for (shard, _), response in zip(targets,
                                                             responses)
                       if response is None]
        if targets and len(unavailable) == len(targets):
            raise TransientTransportError(
                "all %d scattered shards unavailable" % len(targets))
        return responses, unavailable

    def _route_search_multi(self, fields: "list[bytes]",
                            frame: bytes) -> bytes:
        """One trapdoor set over many collections, across shards.

        Single-shard sets forward verbatim.  A cross-shard set runs the
        guard-free OP_SEARCH_SHARD leg on every *foreign* shard first,
        then the single guarded OP_SEARCH_MERGE on the shard owning the
        first collection id — which splices every chunk back in the
        caller's collection order and seals the one combined reply.
        Merge-last ordering is the retry-safety contract: no replay
        window is consumed until every foreign leg has succeeded.
        """
        pseud_b, cids_b, env_b = self._expect(fields, 3)
        cids = wire.unpack_fields(cids_b)
        owners = [self.ring.owner_str(cid) for cid in cids]
        merge_shard = owners[0] if owners else self.shard_addresses[0]
        if all(owner == merge_shard for owner in owners):
            return self._forward(merge_shard, frame, "router/scatter")
        if self._federation_key is None:
            raise AuthenticationError(
                "router holds no federation key; cannot scatter a "
                "cross-shard search over authenticated internal legs")
        # Health gate (degraded mode): collections owned by an
        # open-breaker shard are dropped up front; their owners go on
        # the PARTIAL list.  The merge shard becomes the first cid's
        # *available* owner — any shard can do the guarded open, so a
        # dead owners[0] does not take the whole request down.
        allowed: dict[str, bool] = {}
        for owner in owners:
            if owner not in allowed:
                allowed[owner] = (not self.allow_partial
                                  or self.health.breaker(owner).allow())
        if not any(allowed[owner] for owner in owners):
            raise TransientTransportError(
                "all %d owning shards unavailable" % len(set(owners)))
        unavailable = sorted({owner for owner in owners
                              if not allowed[owner]})
        live = [(cid, owner) for cid, owner in zip(cids, owners)
                if allowed[owner]]
        merge_shard = live[0][1]
        foreign: dict[str, list[bytes]] = {}
        for cid, owner in live:
            if owner != merge_shard:
                foreign.setdefault(owner, []).append(cid)
        targets = [(shard, wire.seal_internal_frame(
                        self._federation_key, wire.OP_SEARCH_SHARD, pseud_b,
                        wire.pack_fields(*shard_cids), env_b))
                   for shard, shard_cids in sorted(foreign.items())]
        # Guard-free idempotent legs: safe to hedge on a concurrent
        # transport once the latency window can price a p99 budget.
        responses = self._scatter(targets, "router/scatter", hedge=True,
                                  tolerant=self.allow_partial)
        failed: set[str] = set()
        chunk_entries = []
        for (shard, _), response in zip(targets, responses):
            if response is None:
                failed.add(shard)
                continue
            shard_cids = foreign[shard]
            chunks = wire.unpack_fields(wire.parse_response(response))
            if len(chunks) != len(shard_cids):
                raise TransportError(
                    "shard answered %d collection chunks, expected %d"
                    % (len(chunks), len(shard_cids)))
            chunk_entries.extend(
                wire.pack_fields(cid, chunk)
                for cid, chunk in zip(shard_cids, chunks))
        if failed:
            unavailable = sorted(set(unavailable) | failed)
            live = [(cid, owner) for cid, owner in live
                    if owner not in failed]
        if unavailable:
            # The sealed merge reply covers exactly the surviving cid
            # subset, in the caller's original order; the PARTIAL
            # wrapper names what is missing.
            cids_b = wire.pack_fields(*[cid for cid, _ in live])
        merge_frame = wire.seal_internal_frame(
            self._federation_key, wire.OP_SEARCH_MERGE, pseud_b, cids_b,
            env_b, wire.pack_fields(*chunk_entries))
        # The merge is the single guarded leg and always runs last; its
        # transient failure propagates even in degraded mode (the replay
        # window is still unconsumed, so the client's retry is clean).
        response = self._forward(merge_shard, merge_frame, "router/merge")
        if unavailable:
            return wire.partial_response(
                wire.parse_response(response),
                [shard.encode() for shard in unavailable])
        return response

    @staticmethod
    def _expect(fields: "list[bytes]", count: int) -> "list[bytes]":
        if len(fields) != count:
            raise ParameterError("expected %d frame fields, got %d"
                                 % (count, len(fields)))
        return fields
