"""A-servers: the trusted government authentication infrastructure (§III.A).

* :class:`StateAServer` — one per state; runs the IBC domain (PKG),
  assigns physician / S-server key pairs and the hospitals' pools of
  temporary (pseudonym-seed) pairs, maintains the published "today's
  on-duty physicians" roster, authenticates emergency caregivers, issues
  one-time passcodes to P-devices, extracts MHI role keys, and keeps the
  TR accountability traces.
* :class:`FederalAServer` — the root PKG of the HIBC tree; creates state
  A-servers as level-2 children and hospitals at level 3, enabling
  cross-domain availability (§V.A).

The A-server *never* holds patient SSE keys — this is exactly the
difference from the Lee–Lee escrow baseline the paper critiques.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ec import Point
from repro.crypto.hibc import HibcNode, HibcRoot
from repro.crypto.ibe import (IbeCiphertext, IdentityKeyPair,
                              PrivateKeyGenerator, encrypt_to_point)
from repro.crypto.ibs import IbsSignature, sign as ibs_sign
from repro.crypto.ibs import verify as ibs_verify
from repro.crypto.modes import AuthenticatedCipher
from repro.crypto.nike import shared_key_from_points
from repro.crypto.params import DomainParams
from repro.crypto.pseudonym import TemporaryKeyPair, issue_temporary_pair
from repro.crypto.rng import HmacDrbg
from repro.core.accountability import TraceRecord, rd_message
from repro.core.auditlog import AuditLog
from repro.core.protocols.messages import pack_fields, ts_ms, unpack_fields
from repro.exceptions import (AccessDenied, AuthenticationError,
                              ParameterError)

NOUNCE_BYTES = 16  # the paper spells it "nounce"; we keep its name


@dataclass(frozen=True)
class PasscodeIssue:
    """The A-server's paired responses (steps 2 and 3 of §IV.E.2).

    ``to_physician``: E′_ϖ(nounce) with the A-server's IBS.
    ``to_pdevice``:  IBE_TPp(ID_i ‖ nounce ‖ t11) with the A-server's IBS.
    """

    physician_id: str
    encrypted_for_physician: bytes
    physician_signature: IbsSignature
    pdevice_ciphertext: IbeCiphertext
    pdevice_signature: IbsSignature
    t_issue: float

    def size_to_physician(self) -> int:
        return (len(self.encrypted_for_physician)
                + self.physician_signature.size_bytes())

    def size_to_pdevice(self) -> int:
        return (self.pdevice_ciphertext.size_bytes()
                + self.pdevice_signature.size_bytes())


class StateAServer:
    """One state's trusted authentication server."""

    def __init__(self, name: str, params: DomainParams, rng: HmacDrbg,
                 hibc_node: HibcNode | None = None) -> None:
        self.name = name
        self.address = "aserver://" + name
        self.params = params
        self._rng = rng
        self._pkg = PrivateKeyGenerator(params, rng)
        self.identity_key = self._pkg.extract("aserver:" + name)
        self.hibc_node = hibc_node
        # hospital -> set of physician ids currently signed in (the
        # published "today's on-duty physicians" lists, §IV.E.2).
        self._duty_roster: dict[str, set[str]] = {}
        # Registered P-devices: pseudonym bytes -> public point.
        self._pdevices: dict[bytes, Point] = {}
        self.traces: list[TraceRecord] = []
        # Tamper-evident commitment over the traces (accountability, §V.A).
        self.audit_log = AuditLog()
        # Issued nounces awaiting use: physician_id -> nounce.
        self._outstanding: dict[str, bytes] = {}
        # Optional listener ``(hospital, physician_id, signed_in)`` fired
        # on every roster change — the durable layer journals these so a
        # from-disk recovery can re-check replayed auths against the
        # roster that was in force when they were committed.
        self.on_roster_change = None

    # -- domain management (system setup, §IV.A) --------------------------------
    @property
    def public_key(self) -> Point:
        """P_pub = s0·P, the domain public key."""
        return self._pkg.public_key

    def enroll(self, identity: str) -> IdentityKeyPair:
        """Assign PK_i/Γ_i to a physician or S-server in this domain."""
        return self._pkg.extract(identity)

    def issue_temporary_pool(self, count: int) -> list[TemporaryKeyPair]:
        """The pool of temporary key pairs handed to hospitals for
        patients' pseudonym self-generation (§IV.A)."""
        return [issue_temporary_pair(self.params, self._pkg.master_secret,
                                     self._rng) for _ in range(count)]

    # -- duty roster --------------------------------------------------------
    def sign_in(self, hospital: str, physician_id: str) -> None:
        self._duty_roster.setdefault(hospital, set()).add(physician_id)
        if self.on_roster_change is not None:
            self.on_roster_change(hospital, physician_id, True)

    def sign_out(self, hospital: str, physician_id: str) -> None:
        self._duty_roster.get(hospital, set()).discard(physician_id)
        if self.on_roster_change is not None:
            self.on_roster_change(hospital, physician_id, False)

    def is_on_duty(self, physician_id: str) -> bool:
        return any(physician_id in ids for ids in self._duty_roster.values())

    def duty_roster(self, hospital: str) -> frozenset[str]:
        """The published on-duty list (public, checkable by anyone)."""
        return frozenset(self._duty_roster.get(hospital, set()))

    # -- P-device registration (emergency mode) ---------------------------------
    def register_pdevice(self, pseudonym: Point) -> None:
        """A P-device entering emergency mode connects and registers TP_p."""
        self._pdevices[pseudonym.to_bytes()] = pseudonym

    # -- emergency authentication (§IV.E.2 steps 1–3) ---------------------------
    def authenticate_emergency(self, physician_id: str, request: bytes,
                               t_request: float,
                               signature: IbsSignature,
                               pdevice_pseudonym: Point,
                               now: float) -> PasscodeIssue:
        """Verify the physician's signed request; issue the one-time passcode.

        Checks, in order: the IBS on (ID_i ‖ m′ ‖ t10); the on-duty roster;
        P-device registration.  On success, generates the nounce, prepares
        both responses, and records the TR.
        """
        # Quantize to the millisecond wire resolution: every signed/stored
        # artifact then derives from the exact double a remote decoder
        # reconstructs, so signatures survive serialization.
        t_request = ts_ms(t_request) / 1000.0
        now = ts_ms(now) / 1000.0
        message = pack_fields(physician_id.encode(), request,
                              ts_ms(t_request).to_bytes(8, "big"))
        if not ibs_verify(self.params, self.public_key, physician_id,
                          message, signature):
            raise AuthenticationError(
                "physician %r: bad signature on passcode request"
                % physician_id)
        if not self.is_on_duty(physician_id):
            raise AccessDenied(
                "physician %r is not on any published duty roster"
                % physician_id)
        pd_key = pdevice_pseudonym.to_bytes()
        if pd_key not in self._pdevices:
            raise AuthenticationError("P-device pseudonym not registered "
                                      "(device not in emergency mode)")
        nounce = self._rng.random_bytes(NOUNCE_BYTES)
        self._outstanding[physician_id] = nounce

        # Step 2: E′_ϖ(nounce) to the physician under the SOK key ϖ.
        physician_public = self._pkg.extract(physician_id).public
        omega = shared_key_from_points(self.identity_key.private,
                                       physician_public)
        encrypted = AuthenticatedCipher(omega).encrypt(nounce, self._rng)
        sig_phys = ibs_sign(
            self.params, self.identity_key,
            pack_fields(physician_id.encode(), pd_key, encrypted,
                        ts_ms(now).to_bytes(8, "big")),
            self._rng)

        # Step 3: IBE_TPp(ID_i ‖ nounce ‖ t11) to the P-device.  The IBS on
        # the transaction (ID_i, TP_p, t11) doubles as the RD signature the
        # P-device stores as evidence (§IV.E.2).
        plaintext = pack_fields(physician_id.encode(), nounce,
                                ts_ms(now).to_bytes(8, "big"))
        ciphertext = encrypt_to_point(self.params, self.public_key,
                                      pdevice_pseudonym, plaintext, self._rng)
        sig_pd = ibs_sign(self.params, self.identity_key,
                          rd_message(physician_id, pd_key, now), self._rng)

        # Accountability: TR = (ID_i, TP_p, t10, t11, IBS_Γi), committed
        # into the tamper-evident audit log.
        trace = TraceRecord(
            physician_id=physician_id, patient_pseudonym=pd_key,
            request=request, t_request=t_request, t_issue=now,
            physician_signature=signature)
        self.traces.append(trace)
        self.audit_log.append(trace.to_bytes())
        return PasscodeIssue(
            physician_id=physician_id,
            encrypted_for_physician=encrypted,
            physician_signature=sig_phys,
            pdevice_ciphertext=ciphertext,
            pdevice_signature=sig_pd,
            t_issue=now)

    # -- MHI role keys (§IV.E.2) ---------------------------------------------
    def extract_role_key(self, physician_id: str,
                         role_identity: str) -> IdentityKeyPair:
        """Hand Γ_r for a role string to an *authenticated, on-duty*
        physician who holds an outstanding passcode.

        Role strings look like ``Date‖Duty‖ServiceArea``; only the
        A-server can produce their private keys, which is what makes the
        role-based access control bind.
        """
        if physician_id not in self._outstanding:
            raise AccessDenied(
                "physician %r has no authenticated emergency session"
                % physician_id)
        if not self.is_on_duty(physician_id):
            raise AccessDenied("physician %r went off duty" % physician_id)
        return self._pkg.extract(role_identity)

    def seal_role_key(self, physician_id: str, role_identity: str) -> bytes:
        """Γ_r wrapped for the wire: E′_ϖ(Γ_r) under the SOK key ϖ.

        The dispatch layer serves this to an authenticated physician; only
        the holder of Γ_i can derive ϖ = ê(Γ_A, PK_i) = ê(PK_A, Γ_i) and
        unwrap the role private point.
        """
        role_key = self.extract_role_key(physician_id, role_identity)
        physician_public = self._pkg.extract(physician_id).public
        omega = shared_key_from_points(self.identity_key.private,
                                       physician_public)
        return AuthenticatedCipher(omega).encrypt(
            role_key.private.to_bytes(), self._rng)

    def traces_for(self, patient_pseudonym: bytes) -> list[TraceRecord]:
        """The patient's post-emergency TR request (§V.A accountability)."""
        return [tr for tr in self.traces
                if tr.patient_pseudonym == patient_pseudonym]

    # -- durable state ------------------------------------------------------
    def export_state(self) -> bytes:
        """Serialize the protocol-critical state for a snapshot.

        The audit log is *not* serialized separately: its entries are
        exactly ``trace.to_bytes()`` in order, so :meth:`load_state`
        re-commits each recovered trace and rebuilds a byte-identical
        chain — the durable layer then cross-checks the recovered
        checkpoint against the one journaled before the crash.
        """
        roster = [pack_fields(hospital.encode(),
                              *[p.encode() for p in sorted(ids)])
                  for hospital, ids in sorted(self._duty_roster.items())]
        pdevices = sorted(self._pdevices)
        traces = [tr.to_bytes() for tr in self.traces]
        outstanding = [pack_fields(pid.encode(), nounce)
                       for pid, nounce in sorted(self._outstanding.items())]
        return pack_fields(pack_fields(*roster), pack_fields(*pdevices),
                           pack_fields(*traces), pack_fields(*outstanding))

    def load_state(self, blob: bytes) -> None:
        """Inverse of :meth:`export_state` — restore from a snapshot."""
        roster_b, pdevices_b, traces_b, outstanding_b = \
            unpack_fields(blob, expected=4)
        curve = self.params.curve
        self._duty_roster = {}
        for entry in unpack_fields(roster_b):
            fields = unpack_fields(entry)
            self._duty_roster[fields[0].decode()] = {
                f.decode() for f in fields[1:]}
        self._pdevices = {pd: Point.from_bytes(pd, curve)
                          for pd in unpack_fields(pdevices_b)}
        self.traces = [TraceRecord.from_bytes(tr, curve)
                       for tr in unpack_fields(traces_b)]
        self.audit_log = AuditLog()
        for trace in self.traces:
            self.audit_log.append(trace.to_bytes())
        self._outstanding = {}
        for entry in unpack_fields(outstanding_b):
            pid, nounce = unpack_fields(entry, expected=2)
            self._outstanding[pid.decode()] = nounce


class FederalAServer:
    """The federal root: level 1 of the HIBC tree (§IV.A).

    *"The A-server of the federal government act[s] as the root PKG.
    The federal A-server is at the same time an entity at level 1."*
    """

    def __init__(self, params: DomainParams, rng: HmacDrbg) -> None:
        self.params = params
        self._rng = rng
        self._root = HibcRoot(params, rng)
        self.entity_node = self._root.extract_child("federal-a-server", rng)
        self._states: dict[str, StateAServer] = {}
        self._state_nodes: dict[str, HibcNode] = {}

    @property
    def root_public(self) -> Point:
        """Q_0 = s_0·P: the tree-wide verification key."""
        return self._root.root_public

    def create_state_server(self, state_name: str) -> StateAServer:
        """Level-2 setup: a state A-server with its own IBC domain + HIBC key."""
        if state_name in self._states:
            raise ParameterError("state %r already exists" % state_name)
        node = self.entity_node.extract_child("state:" + state_name, self._rng)
        server = StateAServer(state_name, self.params,
                              self._rng.fork(state_name), hibc_node=node)
        self._states[state_name] = server
        self._state_nodes[state_name] = node
        return server

    def create_hospital_node(self, state_name: str,
                             hospital_name: str) -> HibcNode:
        """Level-3 setup: hospitals (and their physicians / S-servers)."""
        node = self._state_nodes.get(state_name)
        if node is None:
            raise ParameterError("unknown state %r" % state_name)
        return node.extract_child("hospital:" + hospital_name, self._rng)

    def issue_patient_node(self, hospital_node: HibcNode,
                           rng: HmacDrbg) -> HibcNode:
        """§V.A: a *temporary* level-4 HIBC pair for a patient, under the
        hospital he visited.  The leaf identity is a random pseudonym so
        the credential links to no person — it only proves membership in
        the federal tree, which is all cross-domain S-servers check."""
        pseudonym = "patient:" + rng.random_bytes(16).hex()
        return hospital_node.extract_child(pseudonym, self._rng)

    def state(self, state_name: str) -> StateAServer:
        server = self._states.get(state_name)
        if server is None:
            raise ParameterError("unknown state %r" % state_name)
        return server
