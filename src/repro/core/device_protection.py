"""P-device protection — the §VI.A countermeasures, implemented.

Three defences the paper proposes against a lost/stolen P-device:

* **Tamper-proof module (TPM)**: *"One common approach is to employ the
  tamper proof module (TPM) on P-device which erases all secrets upon
  detecting tampers."*  :class:`TamperProofModule` holds the ASSIGN
  package behind a sealed interface and zeroizes on a tamper signal.
* **Alerting**: *"we can program P-device to send message alerts to the
  patient's cell phone or email address whenever the PHI-retrieval
  related secrets are accessed"* — alerts already fire in
  :class:`~repro.core.entities.PDevice`; :class:`AlertChannel` here adds
  the forwarding of RDs "whenever they are created in case the lost
  P-device cannot be regained".
* **Privacy-preserving location tracking** (ref [33], Ristenpart et al.):
  the device periodically deposits location beacons at an untrusted
  tracking server, encrypted under the owner's key and indexed by
  unlinkable per-epoch tags, so only the owner can (a) find and (b) read
  them.  :class:`LostDeviceTracker` implements that scheme shape: tag_i =
  PRF_k(i), ciphertext = E′_k(location ‖ i); the server learns nothing
  and cannot link two beacons to one device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hmac_impl import hmac_sha256
from repro.crypto.modes import AuthenticatedCipher
from repro.crypto.rng import HmacDrbg
from repro.exceptions import AccessDenied, DecryptionError, ParameterError


class TamperProofModule:
    """Sealed storage for the P-device's ASSIGN secrets.

    ``unseal()`` returns the secret material only while the module is
    intact; a tamper event zeroizes it permanently — after which even
    physical possession of the device yields nothing (closing the §VI.A
    "sophisticated outsider" attack for TPM-equipped devices).
    """

    def __init__(self, secret_material: bytes) -> None:
        if not secret_material:
            raise ParameterError("nothing to seal")
        self._material: bytearray | None = bytearray(secret_material)
        self.tamper_events = 0

    @property
    def intact(self) -> bool:
        return self._material is not None

    def unseal(self) -> bytes:
        if self._material is None:
            raise AccessDenied("TPM zeroized: secrets were erased on tamper")
        return bytes(self._material)

    def detect_tamper(self) -> None:
        """The tamper sensor fired: erase everything, immediately."""
        self.tamper_events += 1
        if self._material is not None:
            for i in range(len(self._material)):
                self._material[i] = 0
            self._material = None


@dataclass
class AlertChannel:
    """Forwarding channel to the patient's cell phone / email (§VI.A)."""

    destination: str
    delivered: list[str] = field(default_factory=list)
    forwarded_records: list[object] = field(default_factory=list)

    def push_alert(self, message: str) -> None:
        self.delivered.append("[to %s] %s" % (self.destination, message))

    def forward_record(self, record: object) -> None:
        """Ship an RD off-device the moment it is created."""
        self.forwarded_records.append(record)


@dataclass(frozen=True)
class LocationBeacon:
    """One deposit at the tracking server: (unlinkable tag, ciphertext)."""

    tag: bytes
    ciphertext: bytes


class TrackingServer:
    """The untrusted location-tracking server: a blind tag → blob store."""

    def __init__(self) -> None:
        self._store: dict[bytes, bytes] = {}

    def deposit(self, beacon: LocationBeacon) -> None:
        self._store[beacon.tag] = beacon.ciphertext

    def fetch(self, tag: bytes) -> bytes | None:
        return self._store.get(tag)

    def __len__(self) -> int:
        return len(self._store)

    def all_tags(self) -> list[bytes]:
        """The server's entire view — used by unlinkability tests."""
        return list(self._store)


class LostDeviceTracker:
    """Device + owner sides of the privacy-preserving tracker (ref [33])."""

    def __init__(self, owner_key: bytes) -> None:
        if not owner_key:
            raise ParameterError("empty owner key")
        self._key = owner_key
        self._cipher = AuthenticatedCipher(owner_key)

    def _tag(self, epoch: int) -> bytes:
        return hmac_sha256(self._key, b"loc-tag:" + epoch.to_bytes(8, "big"))

    # -- device side -------------------------------------------------------
    def beacon(self, epoch: int, location: str,
               rng: HmacDrbg) -> LocationBeacon:
        """Encrypt and tag the current location for one epoch."""
        plaintext = epoch.to_bytes(8, "big") + location.encode()
        return LocationBeacon(tag=self._tag(epoch),
                              ciphertext=self._cipher.encrypt(plaintext,
                                                              rng))

    # -- owner side ----------------------------------------------------------
    def locate(self, server: TrackingServer, epoch_range: range
               ) -> list[tuple[int, str]]:
        """Recompute tags for the suspected epochs and decrypt the hits."""
        found: list[tuple[int, str]] = []
        for epoch in epoch_range:
            blob = server.fetch(self._tag(epoch))
            if blob is None:
                continue
            try:
                plaintext = self._cipher.decrypt(blob)
            except DecryptionError:
                continue  # server substituted garbage; ignore
            found.append((int.from_bytes(plaintext[:8], "big"),
                          plaintext[8:].decode()))
        return found
