"""The S-server: honest-but-curious storage at each hospital (§III.A).

*"S-server is provided by each hospital/clinic to store the patient's PHI.
It can be considered as a public server and is not trusted by patients."*

The server stores, per pseudonymous collection:

* the secure index SI = (A, T) and the encrypted file collection Λ,
* the current multi-user secret d and the broadcast BE_U(d),

and, for monitored patients, the IBE-encrypted MHI windows with their
PEKS tags.  **At no point does it hold a decryption key for any of it.**

Every handler takes / returns :class:`~repro.core.protocols.messages.Envelope`
objects whose HMAC keys are derived non-interactively (SOK) from the
pseudonym presented in the message — the server needs only its own private
key Γ_S.  Handlers verify integrity and freshness before acting.

The server also keeps an ``observations`` log of everything an
honest-but-curious adversary in its position would see (pseudonyms,
collection ids, trapdoor addresses, timing); the traffic-analysis
experiments mine this log.
"""

from __future__ import annotations

import hashlib
import threading
import warnings
from dataclasses import dataclass, field, replace

from repro.crypto import engine as engine_mod
from repro.crypto.broadcast import BroadcastCiphertext
from repro.crypto.ec import Point
from repro.crypto.ibe import IbeCiphertext, IdentityKeyPair
from repro.crypto.hashes import h1_identity
from repro.crypto.modes import AuthenticatedCipher
from repro.crypto.nike import SHARED_KEY_SPEC, shared_key_from_points
from repro.crypto.params import DomainParams
from repro.crypto.peks import MultiKeywordPeks, MultiKeywordTag, PeksTrapdoor
from repro.crypto.rng import HmacDrbg
from repro.sse.index import (SEARCH_BLOB_SPEC, SecureIndex, Trapdoor,
                             load_index_cached)
from repro.sse.multiuser import WrappedTrapdoor, unwrap_trapdoor
from repro.core.protocols.messages import (Envelope, ReplayGuard,
                                           open_envelope, pack_fields, seal,
                                           unpack_fields)
from repro.core.shard import collection_id_for_tag
from repro.exceptions import ParameterError, ReproError, StorageError


def _warn_max_workers(max_workers, method: str) -> None:
    """PR 1's search thread pool is gone (measured 0.95x vs serial —
    GIL-bound); parallelism now comes from the process-parallel crypto
    engine.  Passing the dead parameter gets a warning, not silence."""
    if max_workers is not None:
        warnings.warn(
            "StorageServer.%s(max_workers=...) is deprecated and has no "
            "effect; configure a crypto engine (HCPP_CRYPTO_WORKERS, "
            "--workers, or server.engine) instead" % method,
            DeprecationWarning, stacklevel=3)


@dataclass
class StoredCollection:
    """One pseudonymous PHI collection as the server sees it.

    A collection holds its index either live (``index``) or as the
    serialized blob the client uploaded (``index_blob``); blob-backed
    collections are deserialized on demand through the bounded
    :func:`repro.sse.index.load_index_cached` cache, so hot collections
    pay the parse once and cold ones cost no deserialized memory.
    """

    collection_id: bytes
    index: SecureIndex | None
    files: dict[bytes, bytes]            # fid -> E′_s ciphertext
    group_secret_d: bytes                # current d (server-side copy)
    broadcast_d: BroadcastCiphertext     # BE_U(d) for privileged entities
    index_blob: bytes | None = field(default=None, repr=False)

    def resolve_index(self) -> SecureIndex:
        """The live :class:`SecureIndex` for this collection."""
        if self.index is not None:
            return self.index
        if self.index_blob is None:
            raise StorageError("collection has neither index nor blob")
        return load_index_cached(self.index_blob)

    def storage_bytes(self) -> int:
        if self.index_blob is not None:
            index_bytes = len(self.index_blob)
        else:
            index_bytes = self.index.size_bytes()
        return (index_bytes
                + sum(len(ct) for ct in self.files.values())
                + len(self.group_secret_d) + self.broadcast_d.size_bytes())


@dataclass
class StoredMhi:
    """One IBE-encrypted MHI window plus its searchable PEKS tag."""

    role_identity: str
    ciphertext: IbeCiphertext
    tag: MultiKeywordTag


@dataclass(frozen=True)
class SearchRequest:
    """One client search request, as queued for the batched handler."""

    pseudonym: Point
    collection_id: bytes
    envelope: Envelope


@dataclass(frozen=True)
class Observation:
    """What a curious S-server operator records about one request."""

    kind: str
    pseudonym: bytes
    collection_id: bytes
    detail: bytes
    timestamp: float


def _collection_id_for(envelope: Envelope) -> bytes:
    """Deterministic collection id, derived from the store envelope's tag.

    The tag is an HMAC over payload ‖ timestamp, so it is unique per
    accepted upload (a reused tag is rejected by the replay guard before
    we get here) and — unlike an RNG draw — reproducible during crash
    recovery, where the journal replays the same envelope against a
    fresh server whose DRBG is back at its initial state.

    The derivation lives in :mod:`repro.core.shard` so the federation
    router — which must pick the owning shard from the OP_STORE frame
    *before* any server has accepted it — mints the identical id.
    """
    return collection_id_for_tag(envelope.tag)


class StorageServer:
    """An HCPP S-server instance."""

    def __init__(self, name: str, params: DomainParams,
                 identity_key: IdentityKeyPair, rng: HmacDrbg,
                 engine: "engine_mod.CryptoEngine | None" = None) -> None:
        self.name = name
        self.address = "sserver://" + name
        self.params = params
        self.identity_key = identity_key         # (PK_S, Γ_S)
        self._rng = rng
        #: Process-parallel crypto engine for the batched search paths.
        #: None falls back to the HCPP_CRYPTO_WORKERS default at call time
        #: (see repro.crypto.engine.resolve); results are byte-identical
        #: either way.
        self.engine = engine
        self._collections: dict[bytes, StoredCollection] = {}
        self._mhi: list[StoredMhi] = []
        self._guard = ReplayGuard()
        self.observations: list[Observation] = []
        self._observe_lock = threading.Lock()
        self.deleted_abnormal = 0  # DoS countermeasure counter (§VI.D)

    # -- key derivation -----------------------------------------------------
    def session_key(self, client_public: Point) -> bytes:
        """ν (or ρ) = KDF(ê(Γ_S, client_public)) — SOK, no messages."""
        return shared_key_from_points(self.identity_key.private, client_public)

    def _observe(self, kind: str, pseudonym: bytes, collection_id: bytes,
                 detail: bytes, now: float) -> None:
        with self._observe_lock:
            self.observations.append(Observation(
                kind=kind, pseudonym=pseudonym, collection_id=collection_id,
                detail=detail, timestamp=now))

    # -- private PHI storage (§IV.B) -------------------------------------
    def handle_store(self, pseudonym: Point, envelope: Envelope,
                     index: SecureIndex, files: dict[bytes, bytes],
                     group_secret_d: bytes,
                     broadcast_d: BroadcastCiphertext, now: float) -> bytes:
        """Verify and accept an upload; returns the new collection id.

        The bulky SI/Λ objects travel beside the envelope (whose payload
        carries their digest-sized summary); the envelope's HMAC_ν is the
        integrity check the paper specifies.
        """
        key = self.session_key(pseudonym)
        open_envelope(key, envelope, now, self._guard,
                      expected_label="phi-store")
        collection_id = _collection_id_for(envelope)
        self._collections[collection_id] = StoredCollection(
            collection_id=collection_id, index=index, files=dict(files),
            group_secret_d=group_secret_d, broadcast_d=broadcast_d)
        self._observe("store", pseudonym.to_bytes(), collection_id,
                      b"files=%d" % len(files), now)
        return collection_id

    def handle_store_serialized(self, pseudonym: Point, envelope: Envelope,
                                index_blob: bytes, files: dict[bytes, bytes],
                                group_secret_d: bytes,
                                broadcast_d: BroadcastCiphertext,
                                now: float) -> bytes:
        """Accept an upload whose SI travels in serialized form.

        The server keeps the blob verbatim (what it would persist to disk)
        and deserializes lazily through the index cache at search time.
        Search results are identical to :meth:`handle_store` with
        ``SecureIndex.from_bytes(index_blob)``.
        """
        key = self.session_key(pseudonym)
        open_envelope(key, envelope, now, self._guard,
                      expected_label="phi-store")
        collection_id = _collection_id_for(envelope)
        self._collections[collection_id] = StoredCollection(
            collection_id=collection_id, index=None, files=dict(files),
            group_secret_d=group_secret_d, broadcast_d=broadcast_d,
            index_blob=index_blob)
        self._observe("store", pseudonym.to_bytes(), collection_id,
                      b"files=%d" % len(files), now)
        return collection_id

    def _collection(self, collection_id: bytes) -> StoredCollection:
        collection = self._collections.get(collection_id)
        if collection is None:
            raise StorageError("unknown collection id")
        return collection

    # -- common-case retrieval (§IV.D) -----------------------------------------
    def handle_search(self, pseudonym: Point, collection_id: bytes,
                      envelope: Envelope, now: float) -> Envelope:
        """Steps 1→2: verify HMAC_ν, run SEARCH, return Λ(kw) under HMAC_ν.

        The envelope payload is one or more serialized trapdoors (the
        paper: "multiple keywords can be searched in step 1").
        """
        key = self.session_key(pseudonym)
        return self._search_with_key(key, pseudonym.to_bytes(),
                                     collection_id, envelope, now)

    def handle_search_session(self, session_key: bytes,
                              collection_id: bytes, envelope: Envelope,
                              now: float) -> Envelope:
        """The cross-domain variant (§IV.D note): identical flow, but the
        shared key was established through the HIBC handshake instead of
        the same-domain SOK pairing."""
        return self._search_with_key(session_key, b"hibc-session",
                                     collection_id, envelope, now)

    def _search_with_key(self, key: bytes, observed_client: bytes,
                         collection_id: bytes, envelope: Envelope,
                         now: float) -> Envelope:
        payload = open_envelope(key, envelope, now, self._guard,
                                expected_label=("phi-retrieve",
                                                "crossdomain/retrieve"))
        results = self._run_trapdoors(observed_client, collection_id,
                                      unpack_fields(payload), now)
        return seal(key, "phi-results", pack_fields(*results), now)

    def _run_trapdoors(self, observed_client: bytes, collection_id: bytes,
                       raw_trapdoors: list[bytes], now: float) -> list[bytes]:
        """SEARCH each trapdoor against one collection; fid‖ct results."""
        collection = self._collection(collection_id)
        index = collection.resolve_index()
        results: list[bytes] = []
        for raw in raw_trapdoors:
            trapdoor = Trapdoor.from_bytes(raw)
            self._observe("search", observed_client, collection_id,
                          trapdoor.address.to_bytes(16, "big"), now)
            for fid in index.search(trapdoor):
                ciphertext = collection.files.get(fid)
                if ciphertext is None:
                    raise StorageError("index references a missing file")
                results.append(fid + ciphertext)
        return results

    def handle_search_batch(self, requests: "list[SearchRequest]",
                            now: float,
                            max_workers: int | None = None) -> list[Envelope]:
        """Serve many independent search requests, in request order.

        Equivalent to calling :meth:`handle_search` once per request —
        the returned envelopes are byte-identical (sealing is
        deterministic given key, payload, and ``now``).

        PR 1's thread pool is gone: BENCH_crypto.json measured it at
        0.95x *slower* than serial (pairings are pure CPython bytecode,
        so threads just add GIL contention), so the default is a plain
        serial loop.  When a crypto engine is configured (``--workers``,
        ``HCPP_CRYPTO_WORKERS``, or the ``engine`` attribute) the SOK
        session-key derivations — one pairing per request, the dominant
        batch cost — fan out across worker *processes*; envelope
        open/search/seal then runs serially in the parent, in request
        order, so :class:`ReplayGuard` bookkeeping and the reply bytes
        are exactly the serial ones.

        .. deprecated:: PR 7
           ``max_workers`` (the PR 1 thread pool size) has no effect;
           configure a crypto engine instead.  Passing it warns.
        """
        _warn_max_workers(max_workers, "handle_search_batch")
        eng = engine_mod.resolve(self.engine)
        if eng is not None and len(requests) > 1:
            keys = eng.map(SHARED_KEY_SPEC,
                           [(self.identity_key.private, req.pseudonym)
                            for req in requests])
        else:
            keys = [self.session_key(req.pseudonym) for req in requests]
        return [self._search_with_key(key, req.pseudonym.to_bytes(),
                                      req.collection_id, req.envelope, now)
                for req, key in zip(requests, keys)]

    def handle_search_each(self, requests: "list[SearchRequest]",
                           now: float) -> "list[tuple[Envelope | None, Exception | None]]":
        """Per-request outcomes for the batched wire op (OP_SEARCH_BATCH).

        Same key-derivation fan-out as :meth:`handle_search_batch`, but
        each request resolves independently to ``(reply, None)`` or
        ``(None, exception)`` instead of the whole batch failing at the
        first error.  Independence is what lets the federation router
        splice per-shard sub-batches back together with responses
        byte-identical to one server handling the whole batch: entry k's
        outcome depends only on entry k, never on its neighbours.
        """
        eng = engine_mod.resolve(self.engine)
        if eng is not None and len(requests) > 1:
            keys = eng.map(SHARED_KEY_SPEC,
                           [(self.identity_key.private, req.pseudonym)
                            for req in requests])
        else:
            keys = [self.session_key(req.pseudonym) for req in requests]
        outcomes: list[tuple[Envelope | None, Exception | None]] = []
        for req, key in zip(requests, keys):
            try:
                outcomes.append((self._search_with_key(
                    key, req.pseudonym.to_bytes(), req.collection_id,
                    req.envelope, now), None))
            except ReproError as exc:
                outcomes.append((None, exc))
        return outcomes

    def handle_search_shard(self, pseudonym: Point,
                            collection_ids: list[bytes], envelope: Envelope,
                            now: float) -> list[list[bytes]]:
        """The guard-free shard leg of a scattered multi-collection search.

        Verifies the envelope fully — label, HMAC_ν, freshness — but does
        **not** consume the replay window and seals nothing: the merge
        shard (the one collection-owner that splices the combined reply,
        :meth:`handle_search_merge`) performs the single guarded open, so
        a scattered request burns exactly one replay-guard commitment —
        the same as one server serving OP_SEARCH_MULTI alone.  Returns
        one raw ``fid ‖ ct`` result list per requested collection, in
        the caller's collection order.
        """
        key = self.session_key(pseudonym)
        payload = open_envelope(key, envelope, now, None,
                                expected_label="phi-retrieve")
        raw_trapdoors = unpack_fields(payload)
        observed = pseudonym.to_bytes()
        return [self._run_trapdoors(observed, cid, raw_trapdoors, now)
                for cid in collection_ids]

    def handle_search_merge(self, pseudonym: Point,
                            collection_ids: list[bytes], envelope: Envelope,
                            foreign_chunks: "dict[bytes, list[bytes]]",
                            now: float) -> Envelope:
        """The guarded merge leg of a scattered multi-collection search.

        Opens the envelope exactly like :meth:`handle_search_multi`
        (consuming the replay window), searches the locally-owned
        collections, and splices the foreign shards' pre-computed result
        chunks in at their positions in the caller's collection order —
        so the sealed reply is byte-identical to one server that held
        every collection.  The router sends this leg *last*: if any
        foreign shard fails, the guard here was never consumed and the
        client's retry replays cleanly.
        """
        key = self.session_key(pseudonym)
        payload = open_envelope(key, envelope, now, self._guard,
                                expected_label="phi-retrieve")
        raw_trapdoors = unpack_fields(payload)
        observed = pseudonym.to_bytes()
        chunks = []
        for cid in collection_ids:
            foreign = foreign_chunks.get(cid)
            if foreign is not None:
                chunks.append(foreign)
            else:
                chunks.append(self._run_trapdoors(observed, cid,
                                                  raw_trapdoors, now))
        results = [item for chunk in chunks for item in chunk]
        return seal(key, "phi-results", pack_fields(*results), now)

    def handle_search_multi(self, pseudonym: Point,
                            collection_ids: list[bytes], envelope: Envelope,
                            now: float,
                            max_workers: int | None = None) -> Envelope:
        """One trapdoor set searched across several collections.

        Single envelope, single HMAC/replay check; the same trapdoors run
        against every listed collection and the results concatenate in
        the caller's collection order — so the reply is byte-identical to
        a serial loop over the ids.

        Serial by default (the PR 1 thread pool measured slower than
        serial).  With a crypto engine and every collection blob-backed,
        each collection's index walk runs in a worker process — workers
        deserialize through their own index caches — while observation
        logging and fid → ciphertext resolution stay in the parent, in
        the same order as the serial loop.

        .. deprecated:: PR 7
           ``max_workers`` (the PR 1 thread pool size) has no effect;
           configure a crypto engine instead.  Passing it warns.
        """
        _warn_max_workers(max_workers, "handle_search_multi")
        key = self.session_key(pseudonym)
        payload = open_envelope(key, envelope, now, self._guard,
                                expected_label="phi-retrieve")
        raw_trapdoors = unpack_fields(payload)
        observed = pseudonym.to_bytes()
        eng = engine_mod.resolve(self.engine)
        collections = [self._collection(cid) for cid in collection_ids]
        if (eng is not None and len(collections) > 1
                and all(c.index_blob is not None for c in collections)):
            per_collection = eng.map(
                SEARCH_BLOB_SPEC,
                [(c.index_blob, raw_trapdoors) for c in collections])
            chunks = [self._resolve_fids(c, raw_trapdoors, fid_lists,
                                         observed, now)
                      for c, fid_lists in zip(collections, per_collection)]
        else:
            chunks = [self._run_trapdoors(observed, c.collection_id,
                                          raw_trapdoors, now)
                      for c in collections]
        results = [item for chunk in chunks for item in chunk]
        return seal(key, "phi-results", pack_fields(*results), now)

    def _resolve_fids(self, collection: StoredCollection,
                      raw_trapdoors: list[bytes],
                      fid_lists: list[list[bytes]], observed: bytes,
                      now: float) -> list[bytes]:
        """Parent-side tail of an engine-run collection search.

        Replays exactly what :meth:`_run_trapdoors` does after the index
        walk: per-trapdoor observation logging (the observations log is
        parent state — workers cannot append to it) and fid → ciphertext
        resolution, in the same order.
        """
        results: list[bytes] = []
        for raw, fids in zip(raw_trapdoors, fid_lists):
            trapdoor = Trapdoor.from_bytes(raw)
            self._observe("search", observed, collection.collection_id,
                          trapdoor.address.to_bytes(16, "big"), now)
            for fid in fids:
                ciphertext = collection.files.get(fid)
                if ciphertext is None:
                    raise StorageError("index references a missing file")
                results.append(fid + ciphertext)
        return results

    # -- family / P-device retrieval (§IV.E.1) ---------------------------------
    def handle_get_broadcast(self, pseudonym: Point, collection_id: bytes,
                             envelope: Envelope, now: float) -> Envelope:
        """Steps 1→2 of the family protocol: return BE_U(d)."""
        key = self.session_key(pseudonym)
        open_envelope(key, envelope, now, self._guard,
                      expected_label="emergency/get-d")
        collection = self._collection(collection_id)
        self._observe("get-broadcast", pseudonym.to_bytes(), collection_id,
                      b"", now)
        blob = _serialize_broadcast(collection.broadcast_d)
        return seal(key, "broadcast-d", blob, now)

    def handle_search_wrapped(self, pseudonym: Point, collection_id: bytes,
                              envelope: Envelope, now: float) -> Envelope:
        """Steps 3→4: unwrap TD_U = θ_d(TD), validate, SEARCH, return files.

        Raises :class:`AccessDenied` for wraps under a stale (revoked) d.
        """
        key = self.session_key(pseudonym)
        payload = open_envelope(key, envelope, now, self._guard,
                                expected_label="emergency/search")
        collection = self._collection(collection_id)
        results: list[bytes] = []
        for raw in unpack_fields(payload):
            trapdoor = unwrap_trapdoor(collection.group_secret_d,
                                       WrappedTrapdoor(raw))
            self._observe("search-wrapped", pseudonym.to_bytes(),
                          collection_id,
                          trapdoor.address.to_bytes(16, "big"), now)
            for fid in collection.resolve_index().search(trapdoor):
                ciphertext = collection.files.get(fid)
                if ciphertext is None:
                    raise StorageError("index references a missing file")
                results.append(fid + ciphertext)
        return seal(key, "phi-results", pack_fields(*results), now)

    # -- REVOKE (§IV.C) ----------------------------------------------------
    def handle_revoke(self, pseudonym: Point, collection_id: bytes,
                      envelope: Envelope, now: float) -> None:
        """patient → S-server: E′_ν(d′ ‖ BE′_U′(d′)) — replace d and BE_U(d)."""
        key = self.session_key(pseudonym)
        payload = open_envelope(key, envelope, now, self._guard,
                                expected_label=("group-update", "revoke"))
        plaintext = AuthenticatedCipher(key).decrypt(payload)
        d_new, broadcast_blob = unpack_fields(plaintext, expected=2)
        collection = self._collection(collection_id)
        # Publish the new group state as one reference swap: a search
        # running concurrently with the (single-writer) revoke sees the
        # old (d, BE_U(d)) pair or the new one, never a d′ paired with a
        # stale broadcast.
        self._collections[collection_id] = replace(
            collection, group_secret_d=d_new,
            broadcast_d=_deserialize_broadcast(broadcast_blob))
        self._observe("revoke", pseudonym.to_bytes(), collection_id, b"", now)

    # -- MHI (§IV.E.2) -------------------------------------------------------
    def handle_mhi_store(self, pseudonym: Point, envelope: Envelope,
                         role_identity: str, ciphertext: IbeCiphertext,
                         tag: MultiKeywordTag, now: float) -> None:
        """P-device → S-server: TP_p, IBE_IDr(MHI) ‖ PEKS_σ(IDr, kw)."""
        key = self.session_key(pseudonym)
        open_envelope(key, envelope, now, self._guard,
                      expected_label="mhi-store")
        self._mhi.append(StoredMhi(role_identity=role_identity,
                                   ciphertext=ciphertext, tag=tag))
        self._observe("mhi-store", pseudonym.to_bytes(), b"",
                      role_identity.encode(), now)

    def handle_mhi_search(self, role_identity: str, envelope: Envelope,
                          trapdoor: PeksTrapdoor, pkg_public: Point,
                          now: float) -> tuple[Envelope, list[IbeCiphertext]]:
        """physician → S-server under HMAC_ρ; returns matching IBE_IDr(MHI).

        ρ is derived from the *role* public key PK_r = H1(ID_r): the
        physician pairs Γ_r with PK_S, the server pairs Γ_S with PK_r.
        """
        role_public = h1_identity(self.params, role_identity)
        key = self.session_key(role_public)
        open_envelope(key, envelope, now, self._guard,
                      expected_label="mhi-search")
        candidates = [entry for entry in self._mhi
                      if entry.role_identity == role_identity]
        # One pairing per stored tag: the batch test fans out across the
        # crypto engine's workers when one is configured, serial otherwise
        # — the match set is identical either way.
        flags = MultiKeywordPeks.test_batch([e.tag for e in candidates],
                                            trapdoor, engine=self.engine)
        matches = [entry.ciphertext
                   for entry, hit in zip(candidates, flags) if hit]
        self._observe("mhi-search", role_public.to_bytes(), b"",
                      role_identity.encode(), now)
        reply = seal(key, "mhi-results",
                     pack_fields(*[c.to_bytes() for c in matches]), now)
        return reply, matches

    # -- durable state ------------------------------------------------------
    def export_state(self) -> bytes:
        """Serialize the protocol-critical state for a snapshot.

        Covers collections (index, files, group secret, broadcast), MHI
        entries, and the replay-guard window.  The ``observations`` log
        and DoS counters are diagnostics, not protocol state, and are
        deliberately excluded.
        """
        collections = [self._serialize_collection(self._collections[cid])
                       for cid in sorted(self._collections)]
        mhi = [_serialize_mhi(m) for m in self._mhi]
        guard = [pack_fields(tag, str(ts).encode())
                 for tag, ts in self._guard.export_state()]
        return pack_fields(pack_fields(*collections), pack_fields(*mhi),
                           pack_fields(*guard))

    def load_state(self, blob: bytes) -> None:
        """Inverse of :meth:`export_state` — restore from a snapshot."""
        collections_b, mhi_b, guard_b = unpack_fields(blob, expected=3)
        curve = self.params.curve
        self._collections = {}
        for entry in unpack_fields(collections_b):
            collection = _deserialize_collection(entry)
            self._collections[collection.collection_id] = collection
        self._mhi = [_deserialize_mhi(entry, curve)
                     for entry in unpack_fields(mhi_b)]
        entries = []
        for entry in unpack_fields(guard_b):
            tag, ts = unpack_fields(entry, expected=2)
            entries.append((tag, float(ts.decode())))
        self._guard.load_state(entries)

    @staticmethod
    def _serialize_collection(c: StoredCollection) -> bytes:
        blob = c.index_blob if c.index_blob is not None \
            else c.index.to_bytes()
        files = pack_fields(*[pack_fields(fid, c.files[fid])
                              for fid in sorted(c.files)])
        return pack_fields(
            c.collection_id, blob, files, c.group_secret_d,
            _serialize_broadcast(c.broadcast_d),
            b"blob" if c.index_blob is not None else b"live")

    # -- shard migration -----------------------------------------------------
    # The federation's rebalance (repro.core.federation) moves whole
    # collections / MHI role windows between shards through these
    # primitives.  They speak the exact snapshot codec of export_state,
    # so a migrated collection round-trips bit-for-bit.

    def held_keys(self) -> "tuple[list[bytes], list[bytes]]":
        """The stable routing keys this server currently serves:
        (sorted collection ids, sorted unique role-identity bytes)."""
        roles = sorted({m.role_identity.encode() for m in self._mhi})
        return sorted(self._collections), roles

    def export_partition(self, cids: "list[bytes]",
                         roles: "list[bytes]") -> bytes:
        """Serialize a slice of state for migration: the named
        collections, every MHI window of the named roles, and the full
        replay-guard window (the guard travels with every slice so a
        request absorbed by the source cannot be replayed against the
        destination after the handoff)."""
        collections = []
        for cid in cids:
            collections.append(self._serialize_collection(
                self._collection(cid)))
        wanted = {role.decode() for role in roles}
        mhi = [_serialize_mhi(m) for m in self._mhi
               if m.role_identity in wanted]
        guard = [pack_fields(tag, str(ts).encode())
                 for tag, ts in self._guard.export_state()]
        return pack_fields(pack_fields(*collections), pack_fields(*mhi),
                           pack_fields(*guard))

    def install_partition(self, blob: bytes) -> "tuple[int, int]":
        """Adopt a migrated slice; returns (collections, MHI windows).

        Idempotent — re-installing the same slice (a resumed migration,
        or a journal replay after a crash) overwrites collections with
        identical bytes, skips MHI windows already present, and seeds
        guard entries through the guard's idempotent insert.
        """
        collections_b, mhi_b, guard_b = unpack_fields(blob, expected=3)
        curve = self.params.curve
        installed = 0
        for entry in unpack_fields(collections_b):
            collection = _deserialize_collection(entry)
            self._collections[collection.collection_id] = collection
            installed += 1
        present = {(m.role_identity, m.ciphertext.to_bytes(),
                    m.tag.to_bytes()) for m in self._mhi}
        mhi_installed = 0
        for entry in unpack_fields(mhi_b):
            m = _deserialize_mhi(entry, curve)
            key = (m.role_identity, m.ciphertext.to_bytes(),
                   m.tag.to_bytes())
            if key not in present:
                present.add(key)
                self._mhi.append(m)
                mhi_installed += 1
        for entry in unpack_fields(guard_b):
            tag, ts = unpack_fields(entry, expected=2)
            self._guard.insert(tag, float(ts.decode()))
        return installed, mhi_installed

    def release_partition(self, cids: "list[bytes]",
                          roles: "list[bytes]") -> None:
        """Drop a migrated-away slice (idempotent; the destination has
        durably acked it).  Guard entries stay — the window self-prunes
        and keeping it closes, not opens, the replay surface."""
        for cid in cids:
            self._collections.pop(cid, None)
        dropped = {role.decode() for role in roles}
        if dropped:
            self._mhi = [m for m in self._mhi
                         if m.role_identity not in dropped]

    # -- accounting -----------------------------------------------------------
    def total_storage_bytes(self) -> int:
        phi = sum(c.storage_bytes() for c in self._collections.values())
        mhi = sum(m.ciphertext.size_bytes() + m.tag.size_bytes()
                  for m in self._mhi)
        return phi + mhi

    def collection_count(self) -> int:
        return len(self._collections)

    def mhi_count(self) -> int:
        return len(self._mhi)


def _deserialize_collection(entry: bytes) -> StoredCollection:
    cid, index_blob, files_b, d, bcast_b, mode = \
        unpack_fields(entry, expected=6)
    files = {}
    for chunk in unpack_fields(files_b):
        fid, ciphertext = unpack_fields(chunk, expected=2)
        files[fid] = ciphertext
    if mode == b"blob":
        index, stored_blob = None, index_blob
    else:
        index, stored_blob = SecureIndex.from_bytes(index_blob), None
    return StoredCollection(
        collection_id=cid, index=index, files=files, group_secret_d=d,
        broadcast_d=_deserialize_broadcast(bcast_b),
        index_blob=stored_blob)


def _serialize_mhi(m: StoredMhi) -> bytes:
    return pack_fields(m.role_identity.encode(), m.ciphertext.to_bytes(),
                       m.tag.to_bytes())


def _deserialize_mhi(entry: bytes, curve) -> StoredMhi:
    role, ct_b, tag_b = unpack_fields(entry, expected=3)
    return StoredMhi(role_identity=role.decode(),
                     ciphertext=IbeCiphertext.from_bytes(ct_b, curve),
                     tag=MultiKeywordTag.from_bytes(tag_b, curve))


def _serialize_broadcast(broadcast: BroadcastCiphertext) -> bytes:
    entries = []
    for node_id, body in broadcast.cover:
        entries.append(node_id.to_bytes(8, "big") + body)
    revoked = b",".join(str(leaf).encode() for leaf in sorted(broadcast.revoked))
    return pack_fields(revoked, *entries)


def _deserialize_broadcast(blob: bytes) -> BroadcastCiphertext:
    fields = unpack_fields(blob)
    if not fields:
        raise ParameterError("empty broadcast blob")
    revoked_blob, entries = fields[0], fields[1:]
    revoked = frozenset(int(x) for x in revoked_blob.decode().split(",") if x)
    cover = tuple((int.from_bytes(e[:8], "big"), e[8:]) for e in entries)
    return BroadcastCiphertext(cover=cover, revoked=revoked)
