"""Server-side dispatch: every remote party serves ``handle_frame``.

One :class:`Endpoint` wraps one entity (S-server, A-server, or a
privileged family member / P-device) and routes typed opcodes — parsed
exclusively with the :mod:`repro.core.wire` codecs — to the entity's
handlers.  Protocol code never touches a remote party's methods
directly; it builds a frame, hands it to a transport, and parses the
response.  That boundary is what lets the same protocol run unchanged
over in-process dispatch, the discrete-event simulator, or real TCP
between OS processes (and is enforced by ``tools/check_layering.py``).

Server-side :class:`~repro.exceptions.ReproError` exceptions serialize
into error responses and re-raise client-side as the same class.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Callable

from repro.crypto.ec import Point
from repro.crypto.hibc import HibeCiphertext, HidsSignature
from repro.crypto.ibe import IbeCiphertext, decrypt_with_point
from repro.crypto.ibs import IbsSignature
from repro.crypto.modes import AuthenticatedCipher
from repro.crypto.peks import MultiKeywordTag, PeksTrapdoor
from repro.sse.index import SecureIndex
from repro.core import wire
from repro.core.aserver import StateAServer
from repro.core.entities import AssignPackage, PDevice, _PrivilegedEntity
from repro.core.protocols.messages import (Envelope, ReplayGuard,
                                           open_envelope, pack_fields,
                                           unpack_fields)
from repro.core.router import RouterEndpoint
from repro.core.sserver import (SearchRequest, StorageServer,
                                _deserialize_broadcast)
from repro.exceptions import (AccessDenied, AuthenticationError,
                              IntegrityError, ParameterError, ReplayError,
                              ReproError, TransportError)

__all__ = ["Endpoint", "SServerEndpoint", "AServerEndpoint",
           "EntityEndpoint", "RouterEndpoint", "bind_sserver",
           "bind_aserver", "bind_entity"]


def _parse_epoch(epoch_b: bytes) -> int:
    """The 8-byte big-endian federation epoch a migrate frame targets."""
    if len(epoch_b) != 8:
        raise ParameterError("federation epoch must be 8 bytes, got %d"
                             % len(epoch_b))
    return int.from_bytes(epoch_b, "big")


def _pack_guard(guard: ReplayGuard) -> bytes:
    return pack_fields(*[pack_fields(tag, repr(ts).encode())
                         for tag, ts in guard.export_state()])


def _unpack_guard(blob: bytes, guard: ReplayGuard) -> None:
    entries = []
    for entry in unpack_fields(blob):
        tag, ts = unpack_fields(entry, expected=2)
        entries.append((tag, float(ts.decode())))
    guard.load_state(entries)


class Endpoint:
    """Opcode routing + error serialization around one served entity.

    :attr:`MUTATING_OPS` names the opcodes that change state the entity
    must not lose across a crash — the durable layer journals exactly
    these frames (after they succeed) and replays them through the same
    handlers on recovery.  Read-only opcodes stay off the journal; their
    replay-guard commitments are persisted separately (see
    :meth:`guards`).

    **Reentrancy contract** (the multiplexed async backend dispatches
    pipelined frames from a thread pool, so ``handle_frame`` must
    tolerate concurrent entry): mutating opcodes are *single-writer* —
    they serialize on :attr:`_write_lock`, which keeps the durable
    layer's journal append order well-defined — while read-only opcodes
    run concurrently with each other and with at most one writer.
    Handlers for read opcodes must therefore never mutate shared state
    except through their own locks (:class:`ReplayGuard` is internally
    locked; the S-server's session table has
    :attr:`SServerEndpoint._sessions_lock`).
    """

    MUTATING_OPS: frozenset = frozenset()

    def __init__(self) -> None:
        self._transport = None
        self._ops: dict[bytes, Callable[[list[bytes]], bytes]] = {}
        # Single-writer lock: at most one mutating frame is in a handler
        # at any moment, so journal commits observe a total order.
        self._write_lock = threading.Lock()

    def guards(self) -> list:
        """The :class:`ReplayGuard` instances whose windows must survive
        a crash (satellite: a restarted endpoint must not reopen its
        replay window)."""
        return []

    def attach(self, transport) -> None:
        """Called by ``Transport.bind``: gives the endpoint its clock and
        the ability to originate frames (e.g. the A-server's step-3 push)."""
        self._transport = transport

    @property
    def now(self) -> float:
        if self._transport is None:
            raise TransportError("endpoint is not attached to a transport")
        return self._transport.now

    def handle_frame(self, frame: bytes) -> bytes:
        try:
            opcode, fields = wire.parse_frame(frame)
            handler = self._ops.get(opcode)
            if handler is None:
                raise TransportError("unknown opcode %r" % opcode)
            if opcode in self.MUTATING_OPS:
                with self._write_lock:
                    return wire.ok_response(handler(fields))
            return wire.ok_response(handler(fields))
        except ReproError as exc:
            return wire.error_response(exc)
        except Exception as exc:  # defensive: never kill a server thread
            return wire.error_response(exc)

    @staticmethod
    def _expect(fields: list[bytes], count: int) -> list[bytes]:
        if len(fields) != count:
            raise ParameterError("expected %d frame fields, got %d"
                                 % (count, len(fields)))
        return fields


class SServerEndpoint(Endpoint):
    """The S-server's wire surface: storage, search, emergency, MHI, and
    (when it holds an HIBC credential) cross-domain sessions."""

    # Cross-domain handshakes (OP_XD_HANDSHAKE) also write `_sessions`,
    # but session keys are deliberately ephemeral: a crashed server
    # forgets them and the patient re-handshakes, which is the correct
    # security posture for a session secret.
    #
    # OP_MIGRATE_ACK is the journaled half of a shard handoff: the
    # `install` form must survive a destination crash (it is the
    # durable ack the source's release waits on) and the `release`
    # form must survive a source crash (or recovery would resurrect a
    # collection the ring no longer routes here).
    MUTATING_OPS = frozenset({wire.OP_STORE, wire.OP_GROUP_UPDATE,
                              wire.OP_MHI_STORE, wire.OP_MIGRATE_ACK})

    def __init__(self, server: StorageServer, hibc_node=None,
                 root_public: Point | None = None,
                 federation_key: bytes | None = None) -> None:
        super().__init__()
        self.server = server
        self.hibc_node = hibc_node
        self.root_public = root_public
        # Shards of a federation hold the shared internal-frame key; a
        # standalone server keeps None and rejects every SHARD/MERGE
        # frame (those opcodes are router→shard legs, never client ops).
        self.federation_key = federation_key
        # Established cross-domain session keys, by transcript handle.
        # OP_XD_HANDSHAKE is a *read* opcode (see MUTATING_OPS note), so
        # concurrent handshakes and searches race on this table; the
        # fine-grained lock keeps each access atomic.
        self._sessions: dict[bytes, bytes] = {}
        self._sessions_lock = threading.Lock()
        self._ops = {
            wire.OP_STORE: self._op_store,
            wire.OP_SEARCH: self._op_search,
            wire.OP_SEARCH_BATCH: self._op_search_batch,
            wire.OP_SEARCH_MULTI: self._op_search_multi,
            wire.OP_SEARCH_SHARD: self._op_search_shard,
            wire.OP_SEARCH_MERGE: self._op_search_merge,
            wire.OP_GET_BROADCAST: self._op_get_broadcast,
            wire.OP_SEARCH_WRAPPED: self._op_search_wrapped,
            wire.OP_GROUP_UPDATE: self._op_group_update,
            wire.OP_MHI_STORE: self._op_mhi_store,
            wire.OP_MHI_SEARCH: self._op_mhi_search,
            wire.OP_XD_HANDSHAKE: self._op_xd_handshake,
            wire.OP_XD_SEARCH: self._op_xd_search,
            wire.OP_MIGRATE_PULL: self._op_migrate_pull,
            wire.OP_MIGRATE_ACK: self._op_migrate_ack,
        }

    @property
    def _curve(self):
        return self.server.params.curve

    def guards(self) -> list:
        return [self.server._guard]

    def export_state(self) -> bytes:
        return self.server.export_state()

    def load_state(self, blob: bytes) -> None:
        self.server.load_state(blob)

    # -- §IV.B storage -------------------------------------------------------
    def _op_store(self, fields: list[bytes]) -> bytes:
        (pseud_b, env_b, index_blob, files_blob, group_d,
         broadcast_b) = self._expect(fields, 6)
        envelope = Envelope.from_bytes(env_b)
        index = SecureIndex.from_bytes(index_blob)
        files = wire.decode_files(files_blob)
        # Recompute the SI/Λ digests over what actually arrived and match
        # them against the MACed payload summary (§III.C data integrity).
        summary = pack_fields(pseud_b, index.digest(),
                              wire.files_digest(files))
        if summary != envelope.payload:
            raise IntegrityError("SI/Λ digest mismatch on upload")
        return self.server.handle_store(
            Point.from_bytes(pseud_b, self._curve), envelope, index, files,
            group_d, _deserialize_broadcast(broadcast_b), self.now)

    # -- §IV.D retrieval -----------------------------------------------------
    def _op_search(self, fields: list[bytes]) -> bytes:
        pseud_b, collection_id, env_b = self._expect(fields, 3)
        reply = self.server.handle_search(
            Point.from_bytes(pseud_b, self._curve), collection_id,
            Envelope.from_bytes(env_b), self.now)
        return reply.to_bytes()

    # -- batched / federated search ------------------------------------------
    def _op_search_batch(self, fields: list[bytes]) -> bytes:
        """Many independent searches in one frame.

        Each frame field is one ``(pseudonym, Λ, envelope)`` entry; the
        reply packs one *full status-framed response* per entry — entry k
        carries its own ok/error encoding, independent of its neighbours.
        Per-entry framing is what lets the federation router scatter
        sub-batches to shards and splice the per-entry responses back
        together byte-identically to one server serving the whole batch.
        """
        requests = []
        for entry in fields:
            pseud_b, collection_id, env_b = unpack_fields(entry, expected=3)
            requests.append(SearchRequest(
                pseudonym=Point.from_bytes(pseud_b, self._curve),
                collection_id=collection_id,
                envelope=Envelope.from_bytes(env_b)))
        outcomes = self.server.handle_search_each(requests, self.now)
        return pack_fields(*[
            wire.error_response(exc) if exc is not None
            else wire.ok_response(reply.to_bytes())
            for reply, exc in outcomes])

    def _op_search_multi(self, fields: list[bytes]) -> bytes:
        pseud_b, cids_b, env_b = self._expect(fields, 3)
        reply = self.server.handle_search_multi(
            Point.from_bytes(pseud_b, self._curve),
            list(unpack_fields(cids_b)), Envelope.from_bytes(env_b),
            self.now)
        return reply.to_bytes()

    def _op_search_shard(self, fields: list[bytes]) -> bytes:
        """Router→shard leg: guard-free sub-search, raw chunk reply.

        Federation-authenticated: the trailing tag must verify under
        the shared federation key *before* anything else happens — this
        leg skips the replay-guard commit and answers raw chunks, so an
        unauthenticated peer must never reach it.
        """
        fields = wire.open_internal_frame(self.federation_key,
                                          wire.OP_SEARCH_SHARD, fields)
        pseud_b, cids_b, env_b = self._expect(fields, 3)
        chunks = self.server.handle_search_shard(
            Point.from_bytes(pseud_b, self._curve),
            list(unpack_fields(cids_b)), Envelope.from_bytes(env_b),
            self.now)
        return pack_fields(*[pack_fields(*chunk) for chunk in chunks])

    def _op_search_merge(self, fields: list[bytes]) -> bytes:
        """Router→shard leg: single guarded open + spliced sealed reply.

        Federation-authenticated: the tag covers the cid list and every
        foreign chunk, so the spliced-and-sealed reply can only contain
        chunks the router gathered — never attacker-supplied data.
        """
        fields = wire.open_internal_frame(self.federation_key,
                                          wire.OP_SEARCH_MERGE, fields)
        pseud_b, cids_b, env_b, foreign_b = self._expect(fields, 4)
        foreign: dict[bytes, list[bytes]] = {}
        for entry in unpack_fields(foreign_b):
            cid, chunk_b = unpack_fields(entry, expected=2)
            foreign[cid] = list(unpack_fields(chunk_b))
        reply = self.server.handle_search_merge(
            Point.from_bytes(pseud_b, self._curve),
            list(unpack_fields(cids_b)), Envelope.from_bytes(env_b),
            foreign, self.now)
        return reply.to_bytes()

    # -- shard lifecycle (federation rebalance) ------------------------------
    def _op_migrate_pull(self, fields: list[bytes]) -> bytes:
        """Rebalancer→shard leg: list held keys, or export a slice.

        Federation-authenticated and read-only: the source keeps
        serving everything it exports until the destination's durable
        install is acked and the rebalancer sends the `release` ACK.
        One operand (the epoch) asks for the held-key listing; three
        operands (epoch, cids, roles) export the named slice.
        """
        fields = wire.open_internal_frame(self.federation_key,
                                          wire.OP_MIGRATE_PULL, fields)
        if len(fields) == 1:
            _parse_epoch(fields[0])
            cids, roles = self.server.held_keys()
            return pack_fields(pack_fields(*cids), pack_fields(*roles))
        epoch_b, cids_b, roles_b = self._expect(fields, 3)
        _parse_epoch(epoch_b)
        return self.server.export_partition(
            list(unpack_fields(cids_b)), list(unpack_fields(roles_b)))

    def _op_migrate_ack(self, fields: list[bytes]) -> bytes:
        """Rebalancer→shard leg: the journaled half of a handoff.

        ``install`` adopts an exported slice on the destination;
        ``release`` drops it from the source.  Both forms are mutating
        (the durable layer fsyncs the whole frame before the ack
        leaves) and idempotent, so a resumed migration or a journal
        replay re-applies them safely.  The epoch operand is sealed
        into the federation tag and journaled for audit; the handler
        does not order-check it — recovery replays frames from every
        historical epoch, and staleness is excluded by the rebalancer
        being the manifest's single writer.
        """
        fields = wire.open_internal_frame(self.federation_key,
                                          wire.OP_MIGRATE_ACK, fields)
        mode, epoch_b, payload = self._expect(fields, 3)
        _parse_epoch(epoch_b)
        if mode == b"install":
            self.server.install_partition(payload)
            return b""
        if mode == b"release":
            cids_b, roles_b = unpack_fields(payload, expected=2)
            self.server.release_partition(
                list(unpack_fields(cids_b)), list(unpack_fields(roles_b)))
            return b""
        raise ParameterError("unknown migrate-ack mode %r" % mode)

    # -- §IV.E.1 family-style emergency --------------------------------------
    def _op_get_broadcast(self, fields: list[bytes]) -> bytes:
        pseud_b, collection_id, env_b = self._expect(fields, 3)
        reply = self.server.handle_get_broadcast(
            Point.from_bytes(pseud_b, self._curve), collection_id,
            Envelope.from_bytes(env_b), self.now)
        return reply.to_bytes()

    def _op_search_wrapped(self, fields: list[bytes]) -> bytes:
        pseud_b, collection_id, env_b = self._expect(fields, 3)
        reply = self.server.handle_search_wrapped(
            Point.from_bytes(pseud_b, self._curve), collection_id,
            Envelope.from_bytes(env_b), self.now)
        return reply.to_bytes()

    # -- §IV.C group-state update (ASSIGN push / REVOKE) ---------------------
    def _op_group_update(self, fields: list[bytes]) -> bytes:
        pseud_b, collection_id, env_b = self._expect(fields, 3)
        self.server.handle_revoke(
            Point.from_bytes(pseud_b, self._curve), collection_id,
            Envelope.from_bytes(env_b), self.now)
        return b""

    # -- §IV.E.2 MHI ---------------------------------------------------------
    def _op_mhi_store(self, fields: list[bytes]) -> bytes:
        pseud_b, env_b, role_b, ct_b, tag_b = self._expect(fields, 5)
        envelope = Envelope.from_bytes(env_b)
        summary = pack_fields(role_b, hashlib.sha256(ct_b).digest(),
                              hashlib.sha256(tag_b).digest())
        if summary != envelope.payload:
            raise IntegrityError("MHI ciphertext/tag digest mismatch")
        self.server.handle_mhi_store(
            Point.from_bytes(pseud_b, self._curve), envelope,
            role_b.decode(), IbeCiphertext.from_bytes(ct_b, self._curve),
            MultiKeywordTag.from_bytes(tag_b, self._curve), self.now)
        return b""

    def _op_mhi_search(self, fields: list[bytes]) -> bytes:
        role_b, env_b, trapdoor_b, pkg_public_b = self._expect(fields, 4)
        reply, _matches = self.server.handle_mhi_search(
            role_b.decode(), Envelope.from_bytes(env_b),
            PeksTrapdoor.from_bytes(trapdoor_b, self._curve),
            Point.from_bytes(pkg_public_b, self._curve), self.now)
        return reply.to_bytes()

    # -- §V.A cross-domain ---------------------------------------------------
    def _op_xd_handshake(self, fields: list[bytes]) -> bytes:
        from repro.core.protocols import crossdomain
        if self.hibc_node is None or self.root_public is None:
            raise AuthenticationError(
                "this S-server holds no HIBC credential")
        tuple_b, ct_b, sig_b = self._expect(fields, 3)
        patient_tuple = tuple(tuple_b.decode().split("\x1f"))
        ciphertext = HibeCiphertext.from_bytes(ct_b, self._curve)
        handshake = crossdomain.CrossDomainHandshake(
            patient_tuple=patient_tuple, ciphertext=ciphertext,
            signature=HidsSignature.from_bytes(sig_b, self._curve))
        session_key = crossdomain.accept_session(
            self.hibc_node, handshake, self.server.params, self.root_public)
        handle = crossdomain.session_handle(
            patient_tuple, self.hibc_node.id_tuple, ciphertext)
        with self._sessions_lock:
            self._sessions[handle] = session_key
        return b""

    def _op_xd_search(self, fields: list[bytes]) -> bytes:
        handle, collection_id, env_b = self._expect(fields, 3)
        with self._sessions_lock:
            session_key = self._sessions.get(handle)
        if session_key is None:
            raise AuthenticationError("unknown cross-domain session")
        reply = self.server.handle_search_session(
            session_key, collection_id, Envelope.from_bytes(env_b), self.now)
        return reply.to_bytes()


class AServerEndpoint(Endpoint):
    """The state A-server's wire surface (emergency auth, role keys)."""

    # OP_ROLE_KEY only *reads* the outstanding-nounce table; the table
    # itself is written by OP_EMERGENCY_AUTH, which is journaled.
    MUTATING_OPS = frozenset({wire.OP_REGISTER_PDEVICE,
                              wire.OP_EMERGENCY_AUTH})

    def __init__(self, aserver: StateAServer) -> None:
        super().__init__()
        self.aserver = aserver
        # Registered P-devices' network addresses, for the step-3 push.
        self._pdevice_addresses: dict[bytes, str] = {}
        # Emergency-auth is NOT idempotent (each run mints a fresh
        # nounce and overwrites the outstanding one), so duplicate
        # deliveries from a faulty network must be absorbed here: the
        # physician's signed (request, t10) doubles as the replay token.
        self._auth_guard = ReplayGuard()
        self._ops = {
            wire.OP_REGISTER_PDEVICE: self._op_register,
            wire.OP_EMERGENCY_AUTH: self._op_emergency_auth,
            wire.OP_ROLE_KEY: self._op_role_key,
        }

    def guards(self) -> list:
        return [self._auth_guard]

    def export_state(self) -> bytes:
        addresses = [pack_fields(pd, address.encode())
                     for pd, address in
                     sorted(self._pdevice_addresses.items())]
        return pack_fields(self.aserver.export_state(),
                           pack_fields(*addresses),
                           _pack_guard(self._auth_guard))

    def load_state(self, blob: bytes) -> None:
        aserver_b, addresses_b, guard_b = unpack_fields(blob, expected=3)
        self.aserver.load_state(aserver_b)
        self._pdevice_addresses = {}
        for entry in unpack_fields(addresses_b):
            pd, address = unpack_fields(entry, expected=2)
            self._pdevice_addresses[pd] = address.decode()
        _unpack_guard(guard_b, self._auth_guard)

    def _op_register(self, fields: list[bytes]) -> bytes:
        pseud_b, address_b = self._expect(fields, 2)
        self.aserver.register_pdevice(
            Point.from_bytes(pseud_b, self.aserver.params.curve))
        self._pdevice_addresses[pseud_b] = address_b.decode()
        return b""

    def _op_emergency_auth(self, fields: list[bytes]) -> bytes:
        pid_b, request, t_req_b, sig_b, pd_b = self._expect(fields, 5)
        if self._auth_guard.seen(sig_b):
            raise ReplayError("duplicate emergency-auth request")
        curve = self.aserver.params.curve
        issue = self.aserver.authenticate_emergency(
            pid_b.decode(), request, wire.ts_from_bytes(t_req_b),
            IbsSignature.from_bytes(sig_b, curve),
            Point.from_bytes(pd_b, curve), self.now)
        # Step 3 rides to the registered P-device "simultaneously" with
        # the step-2 reply — one transmission over the wireless link.
        pd_address = self._pdevice_addresses.get(pd_b)
        if pd_address is None:
            raise AuthenticationError(
                "P-device registered no network address")
        passcode_frame = wire.make_frame(
            wire.OP_PASSCODE,
            issue.pdevice_ciphertext.to_bytes(),
            issue.pdevice_signature.to_bytes(),
            wire.ts_to_bytes(issue.t_issue))
        if self._transport is None:
            raise TransportError("endpoint is not attached to a transport")
        wire.parse_response(self._transport.notify(
            self.aserver.address, pd_address, passcode_frame,
            label="emergency/ibe-passcode"))
        # Remember only after the push succeeded: a client retrying a
        # transiently-failed push must be able to re-present the frame.
        self._auth_guard.check_and_remember(Envelope(
            label="emergency-auth", payload=b"",
            timestamp=wire.ts_from_bytes(t_req_b), tag=sig_b))
        return pack_fields(issue.encrypted_for_physician,
                           issue.physician_signature.to_bytes(),
                           wire.ts_to_bytes(issue.t_issue))

    def _op_role_key(self, fields: list[bytes]) -> bytes:
        pid_b, role_b = self._expect(fields, 2)
        return self.aserver.seal_role_key(pid_b.decode(), role_b.decode())


class EntityEndpoint(Endpoint):
    """A privileged entity's wire surface: ASSIGN delivery, and for
    P-devices the step-3 IBE passcode push."""

    MUTATING_OPS = frozenset({wire.OP_ASSIGN, wire.OP_PASSCODE})

    def __init__(self, entity: _PrivilegedEntity, params,
                 preshared_key: bytes | None = None) -> None:
        super().__init__()
        self.entity = entity
        self.params = params
        self._mu = preshared_key
        self._guard = ReplayGuard()
        self._ops = {wire.OP_ASSIGN: self._op_assign}
        if isinstance(entity, PDevice):
            self._ops[wire.OP_PASSCODE] = self._op_passcode

    def rekey(self, preshared_key: bytes) -> None:
        self._mu = preshared_key

    def guards(self) -> list:
        return [self._guard]

    def export_state(self) -> bytes:
        # μ is re-established by the bind-time factory (it comes from the
        # patient, not from disk), so it is not part of the durable state.
        entity_blob = (self.entity.export_state()
                       if hasattr(self.entity, "export_state") else b"")
        return pack_fields(entity_blob, _pack_guard(self._guard))

    def load_state(self, blob: bytes) -> None:
        entity_blob, guard_b = unpack_fields(blob, expected=2)
        if entity_blob:
            self.entity.load_state(entity_blob)
        _unpack_guard(guard_b, self._guard)

    def _op_assign(self, fields: list[bytes]) -> bytes:
        (env_b,) = self._expect(fields, 1)
        if self._mu is None:
            raise AccessDenied(
                "%s shares no pre-established key μ" % self.entity.name)
        envelope = Envelope.from_bytes(env_b)
        payload = open_envelope(self._mu, envelope, self.now, self._guard,
                                expected_label="assign")
        plaintext = AuthenticatedCipher(self._mu).decrypt(payload)
        self.entity.receive_assign(
            AssignPackage.from_bytes(plaintext, self.params))
        return b""

    def _op_passcode(self, fields: list[bytes]) -> bytes:
        ct_b, sig_b, t_issue_b = self._expect(fields, 3)
        package = self.entity.package
        if package is None:
            raise AccessDenied("P-device holds no ASSIGN package")
        plaintext = decrypt_with_point(
            package.pseudonym.private,
            IbeCiphertext.from_bytes(ct_b, self.params.curve))
        pid_b, nounce, _t11 = unpack_fields(plaintext, expected=3)
        self.entity.receive_passcode(
            pid_b.decode(), nounce,
            t_issue=wire.ts_from_bytes(t_issue_b),
            signature=IbsSignature.from_bytes(sig_b, self.params.curve))
        return b""


# -- binding helpers ---------------------------------------------------------
def bind_sserver(transport, server: StorageServer, hibc_node=None,
                 root_public: Point | None = None, engine=None,
                 federation_key: bytes | None = None):
    """Ensure an :class:`SServerEndpoint` serves ``server.address``.

    When the transport already routes the address to another process
    (static socket routes), nothing is bound locally and None returns.

    ``engine`` (a :class:`repro.crypto.engine.CryptoEngine`) installs a
    process-parallel crypto pool on the served S-server; the batched
    search handlers then fan their pairing work across its workers.
    Passing None leaves the server's existing engine (or the
    ``HCPP_CRYPTO_WORKERS`` process default) in force.

    ``federation_key`` marks the server as a federation shard: the
    internal OP_SEARCH_SHARD/OP_SEARCH_MERGE legs are accepted when
    their tags verify under it (None — the default — rejects them all).
    """
    endpoint = transport.endpoint_at(server.address)
    if engine is not None:
        server.engine = engine
    if endpoint is None:
        if transport.has_route(server.address):
            return None
        endpoint = SServerEndpoint(server, hibc_node=hibc_node,
                                   root_public=root_public,
                                   federation_key=federation_key)
        transport.bind(server.address, endpoint)
        return endpoint
    if hibc_node is not None:
        endpoint.hibc_node = hibc_node
        endpoint.root_public = root_public
    if federation_key is not None:
        endpoint.federation_key = federation_key
    return endpoint


def bind_aserver(transport, aserver: StateAServer):
    endpoint = transport.endpoint_at(aserver.address)
    if endpoint is None:
        if transport.has_route(aserver.address):
            return None
        endpoint = AServerEndpoint(aserver)
        transport.bind(aserver.address, endpoint)
    return endpoint


def bind_entity(transport, entity: _PrivilegedEntity, params,
                preshared_key: bytes | None = None):
    endpoint = transport.endpoint_at(entity.address)
    if endpoint is None:
        if transport.has_route(entity.address):
            return None
        endpoint = EntityEndpoint(entity, params,
                                  preshared_key=preshared_key)
        transport.bind(entity.address, endpoint)
        return endpoint
    if preshared_key is not None:
        endpoint.rekey(preshared_key)
    return endpoint
