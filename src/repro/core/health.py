"""Per-shard health state for the federation router.

Two small, deterministic primitives the router composes into
health-gated routing (docs/architecture.md, "Shard lifecycle"):

* :class:`CircuitBreaker` — the classic closed/open/half-open state
  machine over *consecutive* failures.  Time never comes from the wall
  clock: the clock is injected (the router passes the transport's
  ``now``), so a simulated-time chaos run drives breaker transitions
  deterministically.  The open→half-open reset timeout carries seeded
  jitter so N breakers tripped by the same outage do not re-probe a
  recovering shard in lockstep — and the jitter is derived from a
  SHA-256 counter stream, not :mod:`random` (this module sits below the
  transport layer, where the crypto-hygiene lint bans the stdlib RNG),
  so a seeded run replays the exact same timeout schedule.
* :class:`HealthTable` — one breaker per shard address plus a bounded
  latency sample window, from which the router derives the p99 delay
  budget after which a slow scatter leg is *hedged* (re-sent to the
  same shard, first answer wins).

Like :mod:`repro.core.shard`, this module is importable from anywhere:
stdlib plus :mod:`repro.exceptions` only (enforced by the hcpplint
layering contract).
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque

from repro.exceptions import ParameterError

__all__ = ["CircuitBreaker", "HealthTable",
           "STATE_CLOSED", "STATE_OPEN", "STATE_HALF_OPEN"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


def _unit_draw(seed: int, name: bytes, counter: int) -> float:
    """The ``counter``-th deterministic uniform draw in [0, 1).

    A domain-separated SHA-256 counter stream: same (seed, name) →
    same sequence in every process, under every ``PYTHONHASHSEED``.
    """
    digest = hashlib.sha256(
        b"hcpp-health-jitter:%d:%s:%d" % (seed, name, counter)).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class CircuitBreaker:
    """Consecutive-failure circuit breaker with an injected clock.

    * **closed** — requests flow; ``failure_threshold`` consecutive
      failures trip the breaker open.
    * **open** — :meth:`allow` refuses until the jittered reset timeout
      has elapsed on the injected clock, then transitions to half-open.
    * **half-open** — exactly one probe is allowed through; its success
      closes the breaker, its failure re-opens it (with a fresh
      jittered timeout).

    Thread-safe: the router's scatter pool consults one breaker from
    many worker threads.
    """

    def __init__(self, clock, *, failure_threshold: int = 3,
                 reset_timeout_s: float = 1.0, jitter: float = 0.5,
                 seed: int = 0, name: bytes = b"") -> None:
        if failure_threshold < 1:
            raise ParameterError("failure_threshold must be >= 1")
        if reset_timeout_s < 0:
            raise ParameterError("reset_timeout_s cannot be negative")
        if not 0.0 <= jitter <= 1.0:
            raise ParameterError("jitter must be in [0, 1]")
        self._clock = clock
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.jitter = jitter
        self._seed = seed
        self._name = bytes(name)
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._timeout_s = reset_timeout_s
        self._probe_in_flight = False
        #: How many times this breaker has tripped open (diagnostics,
        #: and the counter that advances the jitter stream).
        self.trips = 0

    @property
    def state(self) -> str:
        """The current state, after applying any due open→half-open
        transition (so inspecting the state and calling :meth:`allow`
        agree on what the clock says)."""
        with self._lock:
            self._tick()
            return self._state

    def allow(self) -> bool:
        """May a request be sent to this shard right now?

        In half-open state the first caller takes the single probe
        slot; concurrent callers are refused until the probe's outcome
        is recorded.
        """
        with self._lock:
            self._tick()
            if self._state == STATE_CLOSED:
                return True
            if self._state == STATE_HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = STATE_CLOSED
            self._failures = 0
            self._probe_in_flight = False

    def record_failure(self) -> None:
        with self._lock:
            self._tick()
            self._failures += 1
            if (self._state == STATE_HALF_OPEN
                    or self._failures >= self.failure_threshold):
                self._trip()

    def _tick(self) -> None:
        # Caller holds self._lock.
        if (self._state == STATE_OPEN
                and self._clock() - self._opened_at >= self._timeout_s):
            self._state = STATE_HALF_OPEN
            self._probe_in_flight = False

    def _trip(self) -> None:
        # Caller holds self._lock.  Full jitter on the reset timeout:
        # nominal · (1 + jitter·u), u ∈ [0, 1) from the seeded stream.
        self.trips += 1
        draw = _unit_draw(self._seed, self._name, self.trips)
        self._timeout_s = self.reset_timeout_s * (1.0 + self.jitter * draw)
        self._state = STATE_OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False


class HealthTable:
    """Breakers plus latency accounting for a set of shard addresses.

    The latency window feeds the hedging delay budget: once at least
    ``min_samples`` scatter legs have been observed, a leg still
    pending after the window's p99 is hedged.  Latency is diagnostic
    wall-time (hedging only runs on concurrent transports, where legs
    occupy real threads); breaker time is the injected clock.
    """

    def __init__(self, addresses, clock, *, seed: int = 0,
                 failure_threshold: int = 3, reset_timeout_s: float = 1.0,
                 jitter: float = 0.5, window: int = 128,
                 min_samples: int = 20) -> None:
        self._clock = clock
        self._seed = seed
        self._failure_threshold = failure_threshold
        self._reset_timeout_s = reset_timeout_s
        self._jitter = jitter
        self.min_samples = min_samples
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._samples: deque[float] = deque(maxlen=window)
        self.hedges_sent = 0
        self.hedges_won = 0
        for address in addresses:
            self.breaker(address)

    def breaker(self, address: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(address)
            if breaker is None:
                breaker = CircuitBreaker(
                    self._clock, failure_threshold=self._failure_threshold,
                    reset_timeout_s=self._reset_timeout_s,
                    jitter=self._jitter, seed=self._seed,
                    name=address.encode())
                self._breakers[address] = breaker
            return breaker

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(seconds)

    def hedge_budget_s(self) -> "float | None":
        """The p99 of recent scatter-leg latencies, or None while the
        window is too thin to estimate a tail."""
        with self._lock:
            if len(self._samples) < self.min_samples:
                return None
            ordered = sorted(self._samples)
            return ordered[int(0.99 * (len(ordered) - 1))]

    def snapshot(self) -> "dict[str, str]":
        """Current breaker state per shard (diagnostics/CLI)."""
        with self._lock:
            breakers = dict(self._breakers)
        return {address: breaker.state
                for address, breaker in sorted(breakers.items())}
