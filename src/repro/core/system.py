"""One-call HCPP deployment builder (the paper's Fig. 1, executable).

:func:`build_system` assembles the whole architecture:

* a federal A-server (HIBC root) with one or more state A-servers,
* per state: hospitals, each with an S-server and enrolled physicians,
* a patient with family and P-device, wired to the topology of Fig. 1
  (patient LAN internals wired; patient↔S-server wireless;
  hospital/A-server over the Internet; physician↔patient-LAN physical).

Everything is seeded from a single DRBG, so whole-system experiments are
reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.params import DomainParams, test_params
from repro.crypto.rng import HmacDrbg
from repro.net.link import LinkClass
from repro.net.sim import Network
from repro.core.aserver import FederalAServer, StateAServer
from repro.core.entities import Family, Patient, PDevice, Physician
from repro.core.sserver import StorageServer
from repro.exceptions import ParameterError


@dataclass
class Hospital:
    """One hospital: its S-server plus enrolled physicians."""

    name: str
    sserver: StorageServer
    physicians: dict[str, Physician] = field(default_factory=dict)


@dataclass
class HcppSystem:
    """A fully wired HCPP deployment."""

    params: DomainParams
    rng: HmacDrbg
    network: Network
    federal: FederalAServer
    state: StateAServer
    hospitals: dict[str, Hospital]
    patient: Patient
    family: Family
    pdevice: PDevice

    @property
    def sserver(self) -> StorageServer:
        """The first hospital's S-server (the common single-site case)."""
        return next(iter(self.hospitals.values())).sserver

    def physician(self, physician_id: str) -> Physician:
        for hospital in self.hospitals.values():
            if physician_id in hospital.physicians:
                return hospital.physicians[physician_id]
        raise ParameterError("unknown physician %r" % physician_id)

    def any_physician(self) -> Physician:
        hospital = next(iter(self.hospitals.values()))
        return next(iter(hospital.physicians.values()))


def build_system(seed: bytes = b"hcpp-system",
                 params: DomainParams | None = None,
                 n_hospitals: int = 1,
                 physicians_per_hospital: int = 2,
                 state_name: str = "TN") -> HcppSystem:
    """Assemble and wire a complete HCPP deployment."""
    if n_hospitals < 1 or physicians_per_hospital < 1:
        raise ParameterError("need at least one hospital and one physician")
    params = params or test_params()
    rng = HmacDrbg(seed)
    network = Network(rng.fork("network"))

    federal = FederalAServer(params, rng.fork("federal"))
    state = federal.create_state_server(state_name)

    # Patient-side entities.
    temp_pair = state.issue_temporary_pool(1)[0]
    patient = Patient("alice", params, state.public_key, temp_pair,
                      rng.fork("patient"))
    family = Family("bob")
    pdevice = PDevice("alice-wearable", params, rng.fork("pdevice"))

    # Topology: register nodes first, then links per Fig. 1.
    for node in (patient.address, family.address, pdevice.address,
                 state.address):
        network.add_node(node)
    network.connect(patient.address, family.address, LinkClass.WIRED_LAN)
    network.connect(patient.address, pdevice.address, LinkClass.WIRED_LAN)
    network.connect(pdevice.address, state.address, LinkClass.WIRELESS)

    hospitals: dict[str, Hospital] = {}
    for h in range(n_hospitals):
        hospital_name = "%s-hospital-%d" % (state_name.lower(), h)
        federal.create_hospital_node(state_name, hospital_name)
        sserver = StorageServer(
            hospital_name, params,
            state.enroll("sserver:" + hospital_name),
            rng.fork("sserver-%d" % h))
        hospital = Hospital(name=hospital_name, sserver=sserver)
        network.add_node(sserver.address)
        network.connect(patient.address, sserver.address, LinkClass.WIRELESS)
        network.connect(family.address, sserver.address, LinkClass.WIRELESS)
        network.connect(pdevice.address, sserver.address, LinkClass.WIRELESS)
        network.connect(sserver.address, state.address, LinkClass.INTERNET)
        for i in range(physicians_per_hospital):
            physician_id = "dr-%s-%d-%d" % (state_name.lower(), h, i)
            physician = Physician(
                physician_id, hospital_name,
                state.enroll(physician_id), params,
                rng.fork(physician_id))
            hospital.physicians[physician_id] = physician
            network.add_node(physician.address)
            network.connect(physician.address, sserver.address,
                            LinkClass.WIRED_LAN)
            network.connect(physician.address, state.address,
                            LinkClass.INTERNET)
            # Physical contact with the patient LAN (Fig. 1 double line).
            for lan_node in (patient.address, family.address,
                             pdevice.address):
                network.connect(physician.address, lan_node,
                                LinkClass.PHYSICAL)
        hospitals[hospital_name] = hospital

    return HcppSystem(params=params, rng=rng, network=network,
                      federal=federal, state=state, hospitals=hospitals,
                      patient=patient, family=family, pdevice=pdevice)
