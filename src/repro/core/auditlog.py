"""Tamper-evident audit log for the A-server's traces.

The accountability story (§V.A) relies on the A-server's TR log being
available and honest after the fact.  A malicious insider who *deletes or
rewrites* traces would break it — the `missing TR` branch of the auditor
flags deletion, and this module makes rewriting detectable too: traces are
committed into an **append-only hash chain with Merkle checkpoints**, so

* any third party holding one checkpoint root can verify a presented
  trace's inclusion with a logarithmic proof, and
* any retroactive modification of a committed trace invalidates every
  later chain link.

This is the standard transparency-log hardening (Certificate-Transparency
style) applied to HCPP's TR store; it is an extension beyond the paper's
text, justified by its accountability requirement.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.exceptions import IntegrityError, ParameterError

__all__ = ["AuditLog", "InclusionProof", "Checkpoint"]


def _leaf_hash(data: bytes) -> bytes:
    return hashlib.sha256(b"\x00leaf:" + data).digest()


def _node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(b"\x01node:" + left + right).digest()


@dataclass(frozen=True)
class Checkpoint:
    """A signed-off log state: (size, merkle_root, chain_head)."""

    size: int
    merkle_root: bytes
    chain_head: bytes


@dataclass(frozen=True)
class InclusionProof:
    """Audit path for one leaf against a checkpoint's Merkle root."""

    index: int
    leaf_hash: bytes
    siblings: tuple[tuple[bytes, bool], ...]  # (hash, sibling_is_right)

    def verify(self, root: bytes) -> bool:
        current = self.leaf_hash
        for sibling, is_right in self.siblings:
            if is_right:
                current = _node_hash(current, sibling)
            else:
                current = _node_hash(sibling, current)
        return current == root


class AuditLog:
    """Append-only log: hash chain per entry + Merkle tree over all."""

    def __init__(self) -> None:
        self._entries: list[bytes] = []
        self._leaves: list[bytes] = []
        self._chain: list[bytes] = [hashlib.sha256(b"audit-genesis").digest()]
        # Incrementally-maintained Merkle levels.  A new leaf is always
        # the rightmost leaf, so only the rightmost node of each level
        # (and any padding duplicate, which sits on that same path) can
        # change — append cost is O(log n) instead of a full rebuild.
        self._level_cache: list[list[bytes]] = []

    # -- append ------------------------------------------------------------
    def append(self, entry: bytes) -> int:
        """Commit one serialized trace; returns its index."""
        index = len(self._entries)
        self._entries.append(entry)
        leaf = _leaf_hash(entry)
        self._leaves.append(leaf)
        self._chain.append(hashlib.sha256(
            b"link:" + self._chain[-1] + leaf).digest())
        self._bubble(leaf)
        return index

    def _bubble(self, leaf: bytes) -> None:
        # Caller just appended `leaf` to self._leaves; refresh the cached
        # levels along the rightmost path only.
        if not self._level_cache:
            self._level_cache = [[leaf]]
            return
        cache = self._level_cache
        cache[0].append(leaf)
        level = 0
        while len(cache[level]) > 1:
            nodes = cache[level]
            parent_index = (len(nodes) - 1) // 2
            left = nodes[2 * parent_index]
            right = (nodes[2 * parent_index + 1]
                     if 2 * parent_index + 1 < len(nodes) else left)
            parent = _node_hash(left, right)
            if level + 1 == len(cache):
                cache.append([])
            if parent_index < len(cache[level + 1]):
                cache[level + 1][parent_index] = parent
            else:
                cache[level + 1].append(parent)
            level += 1

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, index: int) -> bytes:
        return self._entries[index]

    # -- merkle ------------------------------------------------------------
    def _levels(self) -> list[list[bytes]]:
        if not self._leaves:
            return [[hashlib.sha256(b"empty").digest()]]
        return self._level_cache

    def _levels_naive(self) -> list[list[bytes]]:
        """Full rebuild from the leaves — the reference the incremental
        cache must match (kept for the equivalence test and auditors)."""
        if not self._leaves:
            return [[hashlib.sha256(b"empty").digest()]]
        levels = [list(self._leaves)]
        while len(levels[-1]) > 1:
            current = levels[-1]
            parents = []
            for i in range(0, len(current), 2):
                left = current[i]
                right = current[i + 1] if i + 1 < len(current) else left
                parents.append(_node_hash(left, right))
            levels.append(parents)
        return levels

    def checkpoint(self) -> Checkpoint:
        """The state a verifier should pin (published / signed by policy)."""
        return Checkpoint(size=len(self._entries),
                          merkle_root=self._levels()[-1][0],
                          chain_head=self._chain[-1])

    def prove_inclusion(self, index: int) -> InclusionProof:
        if not 0 <= index < len(self._leaves):
            raise ParameterError("index out of range")
        levels = self._levels()
        siblings: list[tuple[bytes, bool]] = []
        position = index
        for level in levels[:-1]:
            if position % 2 == 0:
                sibling_index = position + 1
                sibling = (level[sibling_index]
                           if sibling_index < len(level) else level[position])
                siblings.append((sibling, True))
            else:
                siblings.append((level[position - 1], False))
            position //= 2
        return InclusionProof(index=index, leaf_hash=self._leaves[index],
                              siblings=tuple(siblings))

    # -- verification --------------------------------------------------------
    def verify_chain(self) -> None:
        """Recompute the hash chain; raises on any rewritten entry."""
        head = hashlib.sha256(b"audit-genesis").digest()
        for i, entry in enumerate(self._entries):
            head = hashlib.sha256(b"link:" + head
                                  + _leaf_hash(entry)).digest()
            if head != self._chain[i + 1]:
                raise IntegrityError("audit log rewritten at entry %d" % i)

    @staticmethod
    def verify_entry(entry: bytes, proof: InclusionProof,
                     checkpoint: Checkpoint) -> bool:
        """Third-party check: is ``entry`` committed under ``checkpoint``?"""
        if proof.leaf_hash != _leaf_hash(entry):
            return False
        return proof.verify(checkpoint.merkle_root)
