"""Durable endpoints: state-machine replication at the wire-frame boundary.

A :class:`DurableEndpoint` wraps a dispatch endpoint and journals every
*successful mutating frame* (the opcodes in the endpoint's
``MUTATING_OPS``) to an append-only journal — fsynced **before** the
response leaves, so an acknowledged mutation is on stable storage.
Because the journal replays through the very same ``handle_frame``
handlers, all six HCPP protocols gain crash consistency without a line
of per-protocol persistence code.

Recovery = load the newest usable snapshot (if any) + replay the journal
suffix.  Replay runs against a :class:`_RecoveryTransport` whose clock
reads each record's journaled timestamp (freshness windows judge frames
against their original time) and which absorbs outbound pushes (the
A-server's step-3 delivery already happened before the crash — the
P-device journals it on *its own* journal).

Three state surfaces are wrapped:

* S-server — collections, MHI blobs, broadcast headers;
* A-server — TR traces + audit-log leaves; recovery re-runs
  ``verify_chain()`` and cross-checks the rebuilt Merkle checkpoint
  against the one journaled with the last committed frame;
* P-device — RD records (journaled via the ``on_record`` hook, since
  RDs are minted client-side, not by an incoming frame), ASSIGN/REVOKE
  group state, and passcode-session state.

Replay-guard windows (satellite: a restarted endpoint must not reopen
its replay window) persist two ways: read-only frames journal their
guard commitments as ``K_GUARD`` records; mutating frames regenerate
theirs during replay, so guard journaling is suspended while one is
being handled.
"""

from __future__ import annotations

import os
import threading

from repro.core import wire
from repro.core.accountability import DeviceRecord
from repro.core.auditlog import AuditLog
from repro.core.dispatch import (AServerEndpoint, EntityEndpoint,
                                 SServerEndpoint)
from repro.core.protocols.messages import (ReplayGuard, pack_fields, ts_ms,
                                           unpack_fields)
from repro.exceptions import (JournalCorruptionError, RecoveryError,
                              TransientTransportError)
from repro.store.journal import (HEADER_SIZE, K_FRAME, K_GUARD, K_KEY,
                                 K_META, K_RD, K_ROSTER, K_SNAP,
                                 JournalWriter, read_journal)
from repro.store.snapshot import (list_snapshot_ids, read_snapshot,
                                  write_snapshot)

__all__ = ["DurableStore", "DurableEndpoint", "DurableSServerEndpoint",
           "DurableAServerEndpoint", "DurablePDeviceEndpoint",
           "bind_durable_sserver", "bind_durable_aserver",
           "bind_durable_pdevice"]

#: Default torn-write cut: header + the 9-byte body framing + 3 payload
#: bytes — deep enough that a prefix of the real record hits the disk.
DEFAULT_TORN_CUT = HEADER_SIZE + 12

_STATUS_OK = b"\x00"


class DurableStore:
    """One endpoint's durable home: ``<data_dir>/<name>.journal`` plus
    its ``<name>.snap.<id>`` snapshot series."""

    def __init__(self, data_dir: str, name: str, *,
                 fsync_policy: str = "always",
                 snapshot_every: int = 0) -> None:
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.name = name
        self.fsync_policy = fsync_policy
        #: Mutations between automatic snapshots (0 = journal-only).
        self.snapshot_every = snapshot_every
        self.journal_path = os.path.join(data_dir, name + ".journal")
        self._writer: JournalWriter | None = None
        self.torn_repairs = 0
        self.last_torn_loss = 0

    def writer(self) -> JournalWriter:
        if self._writer is None:
            self._writer = JournalWriter(self.journal_path,
                                         fsync_policy=self.fsync_policy)
        return self._writer

    def drop_writer(self) -> None:
        """Forget the open writer (crash simulation / pre-recovery)."""
        if self._writer is not None:
            try:
                self._writer.close()
            except OSError:  # pragma: no cover - already torn shut
                pass
            self._writer = None

    def read(self, *, repair: bool = True):
        def on_torn(tail_offset: int, size: int) -> None:
            self.torn_repairs += 1
            self.last_torn_loss = size - tail_offset
        return read_journal(self.journal_path, repair=repair,
                            on_torn=on_torn)


class _RecoveryTransport:
    """Stand-in transport during journal replay.

    ``now`` is set to each replayed record's journaled timestamp, so
    envelope freshness and replay-guard pruning behave exactly as they
    did originally.  Outbound traffic is absorbed with an OK ack: the
    original delivery happened before the crash, and the receiving
    durable endpoint owns that state on its own journal.
    """

    def __init__(self) -> None:
        self.now = 0.0

    def notify(self, src: str, dst: str, frame: bytes,
               label: str = "") -> bytes:
        return wire.ok_response()

    def request(self, src: str, dst: str, frame: bytes, label: str = "",
                reply_label: str | None = None) -> bytes:
        return wire.ok_response()


class DurableEndpoint:
    """Crash-consistent wrapper around one dispatch endpoint.

    The wrapped ("inner") endpoint is built by ``factory()`` — which
    must return it with *empty* mutable state — and every bit of its
    durable state is then reconstructed from disk.  ``crash()`` discards
    the inner endpoint entirely; ``recover()`` builds a fresh one and
    replays the journal into it.  The invariant: in-memory state is
    always a pure function of (factory, journal, snapshots).
    """

    def __init__(self, store: DurableStore, factory, address: str) -> None:
        self._store = store
        self._factory = factory
        self.address = address
        self._lock = threading.RLock()
        self._transport = None
        self._inner = None
        # Thread currently inside a mutating handler (guard journaling
        # is suspended for that thread only: replay regenerates its
        # commitments, but *concurrent* read-op guards must still land).
        self._suspend_thread: int | None = None
        self._fault_policy = None
        self._snapshot_id = 0
        self._mutations = 0
        self.recoveries = 0
        self.recover()

    # -- transport surface ---------------------------------------------------
    def attach(self, transport) -> None:
        self._transport = transport
        if self._inner is not None:
            self._inner.attach(transport)

    @property
    def now(self) -> float:
        return self._transport.now

    def __getattr__(self, name: str):
        # Delegate everything else (server/aserver/entity accessors,
        # MUTATING_OPS, ...) to the live inner endpoint.
        inner = object.__getattribute__(self, "_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    # -- the wire boundary ---------------------------------------------------
    def handle_frame(self, frame: bytes) -> bytes:
        try:
            opcode, _ = wire.parse_frame(frame)
        except Exception:
            opcode = None
        with self._lock:
            inner = self._inner
            if inner is None:
                raise TransientTransportError(
                    "durable endpoint %r is down" % self.address)
            if opcode in type(inner).MUTATING_OPS:
                return self._handle_mutating(inner, frame)
        # Read-only frame: handled *outside* the wrapper lock, so the
        # pipelined async backend can run reads concurrently (with each
        # other and with at most one writer — the inner endpoint's
        # reentrancy contract).  Durability is untouched: the only disk
        # write a read can cause is its guard commitment, and the
        # on_remember listener takes this lock itself.
        response = inner.handle_frame(frame)
        with self._lock:
            # A guard-listener append may have torn mid-handling (an
            # armed crash): the inner endpoint's blanket exception
            # wrapper turned that into an error response, but a dead
            # process answers nothing — surface it as the transport
            # refusal it really is so the client's retry fires.
            if self._inner is None:
                raise TransientTransportError(
                    "durable endpoint %r crashed mid-write"
                    % self.address)
        return response

    def _handle_mutating(self, inner, frame: bytes) -> bytes:
        # Caller holds self._lock — mutations are single-writer through
        # here AND through the inner endpoint's own _write_lock, so the
        # journal append order is the order handlers ran in.
        #
        # Suspend guard journaling for this thread: replay will
        # regenerate the guard commitment through the same handler, and
        # journaling it separately would make the replayed tag collide
        # with the replayed frame.
        # The journaled timestamp is the clock the handler *started*
        # under: nested pushes (the A-server's step 3) advance the
        # clock mid-handler, and replay must mint byte-identical
        # artifacts (t_issue in the TR) from the original time.
        started = self._transport.now if self._transport else 0.0
        self._suspend_thread = threading.get_ident()
        try:
            response = inner.handle_frame(frame)
        finally:
            self._suspend_thread = None
        if response[:1] == _STATUS_OK:
            # Commit point: the record is fsynced before the ack
            # leaves.  An acknowledged mutation survives any crash.
            self._commit(frame, started)
        return response

    def _commit(self, frame: bytes, started: float) -> None:
        # Caller holds self._lock.
        timestamp = ts_ms(started)
        payload = pack_fields(frame, self._commit_extra())
        try:
            self._store.writer().append(K_FRAME, payload, timestamp)
        except JournalCorruptionError:
            # The armed torn write fired: the process died mid-append.
            # The mutation was never acknowledged, so losing it is
            # correct — the client's retry will re-apply it after
            # recovery truncates the torn tail.
            self._die()
            raise TransientTransportError(
                "durable endpoint %r crashed mid-write" % self.address)
        self._mutations += 1
        self._maybe_snapshot()

    def _commit_extra(self) -> bytes:
        """Per-endpoint commitment journaled beside each mutating frame
        (the A-server stores its audit checkpoint here)."""
        return b""

    # -- crash / restart lifecycle -------------------------------------------
    def register_with(self, fault_policy) -> None:
        """Let a :class:`FaultPolicy` drive this endpoint's lifecycle:
        ``policy.crash(address)`` discards memory, ``restart`` recovers."""
        self._fault_policy = fault_policy
        fault_policy.register_recovery(self.address, self.crash,
                                       self.recover)

    def crash(self, during_write: bool = False) -> None:
        """Simulate process death.

        ``during_write=True`` arms the journal so the *next* mutation's
        append reaches disk only partially (the torn-tail path); the
        state discard then happens at that moment, mid-frame.
        """
        with self._lock:
            if during_write:
                self._store.writer().arm_torn_write(DEFAULT_TORN_CUT)
                return
            self._die(mark=False)

    def _die(self, mark: bool = True) -> None:
        # Caller holds self._lock.
        self._inner = None
        self._store.drop_writer()
        if mark and self._fault_policy is not None:
            self._fault_policy.mark_crashed(self.address)

    def recover(self) -> None:
        """Rebuild the endpoint from disk: snapshot + journal suffix."""
        with self._lock:
            self._store.drop_writer()
            records = self._store.read(repair=True)
            inner = self._factory()
            stub = _RecoveryTransport()
            inner.attach(stub)
            self._configure_inner(inner)

            # Latest usable snapshot wins; a damaged one falls back to
            # an earlier one (the journal is never truncated, so a full
            # replay from genesis always remains possible).
            start = 0
            for position, record in enumerate(records):
                if record.kind != K_SNAP:
                    continue
                snapshot_id = int.from_bytes(record.payload, "big")
                try:
                    body = read_snapshot(self._store.data_dir,
                                         self._store.name, snapshot_id)
                except JournalCorruptionError:
                    continue
                inner.load_state(body)
                start = position + 1

            # Wrapper-level config (the P-device's μ) is not part of the
            # snapshot body; re-apply the last value committed at or
            # before the replay start so the suffix decrypts.
            last_key = None
            for record in records[:start]:
                if record.kind == K_KEY:
                    last_key = record
            if last_key is not None:
                self._replay_record(inner, last_key)

            last_extra = None
            for record in records[start:]:
                if record.kind in (K_META, K_SNAP):
                    if (record.kind == K_META
                            and record.payload != self._store.name.encode()):
                        raise RecoveryError(
                            "journal %r belongs to endpoint %r"
                            % (self._store.journal_path,
                               record.payload.decode(errors="replace")))
                    continue
                if record.kind == K_FRAME:
                    frame, extra = unpack_fields(record.payload, expected=2)
                    stub.now = record.ts_ms / 1000.0
                    response = inner.handle_frame(frame)
                    if response[:1] != _STATUS_OK:
                        try:
                            wire.parse_response(response)
                        except Exception as exc:
                            raise RecoveryError(
                                "journaled frame no longer replays at %r: %s"
                                % (self.address, exc)) from exc
                    last_extra = extra
                elif record.kind == K_GUARD:
                    index_b, tag, ts_b = unpack_fields(record.payload,
                                                       expected=3)
                    guards = inner.guards()
                    if index_b[0] < len(guards):
                        guards[index_b[0]].insert(tag, float(ts_b.decode()))
                else:
                    self._replay_record(inner, record)

            self._verify_recovered(inner, last_extra)
            self._attach_listeners(inner)
            if self._transport is not None:
                inner.attach(self._transport)
            self._inner = inner
            self._mutations = 0
            existing = list_snapshot_ids(self._store.data_dir,
                                         self._store.name)
            self._snapshot_id = (existing[-1] + 1) if existing else 0
            self.recoveries += 1
            if not records:
                self._store.writer().append(K_META,
                                            self._store.name.encode())

    def _configure_inner(self, inner) -> None:
        """Re-apply bind-time configuration (credentials, pre-shared
        keys) that lives outside the journal."""

    def _replay_record(self, inner, record) -> None:
        """Replay an endpoint-specific record kind (K_RD, K_KEY, ...).

        Caller holds self._lock.
        """
        raise RecoveryError("unexpected %r record in %r journal"
                            % (record.kind, self._store.name))

    def _verify_recovered(self, inner, last_extra: bytes | None) -> None:
        """Post-replay integrity check (endpoint-specific)."""

    def _attach_listeners(self, inner) -> None:
        for index, guard in enumerate(inner.guards()):
            guard.on_remember = self._make_guard_listener(index)

    def _make_guard_listener(self, index: int):
        def on_remember(tag: bytes, timestamp: float) -> None:
            with self._lock:
                if (self._suspend_thread == threading.get_ident()
                        or self._inner is None):
                    return
                try:
                    self._store.writer().append(
                        K_GUARD,
                        pack_fields(bytes([index]), tag,
                                    repr(timestamp).encode()),
                        ts_ms(timestamp))
                except JournalCorruptionError:
                    self._die()
                    raise TransientTransportError(
                        "durable endpoint %r crashed mid-write"
                        % self.address)
        return on_remember

    # -- snapshots ------------------------------------------------------------
    def _maybe_snapshot(self) -> None:
        # Caller holds self._lock.
        if (self._store.snapshot_every > 0
                and self._mutations >= self._store.snapshot_every):
            self.snapshot()

    def snapshot(self) -> int:
        """Write an atomic snapshot now; returns its id.  Recovery after
        this point loads the snapshot and replays only the suffix."""
        with self._lock:
            if self._inner is None:
                raise RecoveryError("cannot snapshot a crashed endpoint")
            snapshot_id = self._snapshot_id
            body = self._inner.export_state()
            write_snapshot(self._store.data_dir, self._store.name,
                           snapshot_id, body)
            timestamp = ts_ms(self._transport.now) if self._transport else 0
            self._store.writer().append(K_SNAP,
                                        snapshot_id.to_bytes(4, "big"),
                                        timestamp)
            self._snapshot_id += 1
            self._mutations = 0
            return snapshot_id


class DurableSServerEndpoint(DurableEndpoint):
    """Durable S-server: collections, MHI blobs, broadcast headers."""

    def __init__(self, store: DurableStore, factory, address: str, *,
                 hibc_node=None, root_public=None,
                 federation_key=None) -> None:
        # Bind-time configuration must be armed *before* the base
        # constructor runs recovery: a journal can hold federation-
        # sealed frames (a rebalance's OP_MIGRATE_ACK installs), which
        # only replay once the rebuilt endpoint holds the key.
        self._hibc_node = hibc_node
        self._root_public = root_public
        self._federation_key = federation_key
        super().__init__(store, factory, address)

    # bind_sserver assigns these on an already-bound endpoint when the
    # cross-domain flow hands the server an HIBC credential; remember
    # them on the wrapper so every post-crash rebuild re-applies them.
    @property
    def hibc_node(self):
        return self._hibc_node

    @hibc_node.setter
    def hibc_node(self, value) -> None:
        self._hibc_node = value
        if self._inner is not None:
            self._inner.hibc_node = value

    @property
    def root_public(self):
        return self._root_public

    @root_public.setter
    def root_public(self, value) -> None:
        self._root_public = value
        if self._inner is not None:
            self._inner.root_public = value

    # The federation-internal frame key, like the HIBC credential, is
    # bind-time configuration (re-derived from the identity key, never
    # journaled) — kept on the wrapper so recovery re-arms the rebuilt
    # endpoint's SHARD/MERGE authentication.
    @property
    def federation_key(self):
        return self._federation_key

    @federation_key.setter
    def federation_key(self, value) -> None:
        self._federation_key = value
        if self._inner is not None:
            self._inner.federation_key = value

    def _configure_inner(self, inner) -> None:
        inner.hibc_node = self._hibc_node
        inner.root_public = self._root_public
        inner.federation_key = self._federation_key


class DurableAServerEndpoint(DurableEndpoint):
    """Durable A-server: TR traces and the tamper-evident audit log.

    Every committed frame carries the post-append audit checkpoint;
    recovery re-verifies the whole hash chain *and* that the rebuilt
    Merkle root matches the committed checkpoint byte-for-byte — a
    journal that replays into a different audit history is corruption,
    never silently served.
    """

    def _commit_extra(self) -> bytes:
        checkpoint = self._inner.aserver.audit_log.checkpoint()
        return pack_fields(checkpoint.size.to_bytes(8, "big"),
                           checkpoint.merkle_root, checkpoint.chain_head)

    def _attach_listeners(self, inner) -> None:
        super()._attach_listeners(inner)
        inner.aserver.on_roster_change = self._on_roster_change

    def _on_roster_change(self, hospital: str, physician_id: str,
                          signed_in: bool) -> None:
        # Roster changes are local admin actions, not wire frames, so
        # they get their own record kind; replay re-applies them in
        # order, and replayed auths then see the roster that was in
        # force when they were originally committed.
        with self._lock:
            if self._inner is None:
                return
            try:
                self._store.writer().append(
                    K_ROSTER,
                    pack_fields(b"+" if signed_in else b"-",
                                hospital.encode(), physician_id.encode()),
                    ts_ms(self._transport.now) if self._transport else 0)
            except JournalCorruptionError:
                self._die()
                raise TransientTransportError(
                    "durable endpoint %r crashed mid-write" % self.address)

    def _replay_record(self, inner, record) -> None:
        # Caller holds self._lock.
        if record.kind != K_ROSTER:
            super()._replay_record(inner, record)
        sense, hospital_b, pid_b = unpack_fields(record.payload, expected=3)
        if sense == b"+":
            inner.aserver.sign_in(hospital_b.decode(), pid_b.decode())
        else:
            inner.aserver.sign_out(hospital_b.decode(), pid_b.decode())

    def _verify_recovered(self, inner, last_extra: bytes | None) -> None:
        inner.aserver.audit_log.verify_chain()
        if not last_extra:
            return
        size_b, merkle_root, chain_head = unpack_fields(last_extra,
                                                        expected=3)
        checkpoint = inner.aserver.audit_log.checkpoint()
        if (checkpoint.size != int.from_bytes(size_b, "big")
                or checkpoint.merkle_root != merkle_root
                or checkpoint.chain_head != chain_head):
            raise RecoveryError(
                "recovered audit log does not match the checkpoint "
                "committed before the crash at %r" % self.address)


class DurablePDeviceEndpoint(DurableEndpoint):
    """Durable P-device: RD evidence, ASSIGN/REVOKE group state,
    passcode-session state.

    RD records are minted *client-side* (the emergency protocol calls
    ``record_transaction`` directly, no frame arrives), so they ride the
    journal as ``K_RD`` records via the entity's ``on_record`` hook.
    The pre-shared key μ is journaled as ``K_KEY`` when the patient
    (re)establishes it — the journal doubles as the device's keystore,
    so a from-disk recovery can decrypt replayed ASSIGN frames.
    """

    def __init__(self, store: DurableStore, factory, address: str,
                 preshared_key: bytes | None = None) -> None:
        self._mu_value = preshared_key
        super().__init__(store, factory, address)

    def rekey(self, preshared_key: bytes) -> None:
        with self._lock:
            changed = preshared_key != self._mu_value
            self._mu_value = preshared_key
            if self._inner is not None:
                self._inner.rekey(preshared_key)
                if changed:
                    self._store.writer().append(K_KEY, preshared_key)

    def _configure_inner(self, inner) -> None:
        if self._mu_value is not None:
            inner.rekey(self._mu_value)

    def _replay_record(self, inner, record) -> None:
        # Caller holds self._lock.
        if record.kind == K_KEY:
            self._mu_value = record.payload
            inner.rekey(record.payload)
            return
        if record.kind != K_RD:
            super()._replay_record(inner, record)
        # on_record is not attached yet during replay, so this does not
        # re-journal; record_transaction also regenerates the §VI.A
        # alert the patient saw.
        inner.entity.record_transaction(
            DeviceRecord.from_bytes(record.payload,
                                    inner.entity.params.curve))

    def _attach_listeners(self, inner) -> None:
        super()._attach_listeners(inner)
        inner.entity.on_record = self._on_record

    def _on_record(self, record: DeviceRecord) -> None:
        with self._lock:
            if self._inner is None:
                return
            try:
                self._store.writer().append(
                    K_RD, record.to_bytes(),
                    ts_ms(self._transport.now) if self._transport else 0)
            except JournalCorruptionError:
                self._die()
                raise TransientTransportError(
                    "durable endpoint %r crashed mid-write" % self.address)
            self._mutations += 1
            self._maybe_snapshot()


# -- state resets ------------------------------------------------------------
# The factories reuse the *same* entity objects (client-side code holds
# references to them, and the A-server's PKG master secret cannot be
# re-drawn), but scrub every piece of mutable state a real process death
# would lose.  Recovery then reconstructs that state purely from disk.

def _reset_sserver(server) -> None:
    server._collections = {}
    server._mhi = []
    server._guard = ReplayGuard()
    server.observations = []
    server.deleted_abnormal = 0


def _reset_aserver(aserver) -> None:
    # The in-memory duty roster survives the reset (replaying K_ROSTER
    # records over it is idempotent: sign-in is a set add), so clients
    # holding a reference to the aserver see no roster flicker while
    # recovery runs; a fresh process rebuilds it purely from the journal.
    aserver.traces = []
    aserver.audit_log = AuditLog()
    aserver._pdevices = {}
    aserver._outstanding = {}
    aserver.on_roster_change = None


def _reset_pdevice(device) -> None:
    device.package = None
    device._sse = None
    device.records = []
    device._alert_log = []
    device.emergency_mode = False
    device.expected_physician = None
    device._expected_nounce = None
    device.pending_t_issue = None
    device.pending_signature = None
    device.on_record = None


# -- binding helpers ---------------------------------------------------------
def bind_durable_sserver(transport, server, store: DurableStore, *,
                         hibc_node=None, root_public=None,
                         fault_policy=None, federation_key=None,
                         **bind_kwargs) -> DurableSServerEndpoint:
    """Serve ``server`` durably at its address.

    Unlike :func:`repro.core.dispatch.bind_sserver`, this constructs the
    endpoint so that its whole state comes from ``store`` — binding over
    an existing data dir *is* recovery.
    """
    def factory():
        _reset_sserver(server)
        return SServerEndpoint(server)

    durable = DurableSServerEndpoint(store, factory, server.address,
                                     hibc_node=hibc_node,
                                     root_public=root_public,
                                     federation_key=federation_key)
    transport.bind(server.address, durable, **bind_kwargs)
    if fault_policy is not None:
        durable.register_with(fault_policy)
    return durable


def bind_durable_aserver(transport, aserver, store: DurableStore, *,
                         fault_policy=None,
                         **bind_kwargs) -> DurableAServerEndpoint:
    def factory():
        _reset_aserver(aserver)
        return AServerEndpoint(aserver)

    durable = DurableAServerEndpoint(store, factory, aserver.address)
    transport.bind(aserver.address, durable, **bind_kwargs)
    if fault_policy is not None:
        durable.register_with(fault_policy)
    return durable


def bind_durable_pdevice(transport, device, params, store: DurableStore, *,
                         preshared_key: bytes | None = None,
                         fault_policy=None,
                         **bind_kwargs) -> DurablePDeviceEndpoint:
    def factory():
        _reset_pdevice(device)
        return EntityEndpoint(device, params)

    durable = DurablePDeviceEndpoint(store, factory, device.address,
                                     preshared_key=preshared_key)
    transport.bind(device.address, durable, **bind_kwargs)
    if fault_policy is not None:
        durable.register_with(fault_policy)
    return durable
