"""Append-only write-ahead journal with CRC framing and torn-tail repair.

Record layout (little-endian)::

    +----+----+----+----+----+----+----+----+----+----+-- ... --+
    | magic "JR"        | length (u32)      | crc32 (u32)       |
    +----+----+----+----+----+----+----+----+----+----+-- ... --+
    | body: pack_fields(kind, ts_ms as u64-be, payload)         |
    +-----------------------------------------------------------+

``length`` is the body length; ``crc32`` covers ``length || body`` so a
bit flip in the length field is caught even when the (mis-read) body
happens to checksum correctly.  The journal distinguishes two failure
modes, and the distinction is load-bearing for HCPP's evidence story:

* **Torn tail** — the *final* record is incomplete (the process died
  mid-``write``).  Crash consistency allows exactly this; repair
  truncates the partial record, losing only the mutation that was never
  acknowledged.
* **Corruption** — a non-tail record fails its CRC, carries the wrong
  magic, or declares an absurd length.  That is bit rot or tampering in
  *committed* evidence and is never silently repaired: readers raise
  :class:`~repro.exceptions.JournalCorruptionError`.

The residual ambiguity (a flipped bit in the *final* record's length
field that makes it overshoot EOF is indistinguishable from a torn
write) is inherent to any length-prefixed format without a trailing
commit marker; we bound it with the per-record magic and a length
sanity cap, and document it in docs/architecture.md.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional

from repro.exceptions import JournalCorruptionError, ParameterError

MAGIC = b"JR"
_HEADER = struct.Struct("<2sII")  # magic, body length, crc32(length || body)
HEADER_SIZE = _HEADER.size

#: Records larger than this are rejected at append time and treated as
#: corruption at read time: no legitimate HCPP mutation approaches it,
#: and the cap stops a flipped length bit from swallowing the rest of
#: the file as one giant "record".
MAX_BODY_SIZE = 64 * 1024 * 1024

# Record kinds used by the durable layer (single bytes keep frames small).
K_FRAME = b"F"     # a mutating wire frame, replayed through the real handler
K_GUARD = b"G"     # a ReplayGuard high-water entry (tag, ts) for read ops
K_RD = b"R"        # a P-device RD record minted client-side
K_KEY = b"K"       # a P-device pre-shared key μ (the device's own keystore)
K_ROSTER = b"D"    # an A-server duty-roster change (sign-in / sign-out)
K_SNAP = b"S"      # snapshot marker: recovery may start from this snapshot
K_META = b"M"      # endpoint identity written at journal creation


def _crc(length: int, body: bytes) -> int:
    return zlib.crc32(struct.pack("<I", length) + body) & 0xFFFFFFFF


def _encode_body(kind: bytes, ts_ms: int, payload: bytes) -> bytes:
    # Inline framing (kind | u64 ts | payload) rather than pack_fields:
    # the journal sits below repro.core and must not import from it.
    if len(kind) != 1:
        raise ParameterError("journal record kind must be a single byte")
    if ts_ms < 0 or ts_ms >= 1 << 64:
        raise ParameterError("journal timestamp out of range")
    return kind + struct.pack(">Q", ts_ms) + payload


def _decode_body(body: bytes) -> "JournalRecord":
    if len(body) < 9:
        raise JournalCorruptionError("journal record body too short to frame")
    kind = body[:1]
    (ts_ms,) = struct.unpack(">Q", body[1:9])
    return JournalRecord(kind=kind, ts_ms=ts_ms, payload=body[9:])


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal entry."""

    kind: bytes
    ts_ms: int
    payload: bytes


class JournalWriter:
    """Appends framed records to a journal file.

    ``fsync_policy`` controls the commit point:

    * ``"always"`` (default) — fsync after every append; an acknowledged
      mutation survives power loss.  This is the policy the durable
      endpoints use before answering a wire frame.
    * ``"batch"`` — fsync every ``batch_every`` appends (and on
      :meth:`sync`/:meth:`close`); bounded-loss mode for benchmarks.
    * ``"os"`` — never fsync explicitly; the OS page cache decides.
    """

    def __init__(self, path: str, *, fsync_policy: str = "always",
                 batch_every: int = 16) -> None:
        if fsync_policy not in ("always", "batch", "os"):
            raise ParameterError(
                "fsync_policy must be 'always', 'batch' or 'os', got %r"
                % (fsync_policy,))
        if batch_every < 1:
            raise ParameterError("batch_every must be >= 1")
        self._path = path
        self._policy = fsync_policy
        self._batch_every = batch_every
        self._pending = 0
        self._torn_cut: Optional[int] = None
        self._file = open(path, "ab")
        self.appended = 0

    @property
    def path(self) -> str:
        return self._path

    def arm_torn_write(self, cut_bytes: int) -> None:
        """Make the *next* append write only its first ``cut_bytes`` bytes.

        Test/chaos hook simulating a crash mid-``write(2)``: the record's
        prefix reaches the disk, the rest never does.  The writer is left
        unusable afterwards (as a crashed process would be).
        """
        if cut_bytes < 0:
            raise ParameterError("cut_bytes must be >= 0")
        self._torn_cut = cut_bytes

    def append(self, kind: bytes, payload: bytes, ts_ms: int = 0) -> int:
        """Append one record; returns the file offset it was written at."""
        body = _encode_body(kind, ts_ms, payload)
        if len(body) > MAX_BODY_SIZE:
            raise ParameterError(
                "journal record body of %d bytes exceeds the %d byte cap"
                % (len(body), MAX_BODY_SIZE))
        frame = _HEADER.pack(MAGIC, len(body), _crc(len(body), body)) + body
        offset = self._file.tell()
        if self._torn_cut is not None:
            cut = min(self._torn_cut, len(frame))
            self._file.write(frame[:cut])
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
            raise JournalCorruptionError(
                "simulated torn write: %d of %d bytes reached disk"
                % (cut, len(frame)))
        self._file.write(frame)
        self.appended += 1
        self._pending += 1
        if self._policy == "always":
            self.sync()
        elif self._policy == "batch" and self._pending >= self._batch_every:
            self.sync()
        return offset

    def sync(self) -> None:
        """Flush buffered records and fsync them to stable storage."""
        self._file.flush()
        os.fsync(self._file.fileno())
        self._pending = 0

    def close(self) -> None:
        if not self._file.closed:
            if self._policy != "os":
                self.sync()
            else:
                self._file.flush()
            self._file.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class JournalReader:
    """Streams records out of a journal file, classifying damage.

    A record is *torn* when the file ends before the record does — an
    incomplete header, or a complete header whose body extends past EOF.
    Anything else that fails validation (bad magic, bad CRC, oversize
    length with enough file left to have held a real record) is
    corruption.  Because a header is only trusted after its CRC check,
    a non-final record can never be misread as torn: its full frame is
    on disk, so either it validates or it is corrupt.
    """

    def __init__(self, path: str) -> None:
        self._path = path

    def scan(self) -> Iterator[tuple]:
        """Yield ``(offset, record)`` pairs; raise on non-tail damage.

        Sets :attr:`tail_offset` to the offset just past the last valid
        record and :attr:`torn` to True when a partial final record was
        detected (everything from ``tail_offset`` onward is the torn
        fragment).
        """
        self.tail_offset = 0
        self.torn = False
        with open(self._path, "rb") as fh:
            data = fh.read()
        size = len(data)
        pos = 0
        while pos < size:
            remaining = size - pos
            if remaining < HEADER_SIZE:
                # Partial header at EOF: torn tail.
                self.torn = True
                break
            magic, length, crc = _HEADER.unpack_from(data, pos)
            if magic != MAGIC:
                raise JournalCorruptionError(
                    "bad record magic %r at offset %d in %s"
                    % (magic, pos, self._path))
            body_start = pos + HEADER_SIZE
            if length > MAX_BODY_SIZE:
                # A length this absurd means the length field itself is
                # damaged.  If this is the final header on disk we cannot
                # distinguish it from a torn write of a (smaller) record,
                # so only a *non-final* occurrence is provably corrupt.
                if body_start + length <= size:
                    raise JournalCorruptionError(
                        "record at offset %d declares %d byte body "
                        "(cap is %d) in %s"
                        % (pos, length, MAX_BODY_SIZE, self._path))
                self.torn = True
                break
            if body_start + length > size:
                # Body extends past EOF: torn tail.
                self.torn = True
                break
            body = data[body_start:body_start + length]
            if _crc(length, body) != crc:
                raise JournalCorruptionError(
                    "CRC mismatch for record at offset %d in %s"
                    % (pos, self._path))
            record = _decode_body(body)
            pos = body_start + length
            self.tail_offset = pos
            yield (pos - HEADER_SIZE - length, record)
        if pos < size and not self.torn:  # pragma: no cover - defensive
            raise JournalCorruptionError(
                "unreachable trailing bytes at offset %d in %s"
                % (pos, self._path))


def read_journal(path: str, *, repair: bool = False,
                 on_torn: Optional[Callable[[int, int], None]] = None
                 ) -> List[JournalRecord]:
    """Read every valid record from ``path``.

    Missing file → empty list (a fresh endpoint has no history yet).
    A torn tail is tolerated; with ``repair=True`` the partial record is
    physically truncated away so subsequent appends extend a clean file.
    ``on_torn(tail_offset, file_size)`` is invoked when a torn tail is
    seen, letting callers log the number of bytes dropped.  Non-tail
    damage raises :class:`JournalCorruptionError` — committed evidence
    is never silently dropped.
    """
    if not os.path.exists(path):
        return []
    reader = JournalReader(path)
    records = [record for _, record in reader.scan()]
    if reader.torn:
        size = os.path.getsize(path)
        if on_torn is not None:
            on_torn(reader.tail_offset, size)
        if repair:
            with open(path, "r+b") as fh:
                fh.truncate(reader.tail_offset)
                fh.flush()
                os.fsync(fh.fileno())
    return records
