"""Atomic state snapshots: write-to-temp + rename, digest-verified reads.

A snapshot is a point-in-time serialization of an endpoint's exported
state.  Snapshots compress recovery — instead of replaying the whole
journal, recovery loads the newest *usable* snapshot and replays only
the journal suffix after its ``K_SNAP`` marker.  The journal is never
truncated when a snapshot is taken, so if the newest snapshot is damaged
recovery simply falls back to an older one (or to genesis) and replays a
longer suffix; durability never depends on any single snapshot file.

File layout: ``<data_dir>/<name>.snap.<id>`` containing::

    magic "HSNP" | u32 snapshot id | u32 body length | sha256(body) | body

The write path is crash-atomic: the body is written to a ``.tmp`` file,
fsynced, then :func:`os.replace`'d into place, and the directory entry
is fsynced so the rename itself survives power loss.  A reader either
sees the complete previous snapshot or the complete new one.
"""

from __future__ import annotations

import hashlib
import hmac
import os
import re
import struct
from typing import List, Optional, Tuple

from repro.exceptions import JournalCorruptionError, ParameterError

SNAP_MAGIC = b"HSNP"
_SNAP_HEADER = struct.Struct("<4sII")


def snapshot_path(data_dir: str, name: str, snapshot_id: int) -> str:
    return os.path.join(data_dir, "%s.snap.%d" % (name, snapshot_id))


def _fsync_dir(path: str) -> None:
    # Windows cannot open directories; the rename is still atomic there.
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_snapshot(data_dir: str, name: str, snapshot_id: int,
                   body: bytes) -> str:
    """Atomically persist ``body`` as snapshot ``snapshot_id``; return path."""
    if snapshot_id < 0 or snapshot_id >= 1 << 32:
        raise ParameterError("snapshot id out of range: %d" % snapshot_id)
    final = snapshot_path(data_dir, name, snapshot_id)
    tmp = final + ".tmp"
    digest = hashlib.sha256(body).digest()
    blob = _SNAP_HEADER.pack(SNAP_MAGIC, snapshot_id, len(body)) + digest + body
    with open(tmp, "wb") as fh:
        fh.write(blob)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, final)
    _fsync_dir(data_dir)
    return final


def read_snapshot(data_dir: str, name: str, snapshot_id: int) -> bytes:
    """Load and digest-verify a snapshot body.

    Raises :class:`JournalCorruptionError` when the file is damaged —
    callers treat that as "this snapshot is unusable" and fall back to an
    earlier one, because the journal retains the full history.
    """
    path = snapshot_path(data_dir, name, snapshot_id)
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except FileNotFoundError:
        raise JournalCorruptionError("snapshot missing: %s" % path)
    if len(blob) < _SNAP_HEADER.size + 32:
        raise JournalCorruptionError("snapshot truncated: %s" % path)
    magic, sid, length = _SNAP_HEADER.unpack_from(blob, 0)
    if magic != SNAP_MAGIC or sid != snapshot_id:
        raise JournalCorruptionError("snapshot header mismatch: %s" % path)
    digest = blob[_SNAP_HEADER.size:_SNAP_HEADER.size + 32]
    body = blob[_SNAP_HEADER.size + 32:]
    if len(body) != length:
        raise JournalCorruptionError("snapshot length mismatch: %s" % path)
    if not hmac.compare_digest(hashlib.sha256(body).digest(), digest):
        raise JournalCorruptionError("snapshot digest mismatch: %s" % path)
    return body


def list_snapshot_ids(data_dir: str, name: str) -> List[int]:
    """Snapshot ids present on disk for ``name``, ascending."""
    pattern = re.compile(re.escape(name) + r"\.snap\.(\d+)$")
    ids = []
    try:
        entries = os.listdir(data_dir)
    except FileNotFoundError:
        return []
    for entry in entries:
        match = pattern.match(entry)
        if match:
            ids.append(int(match.group(1)))
    return sorted(ids)
