"""Durable state: crash-consistent storage for HCPP endpoints.

HCPP's accountability story (§V of the paper) only holds if the signed
evidence — the A-server's TR traces and the P-device's RD records —
*survives failures*; in-memory state that evaporates on a crash is not
evidence.  This package provides the durability substrate:

* :mod:`repro.store.journal` — a CRC32-framed, length-prefixed
  append-only journal with fsync batching, torn-tail repair, and typed
  corruption detection (:class:`~repro.exceptions.JournalCorruptionError`);
* :mod:`repro.store.snapshot` — periodic atomic state snapshots
  (write-to-temp + rename), referenced from the journal so recovery is
  *load snapshot, replay suffix*;
* :mod:`repro.store.durable` — ``Durable*`` wrappers over the dispatch
  endpoints that journal mutations at the wire-frame boundary, so all
  six protocols gain durability without per-protocol changes.
"""

from repro.store.journal import (JournalReader, JournalRecord, JournalWriter,
                                 read_journal)
from repro.store.snapshot import (list_snapshot_ids, read_snapshot,
                                  snapshot_path, write_snapshot)
from repro.store.durable import (DurableAServerEndpoint, DurableEndpoint,
                                 DurablePDeviceEndpoint,
                                 DurableSServerEndpoint, DurableStore,
                                 bind_durable_aserver, bind_durable_pdevice,
                                 bind_durable_sserver)

__all__ = [
    "JournalReader", "JournalRecord", "JournalWriter", "read_journal",
    "list_snapshot_ids", "read_snapshot", "snapshot_path", "write_snapshot",
    "DurableStore", "DurableEndpoint", "DurableSServerEndpoint",
    "DurableAServerEndpoint", "DurablePDeviceEndpoint",
    "bind_durable_sserver", "bind_durable_aserver", "bind_durable_pdevice",
]
