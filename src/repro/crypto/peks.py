"""Public-key encryption with keyword search (PEKS) — paper §II.C and §IV.E.

Three constructions, all on the pairing substrate:

* :class:`BdopPeks` — the original Boneh–Di Crescenzo–Ostrovsky–Persiano
  scheme (EUROCRYPT'04), the paper's demonstration choice:
  ``PEKS(pk, W) = (σP, H3(ê(H2(W), αP)^σ))``, trapdoor ``T_W = α·H2(W)``.
* :class:`AbdallaPeks` — the Abdalla et al. (CRYPTO'05) transform that the
  paper notes is *computationally consistent* where naive IBE→PEKS is not:
  a random message R is BF-IBE-encrypted under the keyword-as-identity and
  shipped alongside R; the test decrypts and compares.
* :class:`RolePeks` — the identity-based PEKS used in HCPP's MHI path,
  where the "receiver" is a *role identity* string ``Date‖Duty‖ServiceArea``
  whose private key Γ_r only the A-server can extract.  The paper's
  ``TD_r(kw) = Γ_r·H2(kw)`` multiplies two G1 points, which is undefined;
  we implement the unique consistent completion with a scalar keyword hash
  (DESIGN.md records this substitution):

      PEKS_σ(ID_r, kw) = (σP, H3(ê(H1(ID_r), P_pub)^{σ·h2(kw)}))
      TD_r(kw)         = h2(kw)·Γ_r
      Test((A,B), TD)  : H3(ê(TD, A)) == B

  Correctness: ê(TD, σP) = ê(h2(kw)·s0·H1(ID_r), σP)
             = ê(H1(ID_r), P_pub)^{σ·h2(kw)}.

:class:`MultiKeywordPeks` (PECK, ref [29]) extends :class:`RolePeks` to
conjunctive multi-keyword tags sharing one σ.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import engine as engine_mod
from repro.crypto.ec import Point
from repro.crypto.hashes import (h1_identity, h2_keyword_point,
                                 h2_keyword_scalar, h3_pairing_to_bytes)
from repro.crypto.hmac_impl import constant_time_equal
from repro.crypto.ibe import BasicIdent, IbeCiphertext, PrivateKeyGenerator
from repro.crypto.pairing import prepared
from repro.crypto.params import DomainParams
from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError

__all__ = ["BdopPeks", "AbdallaPeks", "RolePeks", "MultiKeywordPeks",
           "PeksTag", "PeksTrapdoor"]

_TOKEN_BYTES = 32


@dataclass(frozen=True)
class PeksTag:
    """A searchable tag attached to a ciphertext: (A = σP, B = H3(⋯))."""

    A: Point
    B: bytes

    def size_bytes(self) -> int:
        return len(self.A.to_bytes()) + len(self.B)


@dataclass(frozen=True)
class PeksTrapdoor:
    """A keyword trapdoor T_W ∈ G1 handed to the searching server."""

    point: Point

    def size_bytes(self) -> int:
        return len(self.point.to_bytes())

    def to_bytes(self) -> bytes:
        return self.point.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes, curve) -> "PeksTrapdoor":
        return cls(point=Point.from_bytes(data, curve))


class BdopPeks:
    """The BDOP PEKS: receiver key pair (α, αP); server tests tags."""

    def __init__(self, params: DomainParams, rng: HmacDrbg) -> None:
        self.params = params
        self._alpha = params.random_scalar(rng)
        self.public_key = params.point_mul_generator(self._alpha)

    def tag(self, keyword: str, rng: HmacDrbg) -> PeksTag:
        """Sender-side: PEKS(pk, W) = (σP, H3(ê(H2(W), αP)^σ))."""
        sigma = self.params.random_scalar(rng)
        A = self.params.point_mul_generator(sigma)
        # The receiver key is the fixed argument across every tag; by
        # symmetry of the pairing it can take the prepared slot.
        value = prepared(self.public_key).pair(
            h2_keyword_point(self.params, keyword)) ** sigma
        return PeksTag(A=A, B=h3_pairing_to_bytes(value, _TOKEN_BYTES))

    def trapdoor(self, keyword: str) -> PeksTrapdoor:
        """Receiver-side: T_W = α·H2(W)."""
        return PeksTrapdoor(h2_keyword_point(self.params, keyword) * self._alpha)

    def test(self, tag: PeksTag, trapdoor: PeksTrapdoor) -> bool:
        """Server-side: H3(ê(T_W, A)) == B."""
        # One trapdoor is tested against many stored tags; prepare it.
        value = prepared(trapdoor.point).pair(tag.A)
        return constant_time_equal(
            h3_pairing_to_bytes(value, _TOKEN_BYTES), tag.B)


@dataclass(frozen=True)
class AbdallaTag:
    """Abdalla et al. tag: (IBE-encryption of R under keyword, R)."""

    ciphertext: IbeCiphertext
    reference: bytes

    def size_bytes(self) -> int:
        return self.ciphertext.size_bytes() + len(self.reference)


class AbdallaPeks:
    """The consistent IBE→PEKS transform (encrypt a random R, ship R).

    The receiver *is* the PKG: its secret α doubles as the IBE master key,
    and the trapdoor for keyword W is the IBE private key for identity W.
    """

    R_BYTES = 32

    def __init__(self, params: DomainParams, rng: HmacDrbg) -> None:
        self.params = params
        self._pkg = PrivateKeyGenerator(params, rng)
        self.public_key = self._pkg.public_key

    def tag(self, keyword: str, rng: HmacDrbg) -> AbdallaTag:
        reference = rng.random_bytes(self.R_BYTES)
        scheme = BasicIdent(self.params, self.public_key)
        ciphertext = scheme.encrypt("peks-kw:" + keyword, reference, rng)
        return AbdallaTag(ciphertext=ciphertext, reference=reference)

    def trapdoor(self, keyword: str) -> PeksTrapdoor:
        return PeksTrapdoor(self._pkg.extract("peks-kw:" + keyword).private)

    def test(self, tag: AbdallaTag, trapdoor: PeksTrapdoor) -> bool:
        # Decrypt with the keyword key and compare against the shipped R.
        from repro.crypto.hashes import h_g2_to_bytes
        from repro.crypto.mathutil import xor_bytes
        mask = h_g2_to_bytes(prepared(trapdoor.point).pair(tag.ciphertext.U),
                             len(tag.ciphertext.V))
        return constant_time_equal(xor_bytes(tag.ciphertext.V, mask),
                                   tag.reference)


class RolePeks:
    """HCPP's identity-based PEKS for MHI retrieval (role identities).

    The *tagger* (P-device) needs only public data: the role identity
    string and the domain public key P_pub.  The *trapdoor issuer* needs
    Γ_r = s0·H1(ID_r), which the physician obtains from the A-server after
    role-based authentication.
    """

    def __init__(self, params: DomainParams, pkg_public: Point) -> None:
        self.params = params
        self.pkg_public = pkg_public

    def tag(self, role_identity: str, keyword: str, rng: HmacDrbg) -> PeksTag:
        """PEKS_σ(ID_r, kw) = (σP, H3(ê(H1(ID_r), P_pub)^{σ·h2(kw)}))."""
        sigma = self.params.random_scalar(rng)
        A = self.params.point_mul_generator(sigma)
        base = prepared(self.pkg_public).pair(
            h1_identity(self.params, role_identity))
        exponent = sigma * h2_keyword_scalar(self.params, keyword) % self.params.r
        return PeksTag(A=A, B=h3_pairing_to_bytes(base ** exponent,
                                                  _TOKEN_BYTES))

    @staticmethod
    def trapdoor(role_private: Point, params: DomainParams,
                 keyword: str) -> PeksTrapdoor:
        """TD_r(kw) = h2(kw)·Γ_r — computed by the physician."""
        if role_private.is_infinity:
            raise ParameterError("role private key is infinity")
        return PeksTrapdoor(role_private * h2_keyword_scalar(params, keyword))

    def test(self, tag: PeksTag, trapdoor: PeksTrapdoor) -> bool:
        """S-server-side: H3(ê(TD, A)) == B."""
        value = prepared(trapdoor.point).pair(tag.A)
        return constant_time_equal(
            h3_pairing_to_bytes(value, _TOKEN_BYTES), tag.B)

    @staticmethod
    def test_batch(tags: "list[PeksTag]", trapdoor: PeksTrapdoor,
                   engine: "engine_mod.CryptoEngine | None" = None
                   ) -> list[bool]:
        """``[test(tag, trapdoor) for tag in tags]`` — engine-parallel.

        One pairing per tag is the whole cost; with an engine the tags
        fan out across worker processes (each worker prepares the
        trapdoor's Miller loop once via its registry).
        """
        items = [(trapdoor, tag) for tag in tags]
        eng = engine_mod.resolve(engine)
        if eng is not None:
            return eng.map(_ROLE_TEST_SPEC, items)
        return [_role_test_task(item) for item in items]


@dataclass(frozen=True)
class MultiKeywordTag:
    """A conjunctive tag: one shared A = σP, one token per keyword."""

    A: Point
    tokens: tuple[bytes, ...]

    def size_bytes(self) -> int:
        return len(self.A.to_bytes()) + sum(len(t) for t in self.tokens)

    def to_bytes(self) -> bytes:
        a = self.A.to_bytes()
        out = bytearray(len(a).to_bytes(2, "big") + a)
        for token in self.tokens:
            out += len(token).to_bytes(2, "big")
            out += token
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, curve) -> "MultiKeywordTag":
        a_len = int.from_bytes(data[:2], "big")
        A = Point.from_bytes(data[2:2 + a_len], curve)
        tokens = []
        offset = 2 + a_len
        while offset < len(data):
            t_len = int.from_bytes(data[offset:offset + 2], "big")
            offset += 2
            token = data[offset:offset + t_len]
            if len(token) != t_len:
                raise ParameterError("malformed multi-keyword tag encoding")
            tokens.append(token)
            offset += t_len
        return cls(A=A, tokens=tuple(tokens))


class MultiKeywordPeks:
    """PECK-style multi-keyword extension of :class:`RolePeks` (ref [29]).

    Sharing one randomizer σ across n keywords makes the tag
    |G1| + n·|token| instead of n·(|G1| + |token|), and lets the server
    test any subset of keywords against a single tag.
    """

    def __init__(self, params: DomainParams, pkg_public: Point) -> None:
        self.params = params
        self._single = RolePeks(params, pkg_public)

    def tag(self, role_identity: str, keywords: list[str],
            rng: HmacDrbg) -> MultiKeywordTag:
        if not keywords:
            raise ParameterError("need at least one keyword")
        sigma = self.params.random_scalar(rng)
        A = self.params.point_mul_generator(sigma)
        base = prepared(self._single.pkg_public).pair(
            h1_identity(self.params, role_identity))
        tokens = []
        for kw in keywords:
            exponent = sigma * h2_keyword_scalar(self.params, kw) % self.params.r
            tokens.append(h3_pairing_to_bytes(base ** exponent, _TOKEN_BYTES))
        return MultiKeywordTag(A=A, tokens=tuple(tokens))

    @staticmethod
    def trapdoor(role_private: Point, params: DomainParams,
                 keyword: str) -> PeksTrapdoor:
        return RolePeks.trapdoor(role_private, params, keyword)

    def test(self, tag: MultiKeywordTag, trapdoor: PeksTrapdoor) -> bool:
        """True when the trapdoor keyword matches *any* keyword in the tag."""
        token = h3_pairing_to_bytes(prepared(trapdoor.point).pair(tag.A),
                                    _TOKEN_BYTES)
        return token in tag.tokens

    @staticmethod
    def test_batch(tags: "list[MultiKeywordTag]", trapdoor: PeksTrapdoor,
                   engine: "engine_mod.CryptoEngine | None" = None
                   ) -> list[bool]:
        """``[test(tag, trapdoor) for tag in tags]`` — engine-parallel.

        The S-server's MHI scan tests one trapdoor against every stored
        tag; each test is one pairing, so the batch is embarrassingly
        parallel and byte-identical to the serial loop.
        """
        items = [(trapdoor, tag) for tag in tags]
        eng = engine_mod.resolve(engine)
        if eng is not None:
            return eng.map(_MULTI_TEST_SPEC, items)
        return [_multi_test_task(item) for item in items]

    def test_all(self, tag: MultiKeywordTag,
                 trapdoors: list[PeksTrapdoor]) -> bool:
        """Conjunctive test: every trapdoor keyword must appear in the tag."""
        return all(self.test(tag, td) for td in trapdoors)


# ---------------------------------------------------------------------------
# Engine task functions: module-level, pure functions of their (picklable)
# item tuples, addressed by dotted spec so the engine never imports upward.
# ---------------------------------------------------------------------------

_ROLE_TEST_SPEC = "repro.crypto.peks:_role_test_task"
_MULTI_TEST_SPEC = "repro.crypto.peks:_multi_test_task"


def _role_test_task(item: "tuple[PeksTrapdoor, PeksTag]") -> bool:
    """Single-keyword PEKS test — engine task for RolePeks/BDOP tags."""
    trapdoor, tag = item
    value = prepared(trapdoor.point).pair(tag.A)
    return constant_time_equal(
        h3_pairing_to_bytes(value, _TOKEN_BYTES), tag.B)


def _multi_test_task(item: "tuple[PeksTrapdoor, MultiKeywordTag]") -> bool:
    """Disjunctive PECK test — engine task for multi-keyword tags."""
    trapdoor, tag = item
    token = h3_pairing_to_bytes(prepared(trapdoor.point).pair(tag.A),
                                _TOKEN_BYTES)
    return token in tag.tokens
