"""Pluggable F_p integer arithmetic backend: pure python or gmpy2.

Every modular operation the field and pairing layers perform funnels
through one of the small backend classes below.  The pure-python backend
(CPython's built-in big integers plus ``pow``) is always available and is
the **test oracle**: the gmpy2 backend, when the optional ``gmpy2``
package is importable, must agree with it bit-for-bit on every operation
(enforced by ``tests/crypto/test_backend_equiv.py``).

Selection:

* ``HCPP_FP_BACKEND=python`` — force the pure-python oracle.
* ``HCPP_FP_BACKEND=gmpy2``  — force gmpy2; raises at selection time when
  the package is missing.
* unset / ``auto``           — gmpy2 when importable, python otherwise.

All backend entry points accept and return **python ints** — no ``mpz``
ever escapes this module through ``add``/``mul``/``inv``/``powmod``/
``sqrt``.  Hot loops that want to keep intermediate values in the
backend's native representation (the Miller loop) use :func:`wrap` on
entry and ``int()`` on exit; for the python backend ``wrap`` is the
identity, for gmpy2 it is ``mpz`` so the loop's ``*``/``%`` operators
run on GMP limbs.

This module sits below :mod:`repro.crypto.mathutil` and imports only the
stdlib and :mod:`repro.exceptions`.
"""

from __future__ import annotations

import os

from repro.exceptions import ParameterError

__all__ = ["FpBackend", "PythonFpBackend", "Gmpy2FpBackend",
           "active_backend", "set_backend", "available_backends", "wrap"]

try:  # optional accelerator; the pure-python path never needs it
    import gmpy2 as _gmpy2
except ImportError:  # pragma: no cover - exercised only without gmpy2
    _gmpy2 = None


class FpBackend:
    """Interface: modular F_p arithmetic on python-int boundaries."""

    name = "abstract"

    #: identity for python; mpz for gmpy2 — used by hot loops that keep
    #: intermediates in native representation.
    wrap = staticmethod(int)

    @staticmethod
    def add(a: int, b: int, p: int) -> int:
        raise NotImplementedError

    @staticmethod
    def sub(a: int, b: int, p: int) -> int:
        raise NotImplementedError

    @staticmethod
    def mul(a: int, b: int, p: int) -> int:
        raise NotImplementedError

    @staticmethod
    def inv(a: int, p: int) -> int:
        raise NotImplementedError

    @staticmethod
    def powmod(a: int, e: int, p: int) -> int:
        raise NotImplementedError

    @classmethod
    def sqrt(cls, a: int, p: int) -> int:
        """A square root mod the odd prime ``p ≡ 3 (mod 4)``.

        Residuosity is the caller's problem (``mathutil.sqrt_mod`` checks
        it first); this is only the exponentiation kernel.
        """
        return cls.powmod(a, (p + 1) // 4, p)


class PythonFpBackend(FpBackend):
    """CPython big-int arithmetic — always available, the oracle."""

    name = "python"

    @staticmethod
    def add(a: int, b: int, p: int) -> int:
        return (a + b) % p

    @staticmethod
    def sub(a: int, b: int, p: int) -> int:
        return (a - b) % p

    @staticmethod
    def mul(a: int, b: int, p: int) -> int:
        return a * b % p

    @staticmethod
    def inv(a: int, p: int) -> int:
        a %= p
        if a == 0:
            raise ParameterError("0 has no inverse modulo %d" % p)
        try:
            return pow(a, -1, p)
        except ValueError as exc:
            raise ParameterError("%d has no inverse modulo %d"
                                 % (a, p)) from exc

    @staticmethod
    def powmod(a: int, e: int, p: int) -> int:
        return pow(a, e, p)


class Gmpy2FpBackend(FpBackend):  # pragma: no cover - needs gmpy2
    """GMP-backed arithmetic via :mod:`gmpy2` (optional)."""

    name = "gmpy2"

    if _gmpy2 is not None:
        wrap = staticmethod(_gmpy2.mpz)

    @staticmethod
    def add(a: int, b: int, p: int) -> int:
        return int((_gmpy2.mpz(a) + b) % p)

    @staticmethod
    def sub(a: int, b: int, p: int) -> int:
        return int((_gmpy2.mpz(a) - b) % p)

    @staticmethod
    def mul(a: int, b: int, p: int) -> int:
        return int(_gmpy2.mpz(a) * b % p)

    @staticmethod
    def inv(a: int, p: int) -> int:
        a %= p
        if a == 0:
            raise ParameterError("0 has no inverse modulo %d" % p)
        try:
            return int(_gmpy2.invert(a, p))
        except ZeroDivisionError as exc:
            raise ParameterError("%d has no inverse modulo %d"
                                 % (a, p)) from exc

    @staticmethod
    def powmod(a: int, e: int, p: int) -> int:
        return int(_gmpy2.powmod(a, e, p))


def available_backends() -> tuple[str, ...]:
    """Names of the backends this interpreter can actually run."""
    if _gmpy2 is not None:
        return ("python", "gmpy2")
    return ("python",)


def _select(name: str) -> type[FpBackend]:
    if name == "python":
        return PythonFpBackend
    if name == "gmpy2":
        if _gmpy2 is None:
            raise ParameterError(
                "HCPP_FP_BACKEND=gmpy2 but the gmpy2 package is not "
                "importable (pip install gmpy2, or unset the variable)")
        return Gmpy2FpBackend
    if name == "auto":
        return Gmpy2FpBackend if _gmpy2 is not None else PythonFpBackend
    raise ParameterError("unknown F_p backend %r (python/gmpy2/auto)" % name)


_ACTIVE: type[FpBackend] = _select(
    os.environ.get("HCPP_FP_BACKEND", "auto").strip().lower() or "auto")


def active_backend() -> type[FpBackend]:
    """The backend every field/pairing operation currently routes through."""
    return _ACTIVE


def set_backend(name: str) -> type[FpBackend]:
    """Switch backends at runtime (tests / benchmarks); returns the new one.

    Engine worker processes inherit the parent's choice on fork and
    re-resolve ``HCPP_FP_BACKEND`` on spawn — either way both sides of a
    pool compute with the same arithmetic.
    """
    global _ACTIVE
    _ACTIVE = _select(name)
    return _ACTIVE


def wrap(value: int):
    """Lift ``value`` into the active backend's native representation."""
    return _ACTIVE.wrap(value)
