"""Sakai–Ohgishi–Kasai non-interactive key agreement.

HCPP derives every protocol-protecting shared key without any key-exchange
messages, exactly as the paper specifies:

* ν = ê(Γ_p, PK_S) = ê(TP_p, Γ_S)   — patient ↔ S-server (storage/retrieval)
* ϖ = ê(Γ_i, PK_A) = ê(PK_i, Γ_A)   — physician ↔ A-server (emergency auth)
* ρ = ê(Γ_r, PK_S) = ê(PK_r, Γ_S)   — role-key holder ↔ S-server (MHI)

Each party pairs *its own private key* with the *other's public key*;
bilinearity makes both sides equal (both are ê(PK_a, PK_b)^s0).  The raw
G2 element is passed through a KDF to obtain HMAC/AES key material.
"""

from __future__ import annotations

import hashlib

from repro.crypto.ec import Point
from repro.crypto.ibe import IdentityKeyPair
from repro.crypto.pairing import prepared
from repro.exceptions import ParameterError

__all__ = ["shared_key", "shared_key_from_points", "SHARED_KEY_SIZE"]

SHARED_KEY_SIZE = 32


def shared_key_from_points(my_private: Point, their_public: Point) -> bytes:
    """Derive the SOK shared key ê(my_private, their_public) → 32 bytes.

    The caller's own private key is the long-lived side (the S-server pairs
    its fixed Γ_S against every client), so it takes the prepared slot.
    """
    if my_private.is_infinity or their_public.is_infinity:
        raise ParameterError("NIKE inputs must be non-infinity points")
    value = prepared(my_private).pair(their_public)
    return hashlib.sha256(b"HCPP-NIKE:" + value.to_bytes()).digest()[:SHARED_KEY_SIZE]


def shared_key(my_key: IdentityKeyPair, their_public: Point) -> bytes:
    """Convenience wrapper taking a full :class:`IdentityKeyPair`."""
    return shared_key_from_points(my_key.private, their_public)


#: Task spec for :func:`repro.crypto.engine.CryptoEngine.map` — the
#: S-server's batched search derives one SOK key per request, which is
#: the dominant pairing cost of the batch.
SHARED_KEY_SPEC = "repro.crypto.nike:_shared_key_task"


def _shared_key_task(item: "tuple[Point, Point]") -> bytes:
    """Engine task: ``item = (my_private, their_public)``."""
    my_private, their_public = item
    return shared_key_from_points(my_private, their_public)
