"""Process-parallel crypto engine: a multiprocessing pairing worker pool.

PR 1 bought the single-core wins (fixed-base tables, prepared Miller
loops); BENCH_crypto.json then showed the GIL wall — thread pools gain
1.03x on batch verify and *lose* to serial on search.  Pairings are pure
CPython bytecode over big integers, so threads serialize on the
interpreter lock.  This module moves the pairing-heavy hot paths — IBS
``batch_verify``, PEKS/PECK ``test``, IBE/HIBC key derivation, and the
S-server's multi-keyword search — into **worker processes**, which scale
with cores.

Design:

* **Tasks are dotted specs**, ``"module:function"``, resolved with
  :mod:`importlib` inside the worker.  The engine therefore never imports
  upper layers: ``repro.sse.index`` registers its own search task and the
  crypto layer stays at the bottom of the dependency order (enforced by
  hcpplint's layering contracts).
* **Workers warm up once, in an initializer.**  Shipping a
  :class:`~repro.crypto.precompute.PrecomputedPoint` table (thousands of
  affine multiples) per task would drown the win in pickle bytes.
  Instead the initializer receives only the *points* (a few hundred
  bytes) and rebuilds prepared pairings / windowed tables in-worker via
  the module registries, which also memoise any points the warm-up list
  missed.
* **Chunked submission with a serial fallback.**  Items are split into
  ``workers × chunks_per_worker`` chunks so a slow chunk cannot idle the
  pool, and batches below ``min_parallel`` run inline in the parent —
  small batches must never pay fork/IPC overhead (the acceptance bar is
  *never worse than serial*).
* **Identical results and error order.**  Each item maps to an
  ``(ok, value-or-exception)`` pair; the parent re-raises the *first*
  failure in item order, exactly like the serial loop would.

The engine imports :mod:`multiprocessing` (stdlib) plus sibling crypto
modules only; entities and protocols reach it through the existing
``engine=`` keywords on :func:`repro.crypto.ibs.batch_verify` and
friends, never by importing this module's pool machinery directly.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing
import os
import threading
from typing import Any, Callable, Iterable, Sequence

from repro.crypto import pairing as _pairing
from repro.crypto import precompute as _precompute
from repro.exceptions import ParameterError

__all__ = ["CryptoEngine", "default_engine", "configure", "resolve",
           "DEFAULT_MIN_PARALLEL", "DEFAULT_CHUNKS_PER_WORKER"]

#: Batches smaller than this run inline in the parent — IPC setup costs
#: more than four pairings, so tiny batches must not touch the pool.
DEFAULT_MIN_PARALLEL = 4

#: Chunks submitted per worker; >1 smooths load imbalance (a chunk that
#: finishes early frees its worker for another) without per-item IPC.
DEFAULT_CHUNKS_PER_WORKER = 4


# ---------------------------------------------------------------------------
# Worker-side machinery.  These run inside pool processes (and inline in
# the parent for the serial fallback — same code path, same semantics).
# ---------------------------------------------------------------------------

_task_cache: dict[str, Callable[[Any], Any]] = {}


def _resolve_spec(spec: str) -> Callable[[Any], Any]:
    """``"pkg.mod:func"`` → the callable, memoised per process."""
    fn = _task_cache.get(spec)
    if fn is not None:
        return fn
    module_name, sep, func_name = spec.partition(":")
    if not sep or not module_name or not func_name:
        raise ParameterError("task spec must be 'module:function', got %r"
                             % (spec,))
    module = importlib.import_module(module_name)
    fn = getattr(module, func_name, None)
    if fn is None:
        raise ParameterError("task spec %r: %s has no attribute %s"
                             % (spec, module_name, func_name))
    _task_cache[spec] = fn
    return fn


def _worker_init(config: dict[str, Any]) -> None:
    """Pool initializer: rebuild prepared/precomputed state in-worker.

    ``config`` carries only picklable points; the expensive tables are
    reconstructed here exactly once per worker process and land in the
    same module registries the task functions consult, so every later
    task hits a warm cache.
    """
    for point in config.get("prepare_points", ()):
        _pairing.prepared(point)
    window = config.get("window", _precompute.DEFAULT_WINDOW)
    for point in config.get("table_points", ()):
        _precompute.precomputed(point, window)


def _run_chunk(spec: str,
               chunk: Sequence[Any]) -> list[tuple[bool, Any]]:
    """Apply the task to each item, capturing per-item success/failure.

    Exceptions are captured (not raised) so one bad item cannot hide the
    results — or mask the *earlier* failure — of its chunk-mates; the
    parent restores serial-identical first-failure semantics.
    """
    fn = _resolve_spec(spec)
    out: list[tuple[bool, Any]] = []
    for item in chunk:
        try:
            out.append((True, fn(item)))
        except Exception as exc:  # noqa: BLE001 - re-raised in parent
            out.append((False, exc))
    return out


def _collect(pairs: Iterable[tuple[bool, Any]]) -> list[Any]:
    """Unwrap ``(ok, value)`` pairs, re-raising the first failure in order."""
    results: list[Any] = []
    for ok, value in pairs:
        if not ok:
            raise value
        results.append(value)
    return results


# ---------------------------------------------------------------------------
# The engine.
# ---------------------------------------------------------------------------

class CryptoEngine:
    """A lazily started pool of crypto worker processes.

    ``workers <= 1`` is a valid configuration that never forks: every
    ``map`` runs inline, making a 1-worker engine bit-identical *and*
    cost-identical to the serial path.  The pool itself is created on
    first parallel use (lazy ``start``) so constructing an engine — e.g.
    from the CLI's ``--workers`` flag — costs nothing until a batch
    actually crosses ``min_parallel``.
    """

    def __init__(self, workers: int, *,
                 prepare_points: Sequence[Any] = (),
                 table_points: Sequence[Any] = (),
                 window: int = _precompute.DEFAULT_WINDOW,
                 min_parallel: int = DEFAULT_MIN_PARALLEL,
                 chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER) -> None:
        if workers < 0:
            raise ParameterError("workers must be >= 0, got %d" % workers)
        if min_parallel < 1:
            raise ParameterError("min_parallel must be >= 1")
        if chunks_per_worker < 1:
            raise ParameterError("chunks_per_worker must be >= 1")
        self.workers = workers
        self.min_parallel = min_parallel
        self.chunks_per_worker = chunks_per_worker
        self._config = {
            "prepare_points": tuple(prepare_points),
            "table_points": tuple(table_points),
            "window": window,
        }
        self._lock = threading.Lock()
        self._pool: multiprocessing.pool.Pool | None = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "multiprocessing.pool.Pool | None":
        """Create the pool if needed; returns it (None when serial-only).

        ``fork`` is preferred — workers inherit the parent's warm
        registries for free and the initializer only tops them up — with
        ``spawn`` as the portable fallback, where the initializer does
        the full rebuild from the pickled config.
        """
        if self.workers <= 1:
            return None
        with self._lock:
            if self._pool is None:
                try:
                    ctx = multiprocessing.get_context("fork")
                except ValueError:  # pragma: no cover - non-POSIX
                    ctx = multiprocessing.get_context("spawn")
                self._pool = ctx.Pool(self.workers,
                                      initializer=_worker_init,
                                      initargs=(self._config,))
            return self._pool

    def close(self) -> None:
        """Shut the pool down; the engine can be started again later."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
            pool.join()

    def __enter__(self) -> "CryptoEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- execution -------------------------------------------------------
    def map(self, spec: str, items: Iterable[Any]) -> list[Any]:
        """Apply task ``spec`` to every item; results in item order.

        Semantics match ``[fn(item) for item in items]`` exactly,
        including which exception propagates when several items fail
        (the earliest).  Batches below ``min_parallel`` — and every
        batch on a ``workers <= 1`` engine — run inline.
        """
        batch = list(items)
        if not batch:
            return []
        pool = None
        if len(batch) >= self.min_parallel:
            pool = self.start()
        if pool is None:
            return _collect(_run_chunk(spec, batch))
        size = -(-len(batch) // (self.workers * self.chunks_per_worker))
        chunks = [batch[i:i + size] for i in range(0, len(batch), size)]
        try:
            chunked = pool.starmap(_run_chunk,
                                   [(spec, chunk) for chunk in chunks])
        except Exception:
            # A torn-down or crashed pool must never lose user work:
            # recompute inline, which also surfaces the real task error.
            return _collect(_run_chunk(spec, batch))
        return _collect(pair for chunk in chunked for pair in chunk)

    def parallel(self) -> bool:
        """True when ``map`` may actually fan out to worker processes."""
        return self.workers > 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CryptoEngine(workers=%d, min_parallel=%d)" % (
            self.workers, self.min_parallel)


# ---------------------------------------------------------------------------
# Process-wide default engine: HCPP_CRYPTO_WORKERS=N (unset/0 → disabled).
# Call sites take ``engine=None`` and fall back to this via `resolve`, so
# exporting the variable routes every hot path through the pool without
# touching any call signature — that is what the CI engine leg exercises.
# ---------------------------------------------------------------------------

_default_lock = threading.Lock()
_default_engine: CryptoEngine | None = None
_default_resolved = False


@atexit.register
def _close_default() -> None:
    """Join the default pool before interpreter teardown.

    An abandoned ``multiprocessing.Pool`` garbage-collected during
    shutdown races the dying pickler (``Exception ignored in
    Pool.__del__``); closing it while the interpreter is still whole
    keeps HCPP_CRYPTO_WORKERS runs silent on exit.
    """
    engine = _default_engine
    if engine is not None:
        engine.close()


def default_engine() -> CryptoEngine | None:
    """The engine configured by ``HCPP_CRYPTO_WORKERS``, or None."""
    global _default_engine, _default_resolved
    with _default_lock:
        if not _default_resolved:
            raw = os.environ.get("HCPP_CRYPTO_WORKERS", "").strip()
            if raw:
                try:
                    workers = int(raw)
                except ValueError:
                    raise ParameterError(
                        "HCPP_CRYPTO_WORKERS must be an integer, got %r"
                        % raw) from None
            else:
                workers = 0
            _default_engine = (CryptoEngine(workers) if workers > 1
                               else None)
            _default_resolved = True
        return _default_engine


def configure(workers: int, **kwargs: Any) -> CryptoEngine | None:
    """Install (workers > 1) or clear (workers <= 1) the default engine.

    Used by the CLI's ``--workers`` flag and by tests; any previously
    installed default is closed.  Returns the new default (or None).
    """
    global _default_engine, _default_resolved
    new = CryptoEngine(workers, **kwargs) if workers > 1 else None
    with _default_lock:
        old, _default_engine = _default_engine, new
        _default_resolved = True
    if old is not None:
        old.close()
    return new


def resolve(engine: "CryptoEngine | None") -> "CryptoEngine | None":
    """An explicit engine wins; otherwise the process default (may be None)."""
    return engine if engine is not None else default_engine()
