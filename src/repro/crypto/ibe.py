"""Boneh–Franklin identity-based encryption (the paper's IBE, ref [14]/[19]).

Both variants from the original paper are implemented:

* :class:`BasicIdent` — IND-ID-CPA secure; the textbook scheme
  (U = rP, V = m ⊕ H(ê(H1(ID), P_pub)^r)).
* :class:`FullIdent` — IND-ID-CCA secure via the Fujisaki–Okamoto
  transform; this is what HCPP uses on the wire (e.g. the A-server sending
  the one-time passcode ``IBE_TPp(ID_i ‖ nounce ‖ t11)`` to the P-device,
  and the P-device encrypting MHI under role identities).

The PKG role (master key generation + key extraction) is carried by
:class:`PrivateKeyGenerator`; HCPP's A-servers own one of these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import engine as engine_mod
from repro.crypto.ec import Point
from repro.crypto.hashes import h1_identity, h_g2_to_bytes, h_to_scalar
from repro.crypto.mathutil import xor_bytes
from repro.crypto.pairing import prepared, tate_pairing
from repro.crypto.params import DomainParams
from repro.crypto.rng import HmacDrbg
from repro.exceptions import DecryptionError, ParameterError

__all__ = ["PrivateKeyGenerator", "BasicIdent", "FullIdent",
           "IbeCiphertext", "IdentityKeyPair",
           "encrypt_to_point", "decrypt_with_point"]


@dataclass(frozen=True)
class IdentityKeyPair:
    """An extracted IBC key pair: PK = H1(ID), Γ = s·PK (paper notation)."""

    identity: str
    public: Point   # PK_i = H1(ID_i)
    private: Point  # Γ_i  = s0 · PK_i


@dataclass(frozen=True)
class IbeCiphertext:
    """A BF-IBE ciphertext (U ∈ G1, V, and W for FullIdent)."""

    U: Point
    V: bytes
    W: bytes = b""

    def size_bytes(self) -> int:
        """Wire size (used by the communication-cost experiments)."""
        return len(self.U.to_bytes()) + len(self.V) + len(self.W)

    def to_bytes(self) -> bytes:
        u = self.U.to_bytes()
        return (len(u).to_bytes(2, "big") + u
                + len(self.V).to_bytes(4, "big") + self.V
                + len(self.W).to_bytes(4, "big") + self.W)

    @classmethod
    def from_bytes(cls, data: bytes, curve) -> "IbeCiphertext":
        u_len = int.from_bytes(data[:2], "big")
        offset = 2
        U = Point.from_bytes(data[offset:offset + u_len], curve)
        offset += u_len
        v_len = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        V = data[offset:offset + v_len]
        offset += v_len
        w_len = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        W = data[offset:offset + w_len]
        if len(V) != v_len or len(W) != w_len or offset + w_len != len(data):
            raise ParameterError("malformed IBE ciphertext encoding")
        return cls(U=U, V=V, W=W)


class PrivateKeyGenerator:
    """The PKG: holds the IBC master secret s0 and extracts private keys.

    In HCPP each *state A-server* runs one of these for its domain; the
    public side (P_pub = s0·P) is published in the domain parameters.
    """

    def __init__(self, params: DomainParams, rng: HmacDrbg) -> None:
        self.params = params
        self._master_secret = params.random_scalar(rng)
        self.public_key = params.point_mul_generator(self._master_secret)  # P_pub

    @classmethod
    def from_secret(cls, params: DomainParams, secret: int) -> "PrivateKeyGenerator":
        """Rebuild a PKG from a known master secret (testing / HIBC levels)."""
        pkg = cls.__new__(cls)
        pkg.params = params
        pkg._master_secret = secret % params.r
        if pkg._master_secret == 0:
            raise ParameterError("master secret must be nonzero mod r")
        pkg.public_key = params.point_mul_generator(pkg._master_secret)
        return pkg

    def extract(self, identity: str) -> IdentityKeyPair:
        """Extract the key pair for ``identity``: Γ = s0·H1(ID)."""
        public = h1_identity(self.params, identity)
        private = public * self._master_secret
        return IdentityKeyPair(identity=identity, public=public, private=private)

    def extract_batch(self, identities: "list[str]",
                      engine: "engine_mod.CryptoEngine | None" = None
                      ) -> list[IdentityKeyPair]:
        """``[extract(id) for id in identities]`` — engine-parallel.

        Role-key issuance (A-server handing a physician one key per role
        window) is a hash-to-curve plus a full scalar multiplication per
        identity; worker processes split the batch.  The master secret
        rides in the task tuples — they never leave this machine's own
        pool processes (fork/spawn children, not the network).
        """
        items = [(self.params, self._master_secret, identity)
                 for identity in identities]
        eng = engine_mod.resolve(engine)
        if eng is not None:
            return eng.map(_EXTRACT_SPEC, items)
        return [_extract_task(item) for item in items]

    @property
    def master_secret(self) -> int:
        """Exposed for the HIBC construction; never sent on the wire."""
        return self._master_secret


_EXTRACT_SPEC = "repro.crypto.ibe:_extract_task"


def _extract_task(item: tuple) -> IdentityKeyPair:
    """Per-identity share of :meth:`PrivateKeyGenerator.extract_batch`."""
    params, master_secret, identity = item
    public = h1_identity(params, identity)
    return IdentityKeyPair(identity=identity, public=public,
                           private=public * master_secret)


class BasicIdent:
    """BF BasicIdent: IND-ID-CPA encryption to an identity."""

    def __init__(self, params: DomainParams, pkg_public: Point) -> None:
        self.params = params
        self.pkg_public = pkg_public

    def encrypt(self, identity: str, message: bytes, rng: HmacDrbg) -> IbeCiphertext:
        r = self.params.random_scalar(rng)
        U = self.params.point_mul_generator(r)
        # Fixed-argument pairing: P_pub never changes, the identity does —
        # the symmetric pairing lets the prepared side take the first slot.
        g_id = prepared(self.pkg_public).pair(h1_identity(self.params, identity))
        mask = h_g2_to_bytes(g_id ** r, len(message))
        return IbeCiphertext(U=U, V=xor_bytes(message, mask))

    def decrypt(self, key: IdentityKeyPair, ciphertext: IbeCiphertext) -> bytes:
        mask = h_g2_to_bytes(tate_pairing(key.private, ciphertext.U),
                             len(ciphertext.V))
        return xor_bytes(ciphertext.V, mask)


class FullIdent:
    """BF FullIdent: IND-ID-CCA encryption via Fujisaki–Okamoto.

    Encryption:  σ ←$ {0,1}^32;  r = H4(σ, m);  U = rP;
                 V = σ ⊕ H(ê(H1(ID), P_pub)^r);  W = m ⊕ H5(σ).
    Decryption recomputes r and rejects when U ≠ rP (ciphertext integrity).
    """

    SIGMA_BYTES = 32

    def __init__(self, params: DomainParams, pkg_public: Point) -> None:
        self.params = params
        self.pkg_public = pkg_public

    def _h4(self, sigma: bytes, message: bytes) -> int:
        return h_to_scalar(self.params, b"FO-H4", sigma, message)

    @staticmethod
    def _h5(sigma: bytes, length: int) -> bytes:
        import hashlib
        output = b""
        counter = 0
        while len(output) < length:
            output += hashlib.sha256(
                b"FO-H5" + counter.to_bytes(4, "big") + sigma).digest()
            counter += 1
        return output[:length]

    def encrypt(self, identity: str, message: bytes, rng: HmacDrbg) -> IbeCiphertext:
        sigma = rng.random_bytes(self.SIGMA_BYTES)
        r = self._h4(sigma, message)
        U = self.params.point_mul_generator(r)
        g_id = prepared(self.pkg_public).pair(h1_identity(self.params, identity))
        V = xor_bytes(sigma, h_g2_to_bytes(g_id ** r, self.SIGMA_BYTES))
        W = xor_bytes(message, self._h5(sigma, len(message)))
        return IbeCiphertext(U=U, V=V, W=W)

    def decrypt(self, key: IdentityKeyPair, ciphertext: IbeCiphertext) -> bytes:
        if len(ciphertext.V) != self.SIGMA_BYTES:
            raise DecryptionError("malformed FullIdent ciphertext (V size)")
        sigma = xor_bytes(
            ciphertext.V,
            h_g2_to_bytes(tate_pairing(key.private, ciphertext.U),
                          self.SIGMA_BYTES))
        message = xor_bytes(ciphertext.W, self._h5(sigma, len(ciphertext.W)))
        r = self._h4(sigma, message)
        if self.params.point_mul_generator(r) != ciphertext.U:
            raise DecryptionError("FullIdent FO check failed: ciphertext "
                                  "tampered or wrong identity key")
        return message


def encrypt_to_point(params: DomainParams, pkg_public: Point,
                     public_point: Point, message: bytes,
                     rng: HmacDrbg) -> IbeCiphertext:
    """BF encryption to a *raw public-key point* instead of an identity.

    HCPP's emergency step 3 sends ``IBE_TPp(ID_i ‖ nounce ‖ t11)`` where
    TP_p is the P-device's pseudonymous public key (a G1 point with
    private half Γ_p = s0·TP_p) — not a hashed identity.  The scheme is
    identical to BasicIdent with H1(ID) replaced by the point:
    U = rP, V = m ⊕ H(ê(TP_p, P_pub)^r); decryption uses ê(Γ_p, U).
    """
    if public_point.is_infinity:
        raise ParameterError("cannot encrypt to the infinity point")
    r = params.random_scalar(rng)
    U = params.point_mul_generator(r)
    mask = h_g2_to_bytes(prepared(pkg_public).pair(public_point) ** r,
                         len(message))
    return IbeCiphertext(U=U, V=xor_bytes(message, mask))


def decrypt_with_point(private_point: Point,
                       ciphertext: IbeCiphertext) -> bytes:
    """Decrypt :func:`encrypt_to_point` output with Γ = s0·PK."""
    if private_point.is_infinity:
        raise ParameterError("infinity private key")
    mask = h_g2_to_bytes(tate_pairing(private_point, ciphertext.U),
                         len(ciphertext.V))
    return xor_bytes(ciphertext.V, mask)
