"""Cryptographic substrate of the HCPP reproduction.

Everything HCPP's protocols need, implemented from scratch:

* pairing groups (:mod:`~repro.crypto.fields`, :mod:`~repro.crypto.ec`,
  :mod:`~repro.crypto.pairing`, :mod:`~repro.crypto.params`)
* identity-based primitives (:mod:`~repro.crypto.ibe`,
  :mod:`~repro.crypto.ibs`, :mod:`~repro.crypto.hibc`,
  :mod:`~repro.crypto.nike`, :mod:`~repro.crypto.pseudonym`)
* searchable-encryption building blocks (:mod:`~repro.crypto.prf`,
  :mod:`~repro.crypto.prp`, :mod:`~repro.crypto.peks`)
* symmetric layer (:mod:`~repro.crypto.aes`, :mod:`~repro.crypto.modes`,
  :mod:`~repro.crypto.hmac_impl`, :mod:`~repro.crypto.rng`)
* group management (:mod:`~repro.crypto.broadcast`)
"""

from repro.crypto.pairing import PreparedPairing, prepared
from repro.crypto.params import DomainParams, default_params, test_params
from repro.crypto.precompute import (PrecomputedPoint, fixed_base_mul,
                                     precomputed)
from repro.crypto.rng import HmacDrbg

__all__ = ["DomainParams", "default_params", "test_params", "HmacDrbg",
           "PrecomputedPoint", "precomputed", "fixed_base_mul",
           "PreparedPairing", "prepared"]
