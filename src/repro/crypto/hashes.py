"""Hash functions of the HCPP domain: H1, H2, H3 and companions.

The paper's system setup publishes:

* H1 : {0,1}* → G1 — identity hashing for IBC key pairs
  (PK_i = H1(ID_i)); implemented by try-and-increment onto the curve
  followed by cofactor multiplication so the output lies in the order-r
  subgroup.
* H2 : KW → G1 — keyword hashing for PEKS (same construction with a
  distinct domain-separation tag).  We additionally expose h2 : KW → Z*_q,
  the scalar variant needed by the consistent identity-based PEKS reading
  (see DESIGN.md substitution note).
* H3 : G2 → Z*_q — maps pairing values to scalars/search tokens.

Plus :func:`h_g2_to_bytes` (the BF-IBE masking hash G2 → {0,1}^n) and
:func:`h_to_scalar` (message hashing for signatures).
"""

from __future__ import annotations

import hashlib

from repro.crypto import mathutil
from repro.crypto.ec import Point
from repro.crypto.fields import Fp2Element
from repro.crypto.params import DomainParams

_H1_TAG = b"HCPP-H1-identity:"
_H2_TAG = b"HCPP-H2-keyword:"
_H3_TAG = b"HCPP-H3-pairing:"
_HS_TAG = b"HCPP-HS-scalar:"
_HM_TAG = b"HCPP-HM-mask:"


def _hash_to_point(params: DomainParams, tag: bytes, data: bytes) -> Point:
    """Try-and-increment hash onto the order-r subgroup of E(F_p).

    Each candidate x-coordinate is derived from SHA-256(tag ‖ counter ‖
    data) expanded to the field size; about half the candidates lift to the
    curve, and cofactor multiplication lands the point in G1.  The expected
    number of iterations is 2, and the loop is deterministic in ``data``.
    """
    curve = params.curve
    counter = 0
    while True:
        digest = b""
        block = 0
        while len(digest) < curve.field_bytes + 16:
            digest += hashlib.sha256(
                tag + counter.to_bytes(4, "big") + block.to_bytes(4, "big") + data
            ).digest()
            block += 1
        x = mathutil.bytes_to_int(digest) % curve.p
        lifted = Point.from_x(x, curve, parity=counter & 1)
        if lifted is not None:
            candidate = lifted * curve.h
            if not candidate.is_infinity:
                return candidate
        counter += 1


def h1_identity(params: DomainParams, identity: str | bytes) -> Point:
    """H1: map an identity string to its public key in G1."""
    if isinstance(identity, str):
        identity = identity.encode()
    return _hash_to_point(params, _H1_TAG, identity)


def h2_keyword_point(params: DomainParams, keyword: str | bytes) -> Point:
    """H2: map a PEKS keyword to a point of G1."""
    if isinstance(keyword, str):
        keyword = keyword.encode()
    return _hash_to_point(params, _H2_TAG, keyword)


def h2_keyword_scalar(params: DomainParams, keyword: str | bytes) -> int:
    """h2: map a keyword to a scalar in Z*_r (identity-based PEKS variant)."""
    if isinstance(keyword, str):
        keyword = keyword.encode()
    return params.scalar_from_bytes(_H2_TAG + keyword)


def h3_pairing_to_scalar(params: DomainParams, value: Fp2Element) -> int:
    """H3: G2 → Z*_q, used for PEKS search tokens."""
    return params.scalar_from_bytes(_H3_TAG + value.to_bytes())


def h3_pairing_to_bytes(value: Fp2Element, length: int = 32) -> bytes:
    """H3 variant emitting a byte token (what the S-server stores/compares)."""
    output = b""
    counter = 0
    encoded = value.to_bytes()
    while len(output) < length:
        output += hashlib.sha256(
            _H3_TAG + counter.to_bytes(4, "big") + encoded).digest()
        counter += 1
    return output[:length]


def h_g2_to_bytes(value: Fp2Element, length: int) -> bytes:
    """The BF-IBE masking hash H : G2 → {0,1}^n (keystream from a pairing)."""
    output = b""
    counter = 0
    encoded = value.to_bytes()
    while len(output) < length:
        output += hashlib.sha256(
            _HM_TAG + counter.to_bytes(4, "big") + encoded).digest()
        counter += 1
    return output[:length]


def h_to_scalar(params: DomainParams, *parts: bytes) -> int:
    """Hash arbitrary byte strings to a scalar in Z*_r (signatures, FO)."""
    hasher = hashlib.sha256(_HS_TAG)
    for part in parts:
        hasher.update(len(part).to_bytes(8, "big"))
        hasher.update(part)
    return params.scalar_from_bytes(hasher.digest())
