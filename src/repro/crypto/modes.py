"""Block-cipher modes and authenticated encryption.

Provides the semantically secure symmetric encryption the paper calls
E / E′, in three layers:

* :func:`ctr_transform` — raw AES-CTR keystream XOR (enc == dec).
* :class:`SemanticCipher` — randomized CTR encryption with a fresh nonce
  per message (IND-CPA); this is the paper's "semantically secure symmetric
  key encryption E" used for secure-index nodes.
* :class:`AuthenticatedCipher` — encrypt-then-MAC (AES-CTR + HMAC-SHA256)
  for protocol payloads where integrity matters (E′ in privilege
  assignment / REVOKE messages).

Nonces are drawn from a DRBG passed by the caller so experiments stay
reproducible.  Key separation between the encryption and MAC keys is
derived via HMAC with distinct labels.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.hmac_impl import hmac_sha256, verify_hmac
from repro.crypto.rng import HmacDrbg
from repro.exceptions import DecryptionError, ParameterError

NONCE_SIZE = 12
TAG_SIZE = 32


def ctr_transform(cipher: AES, nonce: bytes, data: bytes) -> bytes:
    """CTR-mode keystream XOR: encrypt and decrypt are the same operation.

    The 16-byte counter block is ``nonce (12 bytes) ‖ counter (4 bytes)``,
    so one nonce safely covers 2³² blocks (64 GiB), far beyond any PHI file.
    """
    if len(nonce) != NONCE_SIZE:
        raise ParameterError("CTR nonce must be %d bytes" % NONCE_SIZE)
    output = bytearray(len(data))
    for block_index in range((len(data) + BLOCK_SIZE - 1) // BLOCK_SIZE):
        counter_block = nonce + block_index.to_bytes(4, "big")
        keystream = cipher.encrypt_block(counter_block)
        start = block_index * BLOCK_SIZE
        chunk = data[start: start + BLOCK_SIZE]
        for i, byte in enumerate(chunk):
            output[start + i] = byte ^ keystream[i]
    return bytes(output)


def _derive_key(master: bytes, label: bytes, length: int = 16) -> bytes:
    """Derive a sub-key from a master secret with domain separation."""
    return hmac_sha256(master, b"hcpp-kdf:" + label)[:length]


class SemanticCipher:
    """Randomized symmetric encryption (IND-CPA) — the paper's E.

    Accepts keys of any length (they are mapped through a KDF to an AES-128
    key), because the SSE construction generates γ-bit node keys λ that are
    not necessarily 16 bytes.
    """

    #: ciphertext expansion in bytes (the prepended nonce)
    OVERHEAD = NONCE_SIZE

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ParameterError("empty key")
        self._aes = AES(_derive_key(key, b"enc"))

    def encrypt(self, plaintext: bytes, rng: HmacDrbg) -> bytes:
        """Encrypt with a fresh random nonce: returns ``nonce ‖ ciphertext``."""
        nonce = rng.random_bytes(NONCE_SIZE)
        return nonce + ctr_transform(self._aes, nonce, plaintext)

    def decrypt(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) < NONCE_SIZE:
            raise DecryptionError("ciphertext shorter than the nonce")
        nonce, body = ciphertext[:NONCE_SIZE], ciphertext[NONCE_SIZE:]
        return ctr_transform(self._aes, nonce, body)


class AuthenticatedCipher:
    """Encrypt-then-MAC authenticated encryption — the paper's E′.

    Layout: ``nonce ‖ ciphertext ‖ HMAC(nonce ‖ ciphertext ‖ ad)``.
    ``associated_data`` is authenticated but not encrypted (used for the
    timestamps t₂, t₃ in privilege-assignment messages).
    """

    OVERHEAD = NONCE_SIZE + TAG_SIZE

    def __init__(self, key: bytes) -> None:
        if not key:
            raise ParameterError("empty key")
        self._aes = AES(_derive_key(key, b"enc"))
        self._mac_key = _derive_key(key, b"mac", 32)

    def encrypt(self, plaintext: bytes, rng: HmacDrbg,
                associated_data: bytes = b"") -> bytes:
        nonce = rng.random_bytes(NONCE_SIZE)
        body = ctr_transform(self._aes, nonce, plaintext)
        tag = hmac_sha256(self._mac_key, nonce + body + associated_data)
        return nonce + body + tag

    def decrypt(self, ciphertext: bytes, associated_data: bytes = b"") -> bytes:
        if len(ciphertext) < NONCE_SIZE + TAG_SIZE:
            raise DecryptionError("authenticated ciphertext too short")
        tag = ciphertext[-TAG_SIZE:]
        nonce_body = ciphertext[:-TAG_SIZE]
        try:
            verify_hmac(self._mac_key, nonce_body + associated_data, tag)
        except Exception as exc:
            raise DecryptionError("authentication tag mismatch") from exc
        nonce, body = nonce_body[:NONCE_SIZE], nonce_body[NONCE_SIZE:]
        return ctr_transform(self._aes, nonce, body)


def cbc_encrypt(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    """CBC mode with PKCS#7 padding (provided for completeness / tests)."""
    if len(iv) != BLOCK_SIZE:
        raise ParameterError("CBC IV must be one block")
    pad = BLOCK_SIZE - len(plaintext) % BLOCK_SIZE
    padded = plaintext + bytes([pad] * pad)
    output = bytearray()
    previous = iv
    for i in range(0, len(padded), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(padded[i:i + BLOCK_SIZE], previous))
        encrypted = cipher.encrypt_block(block)
        output.extend(encrypted)
        previous = encrypted
    return bytes(output)


def cbc_decrypt(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC decryption; raises :class:`DecryptionError` on bad padding."""
    if len(iv) != BLOCK_SIZE or len(ciphertext) % BLOCK_SIZE:
        raise DecryptionError("malformed CBC ciphertext")
    output = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i:i + BLOCK_SIZE]
        decrypted = cipher.decrypt_block(block)
        output.extend(a ^ b for a, b in zip(decrypted, previous))
        previous = block
    if not output:
        raise DecryptionError("empty CBC ciphertext")
    pad = output[-1]
    if pad < 1 or pad > BLOCK_SIZE or output[-pad:] != bytearray([pad] * pad):
        raise DecryptionError("bad PKCS#7 padding")
    return bytes(output[:-pad])
