"""Elliptic-curve arithmetic on the supersingular curve E: y² = x³ + x.

This is the curve underlying the "Type A" pairing parameters popularised by
the PBC library and used as the standard instantiation of Boneh–Franklin
IBE — exactly the setting HCPP's protocols assume.  Over F_p with
``p ≡ 3 (mod 4)`` the curve is supersingular with ``#E(F_p) = p + 1`` and
embedding degree 2.  The prime-order-r subgroup of E(F_p) serves as G1.

Two point representations are provided:

* :class:`Point` — immutable affine points (or infinity).  Clear, safe,
  used at API boundaries and in tests.
* Jacobian-coordinate helpers (:func:`jacobian_double`,
  :func:`jacobian_add`, :func:`scalar_mult_jacobian`) — inversion-free
  arithmetic for the hot paths (scalar multiplication, hashing to the
  curve).  The pairing module has its own fused Miller-loop arithmetic.

The distortion map ψ(x, y) = (−x, i·y) (with i² = −1 in F_p²) maps
E(F_p) points into a linearly independent subgroup of E(F_p²), turning the
Tate pairing into a symmetric pairing ê(P, Q) = e(P, ψ(Q)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto import mathutil
from repro.crypto.fields import Fp2Element
from repro.exceptions import NotOnCurveError, ParameterError


@dataclass(frozen=True)
class CurveParams:
    """Domain parameters (q, G1, G2, e, P) of the paper's setup.

    ``p`` is the base-field prime, ``r`` the prime order of G1, ``h`` the
    cofactor with ``p + 1 = h * r``.  The generator is stored separately by
    :class:`repro.crypto.params.DomainParams`.
    """

    p: int
    r: int
    h: int

    def __post_init__(self) -> None:
        if self.p % 4 != 3:
            raise ParameterError("supersingular curve requires p ≡ 3 (mod 4)")
        if (self.p + 1) != self.h * self.r:
            raise ParameterError("cofactor mismatch: p + 1 != h * r")

    @property
    def field_bytes(self) -> int:
        return mathutil.bit_length_bytes(self.p)


class Point:
    """An affine point on E: y² = x³ + x over F_p, or the point at infinity.

    Instances are immutable and hashable, so points can key dictionaries
    (e.g. precomputation tables).  ``Point.infinity(curve)`` is the identity.
    """

    __slots__ = ("x", "y", "curve", "_infinity")

    def __init__(self, x: int, y: int, curve: CurveParams, *,
                 infinity: bool = False, check: bool = True) -> None:
        self.curve = curve
        self._infinity = infinity
        if infinity:
            self.x = 0
            self.y = 0
            return
        p = curve.p
        self.x = x % p
        self.y = y % p
        if check and not self._on_curve():
            raise NotOnCurveError("point (%d, %d) not on y^2 = x^3 + x" % (x, y))

    # -- construction ------------------------------------------------------
    @classmethod
    def infinity_point(cls, curve: CurveParams) -> "Point":
        return cls(0, 0, curve, infinity=True, check=False)

    @classmethod
    def from_x(cls, x: int, curve: CurveParams, parity: int = 0) -> Optional["Point"]:
        """Lift ``x`` to a curve point, or ``None`` when x³+x is a non-residue.

        ``parity`` selects which of the two roots ±y is returned (matching
        ``y % 2``), making decompression deterministic.
        """
        p = curve.p
        rhs = (pow(x, 3, p) + x) % p
        if rhs == 0:
            return cls(x, 0, curve, check=False)
        if not mathutil.is_quadratic_residue(rhs, p):
            return None
        y = mathutil.sqrt_mod(rhs, p)
        if y % 2 != parity:
            y = p - y
        return cls(x, y, curve, check=False)

    # -- predicates ----------------------------------------------------------
    def _on_curve(self) -> bool:
        p = self.curve.p
        return (self.y * self.y - (pow(self.x, 3, p) + self.x)) % p == 0

    @property
    def is_infinity(self) -> bool:
        return self._infinity

    def is_in_subgroup(self) -> bool:
        """True when the point lies in the order-r subgroup G1."""
        return (self * self.curve.r).is_infinity

    # -- group law -------------------------------------------------------
    def __neg__(self) -> "Point":
        if self._infinity:
            return self
        return Point(self.x, -self.y % self.curve.p, self.curve, check=False)

    def __add__(self, other: "Point") -> "Point":
        if self.curve is not other.curve and self.curve != other.curve:
            raise ParameterError("points on different curves")
        if self._infinity:
            return other
        if other._infinity:
            return self
        p = self.curve.p
        if self.x == other.x:
            if (self.y + other.y) % p == 0:
                return Point.infinity_point(self.curve)
            # Doubling: slope = (3x² + 1) / 2y   (curve a-coefficient is 1).
            slope = (3 * self.x * self.x + 1) * mathutil.inv_mod(2 * self.y, p) % p
        else:
            slope = (other.y - self.y) * mathutil.inv_mod(other.x - self.x, p) % p
        x3 = (slope * slope - self.x - other.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p
        return Point(x3, y3, self.curve, check=False)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def double(self) -> "Point":
        """Double via the tangent formula directly (no generic-add dispatch)."""
        if self._infinity:
            return self
        p = self.curve.p
        if self.y == 0:
            # The tangent is vertical: 2P = O.
            return Point.infinity_point(self.curve)
        slope = (3 * self.x * self.x + 1) * mathutil.inv_mod(2 * self.y, p) % p
        x3 = (slope * slope - 2 * self.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p
        return Point(x3, y3, self.curve, check=False)

    def __mul__(self, scalar: int) -> "Point":
        """Scalar multiplication via Jacobian coordinates with NAF."""
        scalar %= self.curve.r * self.curve.h  # group order p+1 bounds any scalar
        if scalar == 0 or self._infinity:
            return Point.infinity_point(self.curve)
        result = scalar_mult_jacobian(self.x, self.y, scalar, self.curve.p)
        if result is None:
            return Point.infinity_point(self.curve)
        return Point(result[0], result[1], self.curve, check=False)

    __rmul__ = __mul__

    # -- equality / hashing / encoding ------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self._infinity or other._infinity:
            return self._infinity and other._infinity
        return (self.x, self.y, self.curve.p) == (other.x, other.y, other.curve.p)

    def __hash__(self) -> int:
        if self._infinity:
            return hash(("inf", self.curve.p))
        return hash((self.x, self.y, self.curve.p))

    def to_bytes(self) -> bytes:
        """Uncompressed encoding ``0x04 ‖ x ‖ y``; infinity is ``0x00``."""
        if self._infinity:
            return b"\x00"
        length = self.curve.field_bytes
        return (b"\x04" + mathutil.int_to_bytes(self.x, length)
                + mathutil.int_to_bytes(self.y, length))

    @classmethod
    def from_bytes(cls, data: bytes, curve: CurveParams) -> "Point":
        if data == b"\x00":
            return cls.infinity_point(curve)
        length = curve.field_bytes
        if len(data) != 1 + 2 * length or data[0] != 0x04:
            raise ParameterError("bad point encoding")
        x = mathutil.bytes_to_int(data[1:1 + length])
        y = mathutil.bytes_to_int(data[1 + length:])
        return cls(x, y, curve)

    def distort(self) -> tuple[Fp2Element, Fp2Element]:
        """Apply the distortion map ψ(x, y) = (−x, i·y), yielding F_p² coords."""
        if self._infinity:
            raise ParameterError("cannot distort the point at infinity")
        p = self.curve.p
        return (Fp2Element(-self.x % p, 0, p), Fp2Element(0, self.y, p))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._infinity:
            return "Point(infinity)"
        return "Point(%d, %d)" % (self.x, self.y)


# ---------------------------------------------------------------------------
# Jacobian-coordinate kernels.  A Jacobian triple (X, Y, Z) represents the
# affine point (X/Z², Y/Z³); Z == 0 encodes infinity.  These avoid a field
# inversion per group operation, which dominates affine arithmetic cost.
# ---------------------------------------------------------------------------

Jacobian = tuple[int, int, int]


def jacobian_double(pt: Jacobian, p: int) -> Jacobian:
    """Double a Jacobian point on y² = x³ + x (a = 1)."""
    x, y, z = pt
    if z == 0 or y == 0:
        return (1, 1, 0)
    ysq = y * y % p
    s = 4 * x * ysq % p
    z2 = z * z % p
    # m = 3x² + a·z⁴ with a = 1.
    m = (3 * x * x + z2 * z2) % p
    nx = (m * m - 2 * s) % p
    ny = (m * (s - nx) - 8 * ysq * ysq) % p
    nz = 2 * y * z % p
    return (nx, ny, nz)


def jacobian_add(p1: Jacobian, p2: Jacobian, p: int) -> Jacobian:
    """Add two Jacobian points on y² = x³ + x."""
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if z1 == 0:
        return p2
    if z2 == 0:
        return p1
    z1sq = z1 * z1 % p
    z2sq = z2 * z2 % p
    u1 = x1 * z2sq % p
    u2 = x2 * z1sq % p
    s1 = y1 * z2sq * z2 % p
    s2 = y2 * z1sq * z1 % p
    if u1 == u2:
        if s1 != s2:
            return (1, 1, 0)
        return jacobian_double(p1, p)
    h = (u2 - u1) % p
    r = (s2 - s1) % p
    hsq = h * h % p
    hcu = hsq * h % p
    u1hsq = u1 * hsq % p
    nx = (r * r - hcu - 2 * u1hsq) % p
    ny = (r * (u1hsq - nx) - s1 * hcu) % p
    nz = h * z1 * z2 % p
    return (nx, ny, nz)


def jacobian_add_affine(p1: Jacobian, x2: int, y2: int, p: int) -> Jacobian:
    """Mixed addition of a Jacobian point and an affine point (Z2 = 1).

    Specialising :func:`jacobian_add` to a unit second Z saves four field
    multiplications per addition — the common case when accumulating
    precomputed table entries, which are stored in affine form.
    """
    x1, y1, z1 = p1
    if z1 == 0:
        return (x2, y2, 1)
    z1sq = z1 * z1 % p
    u2 = x2 * z1sq % p
    s2 = y2 * z1sq * z1 % p
    if x1 == u2:
        if (y1 - s2) % p != 0:
            return (1, 1, 0)
        return jacobian_double(p1, p)
    h = (u2 - x1) % p
    r = (s2 - y1) % p
    hsq = h * h % p
    hcu = hsq * h % p
    u1hsq = x1 * hsq % p
    nx = (r * r - hcu - 2 * u1hsq) % p
    ny = (r * (u1hsq - nx) - y1 * hcu) % p
    nz = h * z1 % p
    return (nx, ny, nz)


def jacobian_neg(pt: Jacobian, p: int) -> Jacobian:
    x, y, z = pt
    return (x, -y % p, z)


def jacobian_to_affine(pt: Jacobian, p: int) -> Optional[tuple[int, int]]:
    """Convert to affine coordinates; ``None`` for infinity."""
    x, y, z = pt
    if z == 0:
        return None
    z_inv = mathutil.inv_mod(z, p)
    z_inv_sq = z_inv * z_inv % p
    return (x * z_inv_sq % p, y * z_inv_sq * z_inv % p)


def scalar_mult_jacobian(x: int, y: int, scalar: int,
                         p: int) -> Optional[tuple[int, int]]:
    """Compute ``scalar * (x, y)`` and return affine coords (None = infinity).

    Uses the NAF of the scalar, saving ~11% of additions over plain binary.
    """
    if scalar == 0:
        return None
    if scalar < 0:
        result = scalar_mult_jacobian(x, y, -scalar, p)
        if result is None:
            return None
        return (result[0], -result[1] % p)
    base: Jacobian = (x, y, 1)
    neg_base: Jacobian = (x, -y % p, 1)
    acc: Jacobian = (1, 1, 0)
    for digit in reversed(mathutil.naf(scalar)):
        acc = jacobian_double(acc, p)
        if digit == 1:
            acc = jacobian_add(acc, base, p)
        elif digit == -1:
            acc = jacobian_add(acc, neg_base, p)
    return jacobian_to_affine(acc, p)
