"""Hierarchical IBC — the paper's federal → state → hospital tree (§IV.A).

The paper's lower-level setup is verbatim Gentry–Silverberg HIDE:

    *"PA computes K_j = H1(ID_1, …, ID_j) … and a private key for each
    child at level j as ψ_j = ψ_{j−1} + s_{j−1}·K_j where s_{j−1} is PA's
    randomly chosen secret, and distributes {Q_l : 1 ≤ l < j} to each child
    where Q_l = s_l·P."*

Levels in HCPP: level 1 = federal A-server (root PKG *and* a level-1
entity), level 2 = state A-servers, level 3 = hospitals/clinics with their
affiliated physicians and S-servers.

Implemented here:

* :class:`HibcRoot` — the federal root PKG (holds s_0).
* :class:`HibcNode` — an entity at level j holding (ψ_j, Q_1..Q_{j−1})
  plus its own issuing secret s_j; can extract children, decrypt, sign.
* :func:`hibe_encrypt` / :meth:`HibcNode.decrypt` — BasicHIDE encryption
  to any identity tuple, used for cross-domain availability: a patient
  given a level-3 temporary pair can talk to *any* S-server in the country.
* :meth:`HibcNode.sign` / :func:`hids_verify` — the GS hierarchical
  signature (message treated as a level-(j+1) child), used when protocol
  parties sit in different state domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto import engine as engine_mod
from repro.crypto.ec import Point
from repro.crypto.hashes import h1_identity, h_g2_to_bytes
from repro.crypto.mathutil import xor_bytes
from repro.crypto.pairing import final_exponentiation, miller_loop, prepared
from repro.crypto.params import DomainParams
from repro.crypto.rng import HmacDrbg
from repro.exceptions import DecryptionError, ParameterError, SignatureError

__all__ = ["HibcRoot", "HibcNode", "HibeCiphertext", "HidsSignature",
           "hibe_encrypt", "hids_verify", "id_tuple_hash"]


def id_tuple_hash(params: DomainParams, id_tuple: tuple[str, ...],
                  depth: int) -> Point:
    """K_j = H1(ID_1, …, ID_j): hash the length-``depth`` prefix to G1."""
    if depth < 1 or depth > len(id_tuple):
        raise ParameterError("bad depth for identity tuple")
    material = "\x1f".join(id_tuple[:depth]).encode()
    return h1_identity(params, b"hibc:" + depth.to_bytes(2, "big") + material)


@dataclass(frozen=True)
class HibeCiphertext:
    """BasicHIDE ciphertext (U_0 = rP, U_2..U_t = r·K_l, V = m ⊕ mask)."""

    U0: Point
    Us: tuple[Point, ...]  # U_2 … U_t (empty for depth-1 recipients)
    V: bytes

    def size_bytes(self) -> int:
        return (len(self.U0.to_bytes())
                + sum(len(u.to_bytes()) for u in self.Us) + len(self.V))

    def to_bytes(self) -> bytes:
        out = bytearray()
        u0 = self.U0.to_bytes()
        out += len(u0).to_bytes(2, "big") + u0
        out += len(self.Us).to_bytes(1, "big")
        for u in self.Us:
            encoded = u.to_bytes()
            out += len(encoded).to_bytes(2, "big") + encoded
        out += len(self.V).to_bytes(4, "big") + self.V
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, curve) -> "HibeCiphertext":
        u0_len = int.from_bytes(data[:2], "big")
        offset = 2
        U0 = Point.from_bytes(data[offset:offset + u0_len], curve)
        offset += u0_len
        count = data[offset]
        offset += 1
        us = []
        for _ in range(count):
            u_len = int.from_bytes(data[offset:offset + 2], "big")
            offset += 2
            us.append(Point.from_bytes(data[offset:offset + u_len], curve))
            offset += u_len
        v_len = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        V = data[offset:offset + v_len]
        if len(V) != v_len or offset + v_len != len(data):
            raise ParameterError("malformed HIBE ciphertext encoding")
        return cls(U0=U0, Us=tuple(us), V=V)


@dataclass(frozen=True)
class HidsSignature:
    """GS hierarchical signature: sig = ψ_t + s_t·H1(tuple ‖ m), plus Q_t."""

    sig: Point
    q_values: tuple[Point, ...]  # Q_1 … Q_t (signer's chain incl. its own)

    def size_bytes(self) -> int:
        return (len(self.sig.to_bytes())
                + sum(len(q.to_bytes()) for q in self.q_values))

    def to_bytes(self) -> bytes:
        out = bytearray()
        sig = self.sig.to_bytes()
        out += len(sig).to_bytes(2, "big") + sig
        out += len(self.q_values).to_bytes(1, "big")
        for q in self.q_values:
            encoded = q.to_bytes()
            out += len(encoded).to_bytes(2, "big") + encoded
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, curve) -> "HidsSignature":
        sig_len = int.from_bytes(data[:2], "big")
        offset = 2
        sig = Point.from_bytes(data[offset:offset + sig_len], curve)
        offset += sig_len
        count = data[offset]
        offset += 1
        qs = []
        for _ in range(count):
            q_len = int.from_bytes(data[offset:offset + 2], "big")
            offset += 2
            qs.append(Point.from_bytes(data[offset:offset + q_len], curve))
            offset += q_len
        if offset != len(data):
            raise ParameterError("malformed HIDS signature encoding")
        return cls(sig=sig, q_values=tuple(qs))


class HibcRoot:
    """The federal A-server: root PKG of the HIBC tree (level 0 issuer).

    Holds the root secret s_0; publishes Q_0 = s_0·P as the tree-wide
    public key (``root_public``).
    """

    def __init__(self, params: DomainParams, rng: HmacDrbg) -> None:
        self.params = params
        self._s0 = params.random_scalar(rng)
        self.root_public = params.point_mul_generator(self._s0)  # Q_0

    def extract_child(self, identity: str, rng: HmacDrbg) -> "HibcNode":
        """Issue a level-1 entity (e.g. the federal A-server's own entity
        identity, or a state A-server directly under the root)."""
        id_tuple = (identity,)
        k1 = id_tuple_hash(self.params, id_tuple, 1)
        psi = k1 * self._s0  # ψ_1 = s_0 · K_1
        return HibcNode(params=self.params, root_public=self.root_public,
                        id_tuple=id_tuple, psi=psi, q_chain=(),
                        own_secret=self.params.random_scalar(rng))


@dataclass
class HibcNode:
    """An entity at level j of the HIBC tree.

    Private state: ψ_j (the GS private point), the Q-chain Q_1..Q_{j−1}
    received from ancestors, and this node's own issuing secret s_j.
    """

    params: DomainParams
    root_public: Point
    id_tuple: tuple[str, ...]
    psi: Point
    q_chain: tuple[Point, ...]  # Q_1 … Q_{j−1}
    own_secret: int = field(repr=False)

    @property
    def depth(self) -> int:
        return len(self.id_tuple)

    @property
    def own_q(self) -> Point:
        """Q_j = s_j·P for this node (published to children / verifiers)."""
        return self.params.point_mul_generator(self.own_secret)

    def extract_child(self, identity: str, rng: HmacDrbg) -> "HibcNode":
        """Level-(j+1) setup: ψ_{j+1} = ψ_j + s_j·K_{j+1}, hand down Q's."""
        child_tuple = self.id_tuple + (identity,)
        k_child = id_tuple_hash(self.params, child_tuple, len(child_tuple))
        child_psi = self.psi + k_child * self.own_secret
        return HibcNode(params=self.params, root_public=self.root_public,
                        id_tuple=child_tuple, psi=child_psi,
                        q_chain=self.q_chain + (self.own_q,),
                        own_secret=self.params.random_scalar(rng))

    def extract_children(self, identities: "list[str]", rng: HmacDrbg,
                         engine: "engine_mod.CryptoEngine | None" = None
                         ) -> "list[HibcNode]":
        """``[extract_child(id, rng) for id in identities]`` — parallel.

        A state A-server provisioning a hospital's worth of level-3
        entities does one hash-to-curve and one scalar multiplication
        per child.  The children's own secrets are drawn from ``rng``
        serially *up front* (the point arithmetic consumes no
        randomness, so the stream order — hence every secret — matches
        the serial loop exactly); workers then compute the K/ψ points.
        """
        secrets = [self.params.random_scalar(rng) for _ in identities]
        q_chain = self.q_chain + (self.own_q,)
        items = [(self.params, self.root_public, self.id_tuple, self.psi,
                  q_chain, self.own_secret, identity, secret)
                 for identity, secret in zip(identities, secrets)]
        eng = engine_mod.resolve(engine)
        if eng is not None:
            return eng.map(_EXTRACT_CHILD_SPEC, items)
        return [_extract_child_task(item) for item in items]

    # -- encryption ---------------------------------------------------------
    def decrypt(self, ciphertext: HibeCiphertext) -> bytes:
        """BasicHIDE decryption with ψ_j and the ancestor Q-chain.

        m = V ⊕ H( ê(U_0, ψ_t) / ∏_{l=2..t} ê(Q_{l−1}, U_l) ).
        Batched into one Miller-loop product with a single final
        exponentiation (Q's negated to realise the division).
        """
        t = self.depth
        if len(ciphertext.Us) != max(0, t - 1):
            raise DecryptionError("ciphertext depth does not match this node")
        # ψ_j is this node's long-lived point: prepared slot (symmetry of
        # ê and multiplicativity of the final exponentiation keep the
        # mask value unchanged).
        acc = prepared(self.psi).miller(ciphertext.U0)
        for l in range(2, t + 1):
            q_prev = self.q_chain[l - 2]  # Q_{l−1}
            u_l = ciphertext.Us[l - 2]
            if u_l.is_infinity or q_prev.is_infinity:
                raise DecryptionError("degenerate ciphertext component")
            acc = acc * miller_loop(-q_prev, u_l)
        mask_source = final_exponentiation(acc, self.params.curve)
        return xor_bytes(ciphertext.V, h_g2_to_bytes(mask_source,
                                                     len(ciphertext.V)))

    # -- signatures ----------------------------------------------------------
    def sign(self, message: bytes) -> HidsSignature:
        """GS HIDS: treat H1(tuple ‖ m) as a child and bind it with s_j."""
        p_m = _message_point(self.params, self.id_tuple, message)
        return HidsSignature(sig=self.psi + p_m * self.own_secret,
                             q_values=self.q_chain + (self.own_q,))


_EXTRACT_CHILD_SPEC = "repro.crypto.hibc:_extract_child_task"


def _extract_child_task(item: tuple) -> HibcNode:
    """Per-child share of :meth:`HibcNode.extract_children` — engine task.

    The child's secret is pre-drawn by the parent (rng stays serial);
    this computes only the deterministic point arithmetic."""
    (params, root_public, parent_tuple, psi, q_chain, own_secret,
     identity, child_secret) = item
    child_tuple = parent_tuple + (identity,)
    k_child = id_tuple_hash(params, child_tuple, len(child_tuple))
    return HibcNode(params=params, root_public=root_public,
                    id_tuple=child_tuple, psi=psi + k_child * own_secret,
                    q_chain=q_chain, own_secret=child_secret)


def _message_point(params: DomainParams, id_tuple: tuple[str, ...],
                   message: bytes) -> Point:
    """Hash a message, bound to the signer tuple, to a G1 point P_m."""
    material = ("\x1f".join(id_tuple)).encode() + b"\x00" + message
    return h1_identity(params, b"hids-msg:" + material)


def hibe_encrypt(params: DomainParams, root_public: Point,
                 id_tuple: tuple[str, ...], message: bytes,
                 rng: HmacDrbg) -> HibeCiphertext:
    """Encrypt to an identity tuple (any node in any domain of the tree)."""
    if not id_tuple:
        raise ParameterError("empty identity tuple")
    t = len(id_tuple)
    r = params.random_scalar(rng)
    U0 = params.point_mul_generator(r)
    Us = tuple(id_tuple_hash(params, id_tuple, l) * r for l in range(2, t + 1))
    k1 = id_tuple_hash(params, id_tuple, 1)
    mask_source = prepared(root_public).pair(k1) ** r
    V = xor_bytes(message, h_g2_to_bytes(mask_source, len(message)))
    return HibeCiphertext(U0=U0, Us=Us, V=V)


def hids_verify(params: DomainParams, root_public: Point,
                id_tuple: tuple[str, ...], message: bytes,
                signature: HidsSignature) -> bool:
    """Verify a GS hierarchical signature.

    Accept iff ê(P, sig) == ê(Q_0, K_1) · ∏_{l=2..t} ê(Q_{l−1}, K_l)
                           · ê(Q_t, P_m).
    One batched Miller product with the left side negated.
    """
    t = len(id_tuple)
    if len(signature.q_values) != t:
        return False
    if signature.sig.is_infinity:
        return False
    p_m = _message_point(params, id_tuple, message)
    acc = prepared(params.generator).miller(-signature.sig)
    acc = acc * prepared(root_public).miller(
        id_tuple_hash(params, id_tuple, 1))
    for l in range(2, t + 1):
        acc = acc * miller_loop(signature.q_values[l - 2],
                                id_tuple_hash(params, id_tuple, l))
    acc = acc * miller_loop(signature.q_values[t - 1], p_m)
    return final_exponentiation(acc, params.curve).is_one()


def hids_verify_or_raise(params: DomainParams, root_public: Point,
                         id_tuple: tuple[str, ...], message: bytes,
                         signature: HidsSignature) -> None:
    """Raise :class:`SignatureError` when HIDS verification fails."""
    if not hids_verify(params, root_public, id_tuple, message, signature):
        raise SignatureError("hierarchical signature failed for %r"
                             % (id_tuple,))
