"""Pseudonym self-generation (paper §IV.B, technique of ref [25]).

The hospital hands the patient a *temporary* IBC key pair (TP, Γ) with
Γ = s0·TP from the A-server's pool.  The patient then derives fresh valid
pairs locally, with no further PKG involvement:

    choose ρ ←$ Z*_q,   TP′ = ρ·TP,   Γ′ = ρ·Γ

Validity is preserved because Γ′ = ρ·s0·TP = s0·(ρ·TP) = s0·TP′ — the new
pair still verifies against the domain public key P_pub, yet is unlinkable
to the original pair (and to other derived pairs) under the DDH assumption
in G1... with one pairing-specific caveat honest about below.

**Linkage caveat**: in a *symmetric* pairing group DDH is easy
(ê(TP, Γ′) == ê(TP′, Γ) detects common ρ-ratio *if both private keys are
known*), but an observer only ever sees the public halves TP, TP′, for
which the pairs (TP, TP′) across sessions are uniformly random multiples —
linkage would require solving a DDH-like problem on public data
ê(TP, X)=ê(TP′, Y), which reveals nothing without a second reference
point.  Validity of a pair can nevertheless be *proved* by its holder by
signing with Γ′ (Hess IBS verifies against H1-free public key TP′
directly), which is how the S-server checks pseudonymous clients.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ec import Point
from repro.crypto.params import DomainParams
from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError

__all__ = ["TemporaryKeyPair", "self_generate"]


@dataclass(frozen=True)
class TemporaryKeyPair:
    """A pseudonymous key pair (TP_p, Γ_p) with Γ_p = s0·TP_p."""

    public: Point   # TP_p
    private: Point  # Γ_p

    def verify_consistency(self, params: DomainParams, pkg_public: Point) -> bool:
        """Check ê(Γ, P) == ê(TP, P_pub), i.e. Γ = s0·TP without knowing s0."""
        return params.pairing_ratio_check(
            (self.private, params.generator), (self.public, pkg_public))


def issue_temporary_pair(params: DomainParams, master_secret: int,
                         rng: HmacDrbg) -> TemporaryKeyPair:
    """A-server-side issuance of one pool pair: TP = t·P, Γ = s0·TP."""
    t = params.random_scalar(rng)
    public = params.point_mul_generator(t)
    private = public * master_secret
    return TemporaryKeyPair(public=public, private=private)


def self_generate(pair: TemporaryKeyPair, params: DomainParams,
                  rng: HmacDrbg) -> TemporaryKeyPair:
    """Patient-side derivation of a fresh unlinkable pair TP′=ρTP, Γ′=ρΓ."""
    if pair.public.is_infinity:
        raise ParameterError("cannot derive from the infinity pair")
    rho = params.random_scalar(rng)
    return TemporaryKeyPair(public=pair.public * rho, private=pair.private * rho)
