"""Fixed-base scalar-multiplication acceleration.

Every HCPP protocol round multiplies a *long-lived* point by a fresh
scalar: the domain generator P (pseudonym issuance, IBE/PEKS randomizers
U = rP, A = σP, HIBE U₀), the A-server master public key, and HIBC level
keys.  Generic double-and-add recomputes ~|r| doublings per call even
though the base never changes.

:class:`PrecomputedPoint` trades a one-time table build for an
addition-only evaluation: for window width w it stores

    T[i][d] = d · 2^{w·i} · P      for d ∈ [1, 2^w − 1]

so ``k·P = Σ_i T[i][k_i]`` where k_i are the base-2^w digits of k — about
⌈|order|/w⌉ *mixed* additions and **zero doublings** per multiplication.
Table entries are batch-normalised to affine coordinates with one shared
field inversion (Montgomery's trick), making every accumulation step a
cheap mixed addition.

Results are bit-identical to ``point * scalar``: when the base lies in the
order-r subgroup (every long-lived point in HCPP does), scalars reduce mod
r; otherwise mod the full group order r·h — exactly the reductions
:meth:`Point.__mul__` applies.

The module-level :func:`precomputed` registry memoises tables per (point,
window) with a bounded LRU so call sites simply route fixed-base products
through :func:`fixed_base_mul`; the first call on a base pays the build,
all later calls reuse it.  The registry is lock-protected — the parallel
S-server search path hits it from worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.crypto.ec import (CurveParams, Jacobian, Point, jacobian_add,
                             jacobian_add_affine, jacobian_double,
                             jacobian_to_affine)
from repro.crypto import mathutil
from repro.exceptions import ParameterError

__all__ = ["PrecomputedPoint", "precomputed", "fixed_base_mul",
           "clear_registry", "DEFAULT_WINDOW"]

DEFAULT_WINDOW = 4


def _batch_to_affine(entries: list[Jacobian], p: int) -> list[tuple[int, int]]:
    """Normalise Jacobian points to affine with one shared inversion.

    Montgomery's trick: invert the product of all Z coordinates once, then
    peel individual inverses off with two multiplications each.  All
    entries must be non-infinity (guaranteed by the table structure: the
    digit multiples d·2^{w·i} never vanish mod an odd order).
    """
    prefix: list[int] = []
    acc = 1
    for _, _, z in entries:
        acc = acc * z % p
        prefix.append(acc)
    inv = mathutil.inv_mod(acc, p)
    affine: list[tuple[int, int]] = [(0, 0)] * len(entries)
    for i in range(len(entries) - 1, -1, -1):
        x, y, z = entries[i]
        z_inv = inv * (prefix[i - 1] if i else 1) % p
        inv = inv * z % p
        z_inv_sq = z_inv * z_inv % p
        affine[i] = (x * z_inv_sq % p, y * z_inv_sq * z_inv % p)
    return affine


class PrecomputedPoint:
    """A fixed-base point with windowed multiple tables.

    ``multiply(k)`` returns exactly ``base * k`` (the same affine point,
    hence the same ``to_bytes()`` encoding) using only mixed additions.
    """

    __slots__ = ("point", "curve", "order", "window", "_table", "_windows")

    def __init__(self, point: Point, window: int = DEFAULT_WINDOW,
                 order: int | None = None) -> None:
        if point.is_infinity:
            raise ParameterError("cannot precompute the infinity point")
        if not 2 <= window <= 8:
            raise ParameterError("window width must be in [2, 8]")
        self.point = point
        self.curve: CurveParams = point.curve
        self.window = window
        p = self.curve.p
        if order is None:
            # Long-lived HCPP points live in G1; detect that once so
            # scalars reduce mod the 160-bit r instead of the 512-bit p+1.
            group = self.curve.r * self.curve.h
            order = self.curve.r if point.is_in_subgroup() else group
        if order <= 1:
            raise ParameterError("order must exceed 1")
        self.order = order

        digits_per_row = (1 << window) - 1
        windows = -(-order.bit_length() // window)
        jac: list[Jacobian] = []
        base: Jacobian = (point.x, point.y, 1)
        for i in range(windows):
            entry = base
            jac.append(entry)
            for _ in range(2, digits_per_row + 1):
                entry = jacobian_add(entry, base, p)
                jac.append(entry)
            if i + 1 < windows:
                for _ in range(window):
                    base = jacobian_double(base, p)
        self._table = _batch_to_affine(jac, p)
        self._windows = windows

    def multiply(self, scalar: int) -> Point:
        """``scalar * base`` — identical output to :meth:`Point.__mul__`."""
        k = scalar % self.order
        if k == 0:
            return Point.infinity_point(self.curve)
        p = self.curve.p
        mask = (1 << self.window) - 1
        table = self._table
        acc: Jacobian | None = None
        row = 0
        while k:
            d = k & mask
            if d:
                ax, ay = table[row * mask + (d - 1)]
                if acc is None:
                    acc = (ax, ay, 1)
                else:
                    acc = jacobian_add_affine(acc, ax, ay, p)
            k >>= self.window
            row += 1
        result = jacobian_to_affine(acc, p)  # type: ignore[arg-type]
        if result is None:
            return Point.infinity_point(self.curve)
        return Point(result[0], result[1], self.curve, check=False)

    def table_entries(self) -> int:
        """Number of stored affine multiples (memory accounting)."""
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PrecomputedPoint(w=%d, windows=%d, |order|=%d bits)" % (
            self.window, self._windows, self.order.bit_length())


# ---------------------------------------------------------------------------
# Bounded registry: table reuse across call sites without threading a cache
# object through every protocol signature.
# ---------------------------------------------------------------------------

_REGISTRY_CAPACITY = 64
_registry: "OrderedDict[tuple[int, int, int, int], PrecomputedPoint]" = OrderedDict()
_registry_lock = threading.Lock()


def precomputed(point: Point, window: int = DEFAULT_WINDOW) -> PrecomputedPoint:
    """The memoised :class:`PrecomputedPoint` for ``point`` (LRU-bounded)."""
    if point.is_infinity:
        raise ParameterError("cannot precompute the infinity point")
    key = (point.x, point.y, point.curve.p, window)
    with _registry_lock:
        hit = _registry.get(key)
        if hit is not None:
            _registry.move_to_end(key)
            return hit
    # Build outside the lock: table construction is the expensive part and
    # a rare duplicate build is harmless (last writer wins).
    built = PrecomputedPoint(point, window=window)
    with _registry_lock:
        _registry[key] = built
        _registry.move_to_end(key)
        while len(_registry) > _REGISTRY_CAPACITY:
            _registry.popitem(last=False)
    return built


def fixed_base_mul(point: Point, scalar: int) -> Point:
    """``scalar * point`` through the fixed-base table registry."""
    return precomputed(point).multiply(scalar)


def clear_registry() -> None:
    """Drop all cached tables (tests / memory pressure)."""
    with _registry_lock:
        _registry.clear()
