"""Tate pairing on the supersingular curve E: y² = x³ + x.

Implements the reduced Tate pairing with Miller's algorithm and the
distortion map ψ(x, y) = (−x, i·y), giving the *symmetric* pairing

    ê : G1 × G1 → G2 ⊂ F_p²,   ê(P, Q) = f_{r,P}(ψ(Q))^((p²−1)/r)

with the three properties the paper requires (Section II.A):

1. Bilinear:       ê(aP, bQ) = ê(P, Q)^{ab}
2. Non-degenerate: ê(P, P) ≠ 1 for a generator P of G1
3. Computable:     Miller's algorithm runs in O(log r) curve operations

Because the embedding degree is 2 and ψ sends the x-coordinate into the
base field's image (−x ∈ F_p) while the y-coordinate picks up the i
component, all *vertical* line evaluations land in F_p^* and are erased by
the final exponentiation (p² − 1)/r = (p − 1)·h — the classic denominator
elimination.  The Miller loop below therefore only evaluates the tangent /
chord numerators, in F_p² directly, with affine arithmetic (one base-field
inversion per step, which CPython's ``pow(x, -1, p)`` makes cheap).

The final exponentiation is split as f ↦ (f̄ · f^{-1})^h: the (p−1) part is
a conjugation and one inversion, the (p+1)/r = h part a square-and-multiply
in F_p² — and elements of the form f̄/f are *unitary* (norm 1), so inverses
during that exponentiation are free conjugations (exploited by
:func:`_pow_unitary`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.crypto import mathutil
from repro.crypto.ec import CurveParams, Point
from repro.crypto.fields import Fp2Element
from repro.crypto.fpbackend import wrap as _wrap
from repro.exceptions import ParameterError

__all__ = ["tate_pairing", "miller_loop", "final_exponentiation",
           "pairing_product", "PreparedPairing", "prepared",
           "clear_pairing_cache"]


def miller_loop(P: Point, Q: Point) -> Fp2Element:
    """Evaluate Miller's function f_{r,P} at ψ(Q) (numerators only).

    ``P`` and ``Q`` must be non-infinity points of the order-r subgroup of
    E(F_p).  The result still needs :func:`final_exponentiation`.
    """
    curve = P.curve
    # Lift the loop's working values into the active F_p backend's native
    # representation (identity on pure python, mpz under gmpy2) so every
    # `* ... % p` below runs on the fast limbs; results convert back to
    # python ints at the single exit point.
    p = _wrap(curve.p)
    r = curve.r
    xq, yq = _wrap(Q.x), _wrap(Q.y)
    # ψ(Q) = (−xq, i·yq): line numerators below are specialised to this form.
    xpsi = -xq % p

    # Accumulator point T in affine coords over F_p; Miller value f in F_p².
    tx, ty = _wrap(P.x), _wrap(P.y)
    fa, fb = _wrap(1), _wrap(0)  # f = fa + fb·i

    def line_eval(lx: int, ly: int, slope: int) -> tuple[int, int]:
        """Numerator of the line through (lx, ly) with given slope, at ψ(Q).

        l(X, Y) = Y − ly − slope·(X − lx) evaluated at (−xq, i·yq) gives
        (slope·(lx − xpsi) − ly) + yq·i  ∈ F_p².
        """
        return ((slope * (lx - xpsi) - ly) % p, yq)

    bits = bin(r)[3:]  # skip the leading 1: standard left-to-right Miller loop
    px, py = _wrap(P.x), _wrap(P.y)
    for bit in bits:
        # f <- f² · l_{T,T}(ψQ)
        # F_p² squaring of (fa + fb·i):
        sq_a = (fa + fb) * (fa - fb) % p
        sq_b = 2 * fa * fb % p
        if ty == 0:
            # 2T = O: the tangent is vertical, erased by denominator
            # elimination; T becomes infinity and remaining steps multiply
            # by 1.  This happens only when r·P = O is reached exactly.
            fa, fb = sq_a, sq_b
            tx, ty = None, None  # type: ignore[assignment]
            break
        slope = (3 * tx * tx + 1) * mathutil.inv_mod(2 * ty, p) % p
        la, lb = line_eval(tx, ty, slope)
        fa = (sq_a * la - sq_b * lb) % p
        fb = (sq_a * lb + sq_b * la) % p
        # T <- 2T
        nx = (slope * slope - 2 * tx) % p
        ny = (slope * (tx - nx) - ty) % p
        tx, ty = nx, ny
        if bit == "1":
            # f <- f · l_{T,P}(ψQ);  T <- T + P
            if tx == px:
                if (ty + py) % p == 0:
                    # T + P = O: chord is vertical — eliminated.
                    tx, ty = None, None  # type: ignore[assignment]
                    break
                slope = (3 * tx * tx + 1) * mathutil.inv_mod(2 * ty, p) % p
            else:
                slope = (py - ty) * mathutil.inv_mod(px - tx, p) % p
            la, lb = line_eval(tx, ty, slope)
            fa, fb = (fa * la - fb * lb) % p, (fa * lb + fb * la) % p
            nx = (slope * slope - tx - px) % p
            ny = (slope * (tx - nx) - ty) % p
            tx, ty = nx, ny
    return Fp2Element(int(fa), int(fb), curve.p)


def _pow_unitary(base: Fp2Element, exponent: int) -> Fp2Element:
    """Exponentiation of a norm-1 (unitary) F_p² element using NAF.

    For unitary elements the inverse is the conjugate, so a signed-digit
    exponentiation costs no inversions; NAF reduces multiplies ~11%.
    """
    p = base.p
    result = Fp2Element.one(p)
    conj = base.conjugate()
    for digit in reversed(mathutil.naf(exponent)):
        result = result.square()
        if digit == 1:
            result = result * base
        elif digit == -1:
            result = result * conj
    return result


def final_exponentiation(f: Fp2Element, curve: CurveParams) -> Fp2Element:
    """Raise the Miller value to (p² − 1)/r = (p − 1) · h.

    The (p − 1) part maps f to the unitary element f̄ / f; the remaining
    cofactor h uses the inversion-free unitary exponentiation.
    """
    if f.is_zero():
        raise ParameterError("Miller value is zero (degenerate input)")
    unitary = f.conjugate() * f.inverse()
    return _pow_unitary(unitary, curve.h)


# ---------------------------------------------------------------------------
# Bounded LRU over full pairing results.  Protocol hot paths recompute the
# same pairing constantly — ê(H1(ID), P_pub) per IBE encryption to one
# identity, ê(Γ_S, TP_p) per request of one session, the RolePeks tag base
# per keyword of one role — so a small cache absorbs most of them.  The
# distortion-map pairing is symmetric (ê(P, Q) = ê(Q, P); asserted by the
# test suite), so keys are canonicalised order-free to double the hit rate.
# ---------------------------------------------------------------------------

_TATE_CACHE_CAPACITY = 256
_tate_cache: "OrderedDict[tuple, Fp2Element]" = OrderedDict()
_tate_lock = threading.Lock()


def clear_pairing_cache() -> None:
    """Drop cached pairing results and prepared-pairing tables (tests)."""
    with _tate_lock:
        _tate_cache.clear()
    with _prepared_lock:
        _prepared_registry.clear()


def tate_pairing(P: Point, Q: Point) -> Fp2Element:
    """The reduced symmetric Tate pairing ê(P, Q) ∈ G2 ⊂ F_p².

    Returns the identity of F_p² when either input is infinity, matching
    the bilinearity convention ê(O, Q) = ê(P, O) = 1.  Results are served
    from a bounded LRU cache when the same (unordered) pair repeats.
    """
    if P.curve != Q.curve:
        raise ParameterError("pairing inputs on different curves")
    if P.is_infinity or Q.is_infinity:
        return Fp2Element.one(P.curve.p)
    a, b = (P.x, P.y), (Q.x, Q.y)
    key = (a, b, P.curve.p) if a <= b else (b, a, P.curve.p)
    with _tate_lock:
        hit = _tate_cache.get(key)
        if hit is not None:
            _tate_cache.move_to_end(key)
            return hit
    value = final_exponentiation(miller_loop(P, Q), P.curve)
    with _tate_lock:
        _tate_cache[key] = value
        _tate_cache.move_to_end(key)
        while len(_tate_cache) > _TATE_CACHE_CAPACITY:
            _tate_cache.popitem(last=False)
    return value


class PreparedPairing:
    """A pairing with its first argument fixed and its Miller loop unrolled.

    The Miller loop's point arithmetic — tangent/chord slopes, each costing
    a field inversion, plus the accumulator walk — depends only on the
    *first* argument P.  For a fixed P this class records the line
    coefficients once; evaluating against any Q then reduces to pure F_p²
    squar-and-multiply work with **no inversions and no curve operations**.

    The recorded line through (lx, ly) with slope m evaluates at
    ψ(Q) = (−x_Q, i·y_Q) to ``(m·lx − ly + m·x_Q) + y_Q·i``, so each step
    stores the pair ``(A, B) = (m·lx − ly, m)`` and replays
    ``l = (A + B·x_Q) + y_Q·i``.

    ``miller(Q)`` is bit-identical to ``miller_loop(P, Q)``; ``pair(Q)``
    to ``tate_pairing(P, Q)``.  Fixed first arguments are the common case:
    IBE encryption and IBS verification pair system parameters (P, P_pub),
    the S-server pairs its own Γ_S against every client, and a PEKS
    trapdoor is tested against many tags.  (The pairing is symmetric, so a
    fixed *second* argument can be moved to the first slot.)
    """

    # Replay opcodes: _SQ_LINE: f ← f²·l (doubling step); _LINE: f ← f·l
    # (addition step); _SQ_BREAK: f ← f², then stop (T reached infinity —
    # only when the base point's order divides the processed prefix).
    _SQ_LINE, _LINE, _SQ_BREAK = 0, 1, 2

    __slots__ = ("point", "curve", "_ops")

    def __init__(self, P: Point) -> None:
        if P.is_infinity:
            raise ParameterError("cannot prepare the infinity point")
        self.point = P
        self.curve = P.curve
        p = self.curve.p
        ops: list[tuple[int, int, int]] = []
        tx, ty = P.x, P.y
        px, py = P.x, P.y
        bits = bin(self.curve.r)[3:]
        for bit in bits:
            if ty == 0:
                ops.append((self._SQ_BREAK, 0, 0))
                break
            slope = (3 * tx * tx + 1) * pow(2 * ty, -1, p) % p
            ops.append((self._SQ_LINE, (slope * tx - ty) % p, slope))
            nx = (slope * slope - 2 * tx) % p
            ny = (slope * (tx - nx) - ty) % p
            tx, ty = nx, ny
            if bit == "1":
                if tx == px:
                    if (ty + py) % p == 0:
                        break  # vertical chord: eliminated, loop ends
                    slope = (3 * tx * tx + 1) * pow(2 * ty, -1, p) % p
                else:
                    slope = (py - ty) * pow(px - tx, -1, p) % p
                ops.append((self._LINE, (slope * tx - ty) % p, slope))
                nx = (slope * slope - tx - px) % p
                ny = (slope * (tx - nx) - ty) % p
                tx, ty = nx, ny
        self._ops = tuple(ops)

    def miller(self, Q: Point) -> Fp2Element:
        """Replay the loop against ψ(Q) — equals ``miller_loop(P, Q)``."""
        # Same backend lift as miller_loop: the replay is pure F_p
        # multiply-reduce work, so gmpy2 limbs (when active) carry the
        # whole loop; exit converts back to python ints.
        p = _wrap(self.curve.p)
        xq, yq = _wrap(Q.x), _wrap(Q.y)
        fa, fb = _wrap(1), _wrap(0)
        sq_line, line = self._SQ_LINE, self._LINE
        for kind, a_coef, b_coef in self._ops:
            if kind == sq_line:
                sq_a = (fa + fb) * (fa - fb) % p
                sq_b = 2 * fa * fb % p
                la = (a_coef + b_coef * xq) % p
                fa = (sq_a * la - sq_b * yq) % p
                fb = (sq_a * yq + sq_b * la) % p
            elif kind == line:
                la = (a_coef + b_coef * xq) % p
                fa, fb = (fa * la - fb * yq) % p, (fa * yq + fb * la) % p
            else:  # _SQ_BREAK
                fa, fb = (fa + fb) * (fa - fb) % p, 2 * fa * fb % p
                break
        return Fp2Element(int(fa), int(fb), self.curve.p)

    def pair(self, Q: Point) -> Fp2Element:
        """ê(P, Q) — identical value to ``tate_pairing(P, Q)``."""
        if Q.curve != self.curve:
            raise ParameterError("pairing inputs on different curves")
        if Q.is_infinity:
            return Fp2Element.one(self.curve.p)
        return final_exponentiation(self.miller(Q), self.curve)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "PreparedPairing(%d line ops)" % len(self._ops)


_PREPARED_CAPACITY = 64
_prepared_registry: "OrderedDict[tuple[int, int, int], PreparedPairing]" = OrderedDict()
_prepared_lock = threading.Lock()


def prepared(P: Point) -> PreparedPairing:
    """The memoised :class:`PreparedPairing` for ``P`` (LRU-bounded)."""
    if P.is_infinity:
        raise ParameterError("cannot prepare the infinity point")
    key = (P.x, P.y, P.curve.p)
    with _prepared_lock:
        hit = _prepared_registry.get(key)
        if hit is not None:
            _prepared_registry.move_to_end(key)
            return hit
    built = PreparedPairing(P)
    with _prepared_lock:
        _prepared_registry[key] = built
        _prepared_registry.move_to_end(key)
        while len(_prepared_registry) > _PREPARED_CAPACITY:
            _prepared_registry.popitem(last=False)
    return built


def pairing_product(pairs: list[tuple[Point, Point]],
                    curve: CurveParams) -> Fp2Element:
    """Compute ∏ ê(P_i, Q_i) sharing one final exponentiation.

    Used by signature verification (which needs a ratio of two pairings):
    batching the Miller loops under a single final exponentiation roughly
    halves the cost of a two-pairing check.
    """
    acc = Fp2Element.one(curve.p)
    nontrivial = False
    for P, Q in pairs:
        if P.is_infinity or Q.is_infinity:
            continue
        acc = acc * miller_loop(P, Q)
        nontrivial = True
    if not nontrivial:
        return Fp2Element.one(curve.p)
    return final_exponentiation(acc, curve)
