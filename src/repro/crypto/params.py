"""Pairing domain parameters — the paper's parameter generator PG.

System setup (paper §IV.A): *"Each A-server of a state performs IBC domain
initialization by inputting security parameter ξ into parameter generator
PG, which outputs public domain parameters (q, G1, G2, e, P)."*

This module is PG.  It provides:

* :data:`TYPE_A_512` — the de-facto standard "Type A" supersingular
  parameters shipped with the PBC library (512-bit base field, 160-bit
  Solinas group order r = 2¹⁵⁹ + 2¹⁰⁷ + 1), matching the security level the
  paper's timing reference [31] assumes ("similar … to 1024-bit RSA").
* :data:`TYPE_A_160` — a small (160-bit field / 80-bit r) parameter set for
  fast unit tests.  **Not secure**; test-only.
* :func:`generate_type_a` — deterministic fresh-parameter generation from a
  seed, for arbitrary security parameters ξ (used by property tests and by
  the parameter-generation benchmark).

A :class:`DomainParams` bundles the curve, the G1 generator P, and helper
methods (pairing, hashing, scalar sampling) so protocol code never touches
raw integers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache

from repro.crypto import mathutil
from repro.crypto.ec import CurveParams, Point
from repro.crypto.fields import Fp2Element
from repro.crypto.pairing import pairing_product, tate_pairing
from repro.exceptions import ParameterError

__all__ = ["DomainParams", "default_params", "test_params", "generate_type_a",
           "TYPE_A_512", "TYPE_A_160"]


@dataclass(frozen=True)
class DomainParams:
    """Public IBC domain parameters (q, G1, G2, ê, P) plus conveniences."""

    curve: CurveParams
    generator: Point
    name: str = field(default="custom")

    def __post_init__(self) -> None:
        if self.generator.is_infinity:
            raise ParameterError("generator must not be infinity")
        if not self.generator.is_in_subgroup():
            raise ParameterError("generator is not in the order-r subgroup")

    # -- group facts -------------------------------------------------------
    @property
    def p(self) -> int:
        """Base-field prime (the paper's q)."""
        return self.curve.p

    @property
    def r(self) -> int:
        """Prime order of G1 and G2 (the paper's q in Z*_q exponents)."""
        return self.curve.r

    @property
    def g1_bytes(self) -> int:
        """Size of a serialized G1 element (uncompressed)."""
        return 1 + 2 * self.curve.field_bytes

    @property
    def g2_bytes(self) -> int:
        """Size of a serialized G2 (F_p²) element."""
        return 2 * self.curve.field_bytes

    # -- operations ---------------------------------------------------------
    def pairing(self, P: Point, Q: Point) -> Fp2Element:
        """The symmetric pairing ê(P, Q)."""
        return tate_pairing(P, Q)

    def pairing_ratio_check(self, lhs: tuple[Point, Point],
                            rhs: tuple[Point, Point]) -> bool:
        """Test ê(lhs) == ê(rhs) with a single final exponentiation."""
        P1, Q1 = lhs
        P2, Q2 = rhs
        return pairing_product([(P1, Q1), (-P2, Q2)], self.curve).is_one()

    def scalar_from_bytes(self, data: bytes) -> int:
        """Map bytes to a nonzero scalar in Z*_r (for H3-style hashes)."""
        value = mathutil.bytes_to_int(
            hashlib.sha256(data).digest() + hashlib.sha256(b"\x01" + data).digest()
        ) % (self.r - 1)
        return value + 1

    def random_scalar(self, rng) -> int:
        """A uniform scalar in Z*_r drawn from ``rng`` (.randint-style)."""
        return rng.randint(1, self.r - 1)

    def point_mul_generator(self, scalar: int) -> Point:
        """scalar · P for the domain generator, via the fixed-base tables.

        Identical output to ``self.generator * scalar``; the first call
        builds (and registers) the generator's windowed table, every later
        call is addition-only.
        """
        from repro.crypto.precompute import fixed_base_mul
        return fixed_base_mul(self.generator, scalar)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DomainParams(%s, |p|=%d bits, |r|=%d bits)" % (
            self.name, self.p.bit_length(), self.r.bit_length())


# ---------------------------------------------------------------------------
# Standard parameter sets
# ---------------------------------------------------------------------------

# PBC library "a.param": p + 1 = h·r with r = 2^159 + 2^107 + 1 (Solinas).
_PBC_A_P = int(
    "8780710799663312522437781984754049815806883199414208211028653399266475"
    "6308802229570786251794226622214231558587695823174592777133673174813249"
    "25129998224791"
)
_PBC_A_R = (1 << 159) + (1 << 107) + 1
_PBC_A_H = (_PBC_A_P + 1) // _PBC_A_R


def _find_generator(curve: CurveParams, seed: bytes) -> Point:
    """Deterministically derive a G1 generator via try-and-increment.

    Hash the seed with a counter to an x-coordinate, lift to the curve, and
    clear the cofactor; the first non-infinity result is the generator.
    """
    counter = 0
    while True:
        digest = b""
        block = 0
        while len(digest) < curve.field_bytes + 16:
            digest += hashlib.sha256(
                seed + counter.to_bytes(4, "big") + block.to_bytes(4, "big")
            ).digest()
            block += 1
        x = mathutil.bytes_to_int(digest) % curve.p
        lifted = Point.from_x(x, curve, parity=0)
        if lifted is not None:
            candidate = lifted * curve.h
            if not candidate.is_infinity:
                return candidate
        counter += 1


@lru_cache(maxsize=None)
def _build(name: str, p: int, r: int) -> DomainParams:
    curve = CurveParams(p=p, r=r, h=(p + 1) // r)
    generator = _find_generator(curve, b"HCPP-generator:" + name.encode())
    return DomainParams(curve=curve, generator=generator, name=name)


def default_params() -> DomainParams:
    """The production-grade SS512 Type-A parameters (≈1024-bit-RSA level)."""
    return _build("type-a-512", _PBC_A_P, _PBC_A_R)


# Small parameters for fast tests: r is an 80-bit Solinas-style prime and
# p = h·r − 1 a 160-bit prime ≡ 3 (mod 4).  Found by the same search
# strategy as generate_type_a and hardcoded for instant import.
_TEST_R = (1 << 79) + (1 << 57) + 1          # 80-bit low-weight prime
_TEST_H = 1208925819614629174706500          # even cofactor, p ≡ 3 (mod 4)
_TEST_P = _TEST_H * _TEST_R - 1              # 160-bit prime


def test_params() -> DomainParams:
    """Small, fast, *insecure* parameters for unit tests."""
    return _build("type-a-160", _TEST_P, _TEST_R)


def generate_type_a(rbits: int, pbits: int, seed: bytes) -> DomainParams:
    """Generate fresh Type-A parameters deterministically from ``seed``.

    Search strategy: fix a low-Hamming-weight prime r of ``rbits`` bits
    (Solinas form 2^a + 2^b + 1 when possible, else next_prime), then scan
    even cofactors h of the right size until p = h·r − 1 is prime and
    ≡ 3 (mod 4).  Runs in seconds for the sizes used in tests/benchmarks.
    """
    if rbits < 16 or pbits <= rbits + 2:
        raise ParameterError("need rbits >= 16 and pbits > rbits + 2")
    # Deterministic r: prefer the Solinas form used by PBC.
    r = 0
    for b in range(rbits - 2, 0, -1):
        candidate = (1 << (rbits - 1)) + (1 << b) + 1
        if mathutil.is_probable_prime(candidate):
            r = candidate
            break
    if r == 0:
        r = mathutil.next_prime(1 << (rbits - 1))
    hbits = pbits - rbits
    base = mathutil.bytes_to_int(hashlib.sha256(seed).digest()) % (1 << hbits)
    base |= 1 << (hbits - 1)
    base &= ~1  # even
    h = base
    while True:
        p = h * r - 1
        if p % 4 == 3 and mathutil.is_probable_prime(p):
            break
        h += 2
    curve = CurveParams(p=p, r=r, h=h)
    generator = _find_generator(curve, b"HCPP-generator:" + seed)
    return DomainParams(curve=curve, generator=generator,
                        name="type-a-%d" % pbits)
