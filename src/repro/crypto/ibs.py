"""Hess identity-based signatures (the paper's IBS, ref [28]).

HCPP uses IBS in the emergency path: the physician signs his passcode
request (step 1), the A-server signs the passcode delivery and the
P-device record RD (steps 2–3), and both signatures anchor the TR/RD
accountability evidence — a signature that verifies under ID_i proves ID_i
took part in the transaction.

Scheme (Hess, SAC 2002), with S_ID = s0·H1(ID) the signer's IBC key:

    Sign:    k ←$ Z*_q,  r = ê(H1(ID), P)^k,  v = H(m ‖ r),
             u = v·S_ID + k·H1(ID)
    Verify:  r' = ê(u, P) · ê(H1(ID), P_pub)^(−v),  accept iff v == H(m ‖ r')

Correctness: ê(u,P) = ê(S_ID,P)^v·ê(H1(ID),P)^k = ê(H1(ID),P_pub)^v · r.
Verification uses :func:`pairing_product` to share one final
exponentiation between the two pairings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ec import Point
from repro.crypto.hashes import h1_identity, h_to_scalar
from repro.crypto.ibe import IdentityKeyPair
from repro.crypto.pairing import miller_loop, final_exponentiation, tate_pairing
from repro.crypto.params import DomainParams
from repro.crypto.rng import HmacDrbg
from repro.exceptions import SignatureError

__all__ = ["IbsSignature", "sign", "verify"]


@dataclass(frozen=True)
class IbsSignature:
    """A Hess signature (u ∈ G1, v ∈ Z*_q)."""

    u: Point
    v: int

    def size_bytes(self) -> int:
        """Wire size (communication-cost experiments)."""
        return len(self.u.to_bytes()) + (self.v.bit_length() + 7) // 8

    def to_bytes(self) -> bytes:
        u = self.u.to_bytes()
        v = self.v.to_bytes(32, "big")
        return len(u).to_bytes(2, "big") + u + v


def sign(params: DomainParams, key: IdentityKeyPair, message: bytes,
         rng: HmacDrbg) -> IbsSignature:
    """Produce a Hess IBS on ``message`` under the signer's identity key."""
    k = params.random_scalar(rng)
    r = tate_pairing(key.public, params.generator) ** k
    v = h_to_scalar(params, b"hess-ibs", message, r.to_bytes())
    u = key.private * v + key.public * k
    return IbsSignature(u=u, v=v)


def verify(params: DomainParams, pkg_public: Point, identity: str,
           message: bytes, signature: IbsSignature) -> bool:
    """Check a Hess signature against ``identity`` (True/False)."""
    pk = h1_identity(params, identity)
    # r' = ê(u, P) · ê(PK, P_pub)^(−v): batch the Miller loops and apply one
    # final exponentiation — ê(PK, P_pub)^(−v) == ê(−v·PK, P_pub) bilinearly.
    if signature.u.is_infinity:
        return False
    acc = miller_loop(signature.u, params.generator)
    neg_vpk = pk * (-signature.v % params.r)
    if not neg_vpk.is_infinity and not pkg_public.is_infinity:
        acc = acc * miller_loop(neg_vpk, pkg_public)
    r_prime = final_exponentiation(acc, params.curve)
    v_prime = h_to_scalar(params, b"hess-ibs", message, r_prime.to_bytes())
    return v_prime == signature.v


def verify_or_raise(params: DomainParams, pkg_public: Point, identity: str,
                    message: bytes, signature: IbsSignature) -> None:
    """Raise :class:`SignatureError` when verification fails."""
    if not verify(params, pkg_public, identity, message, signature):
        raise SignatureError("IBS verification failed for identity %r"
                             % identity)
