"""Hess identity-based signatures (the paper's IBS, ref [28]).

HCPP uses IBS in the emergency path: the physician signs his passcode
request (step 1), the A-server signs the passcode delivery and the
P-device record RD (steps 2–3), and both signatures anchor the TR/RD
accountability evidence — a signature that verifies under ID_i proves ID_i
took part in the transaction.

Scheme (Hess, SAC 2002), with S_ID = s0·H1(ID) the signer's IBC key:

    Sign:    k ←$ Z*_q,  r = ê(H1(ID), P)^k,  v = H(m ‖ r),
             u = v·S_ID + k·H1(ID)
    Verify:  r' = ê(u, P) · ê(H1(ID), P_pub)^(−v),  accept iff v == H(m ‖ r')

Correctness: ê(u,P) = ê(S_ID,P)^v·ê(H1(ID),P)^k = ê(H1(ID),P_pub)^v · r.

Acceleration (all output-equivalent to the textbook formulas):

* Both pairings in sign/verify have a *system parameter* (P or P_pub) on
  one side; those sides are served by :func:`repro.crypto.pairing.prepared`
  Miller loops (and, since the pairing is symmetric and the final
  exponentiation is multiplicative, moving the fixed point to the first
  slot inside the batched product leaves r' unchanged).
* Verification still shares one final exponentiation across its two
  Miller loops (the ``pairing_product`` trick).
* :func:`batch_verify` checks n signatures with a *single* final
  exponentiation via a randomized small-exponents product test — see its
  docstring for the soundness argument.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto import engine as engine_mod
from repro.crypto.ec import Point
from repro.crypto.fields import Fp2Element
from repro.crypto.hashes import h1_identity, h_to_scalar
from repro.crypto.ibe import IdentityKeyPair
from repro.crypto.pairing import (final_exponentiation, prepared,
                                  _pow_unitary)
from repro.crypto.params import DomainParams
from repro.crypto.rng import HmacDrbg
from repro.exceptions import SignatureError

__all__ = ["IbsSignature", "sign", "verify", "batch_verify"]

_BATCH_DELTA_BITS = 64


@dataclass(frozen=True)
class IbsSignature:
    """A Hess signature (u ∈ G1, v ∈ Z*_q).

    ``r_value`` is the sign-time commitment r = ê(PK, P)^k.  It is **not**
    part of the wire format (``to_bytes`` ignores it; deserialized
    signatures carry ``None``) — it is a local hint that lets
    :func:`batch_verify` replace per-signature final exponentiations with
    one randomized product check.
    """

    u: Point
    v: int
    r_value: Fp2Element | None = field(default=None, compare=False,
                                       repr=False)

    def size_bytes(self) -> int:
        """Wire size (communication-cost experiments)."""
        return len(self.u.to_bytes()) + (self.v.bit_length() + 7) // 8

    def to_bytes(self) -> bytes:
        u = self.u.to_bytes()
        v = self.v.to_bytes(32, "big")
        return len(u).to_bytes(2, "big") + u + v

    @classmethod
    def from_bytes(cls, data: bytes, curve) -> "IbsSignature":
        u_len = int.from_bytes(data[:2], "big")
        if len(data) != 2 + u_len + 32:
            raise SignatureError("malformed IBS signature encoding")
        u = Point.from_bytes(data[2:2 + u_len], curve)
        v = int.from_bytes(data[2 + u_len:], "big")
        return cls(u=u, v=v)


def sign(params: DomainParams, key: IdentityKeyPair, message: bytes,
         rng: HmacDrbg) -> IbsSignature:
    """Produce a Hess IBS on ``message`` under the signer's identity key."""
    k = params.random_scalar(rng)
    r = prepared(params.generator).pair(key.public) ** k
    v = h_to_scalar(params, b"hess-ibs", message, r.to_bytes())
    u = key.private * v + key.public * k
    return IbsSignature(u=u, v=v, r_value=r)


def _recompute_r(params: DomainParams, pkg_public: Point, pk: Point,
                 signature: IbsSignature) -> Fp2Element:
    """r' = ê(u, P) · ê(PK, P_pub)^(−v), batched under one final exp.

    The fixed system points P and P_pub take the prepared (first) pairing
    slot; by symmetry of ê and multiplicativity of the final
    exponentiation the resulting r' is the exact value of the textbook
    right-hand side.
    """
    acc = prepared(params.generator).miller(signature.u)
    neg_vpk = pk * (-signature.v % params.r)
    if not neg_vpk.is_infinity and not pkg_public.is_infinity:
        acc = acc * prepared(pkg_public).miller(neg_vpk)
    return final_exponentiation(acc, params.curve)


def verify(params: DomainParams, pkg_public: Point, identity: str,
           message: bytes, signature: IbsSignature) -> bool:
    """Check a Hess signature against ``identity`` (True/False)."""
    if signature.u.is_infinity:
        return False
    pk = h1_identity(params, identity)
    r_prime = _recompute_r(params, pkg_public, pk, signature)
    v_prime = h_to_scalar(params, b"hess-ibs", message, r_prime.to_bytes())
    return v_prime == signature.v


def verify_or_raise(params: DomainParams, pkg_public: Point, identity: str,
                    message: bytes, signature: IbsSignature) -> None:
    """Raise :class:`SignatureError` when verification fails."""
    if not verify(params, pkg_public, identity, message, signature):
        raise SignatureError("IBS verification failed for identity %r"
                             % identity)


def _batch_deltas(params: DomainParams, count: int, seed: bytes,
                  rng: HmacDrbg | None) -> list[int]:
    """Nonzero 64-bit batching exponents δ_j.

    Drawn from ``rng`` when supplied; otherwise derived by hashing the
    whole batch (Fiat–Shamir style), which keeps the API deterministic
    while still fixing the δ's only *after* the signatures are."""
    deltas = []
    for j in range(count):
        if rng is not None:
            deltas.append(rng.randint(1, (1 << _BATCH_DELTA_BITS) - 1))
        else:
            digest = hashlib.sha256(b"ibs-batch-delta:"
                                    + j.to_bytes(4, "big") + seed).digest()
            deltas.append((int.from_bytes(digest[:8], "big")
                           % ((1 << _BATCH_DELTA_BITS) - 1)) + 1)
    return deltas


#: Task spec for :func:`repro.crypto.engine.CryptoEngine.map`.
_BATCH_VERIFY_SPEC = "repro.crypto.ibs:_batch_verify_task"


def _batch_verify_task(item: tuple) -> "tuple[bool, Fp2Element | None, Fp2Element | None]":
    """Per-signature share of :func:`batch_verify` — engine task.

    Returns ``(ok, term, rhs_factor)``: ``ok`` False when the signature
    is outright invalid (infinity u or hash-binding failure); ``term``
    the δ-weighted Miller product and ``rhs_factor`` the matching
    ``r^δ`` for *hinted* signatures, both None on the recomputation path
    (where the hash binding alone is full verification).  Pure function
    of the item tuple — safe to run in any worker process; the prepared
    registries it consults are per-process caches warmed on first use.
    """
    params, pkg_public, identity, message, signature, delta = item
    if signature.u.is_infinity:
        return (False, None, None)
    pk = h1_identity(params, identity)
    r_val = signature.r_value
    hinted = r_val is not None and r_val.p == params.p
    if not hinted:
        r_val = _recompute_r(params, pkg_public, pk, signature)
    if h_to_scalar(params, b"hess-ibs", message,
                   r_val.to_bytes()) != signature.v:
        return (False, None, None)
    if not hinted:
        return (True, None, None)  # recomputed r already proves the equation
    term = prepared(params.generator).miller(signature.u * delta)
    neg_vpk = pk * (-signature.v * delta % params.r)
    if not neg_vpk.is_infinity:
        term = term * prepared(pkg_public).miller(neg_vpk)
    return (True, term, _pow_unitary(r_val, delta))


def batch_verify(params: DomainParams, pkg_public: Point,
                 items: list[tuple[str, bytes, IbsSignature]],
                 rng: HmacDrbg | None = None,
                 engine: "engine_mod.CryptoEngine | None" = None) -> bool:
    """Verify n Hess signatures with one shared final exponentiation.

    ``items`` is a list of ``(identity, message, signature)`` triples; the
    result equals ``all(verify(...))`` for the same triples.  When an
    ``engine`` is supplied (or a process default is configured — see
    :func:`repro.crypto.engine.resolve`) the per-signature work fans out
    across worker processes; the accept/reject answer is identical.

    Two-part check, per the small-exponents batching technique:

    1. **Hash binding** — each signature's v must equal H(m ‖ r), where r
       is the signature's local ``r_value`` hint when present (signatures
       produced by :func:`sign` in this process carry it) or is recomputed
       via :func:`_recompute_r` otherwise.  A recomputed r satisfies the
       pairing equation by construction, so for those signatures this step
       alone is full verification.
    2. **Randomized pairing product** — for the hinted signatures the
       claimed relation ê(u_j, P)·ê(PK_j, P_pub)^(−v_j) = r_j still needs
       checking.  With random nonzero 64-bit exponents δ_j the single test

           ∏_j [ê(δ_j·u_j, P) · ê(−δ_j·v_j·PK_j, P_pub)] == ∏_j r_j^{δ_j}

       (one ``pairing_product``-style shared final exponentiation on the
       left; the r_j are unitary so the right side costs conjugation-free
       64-bit exponentiations) accepts a batch containing any false
       equation with probability at most 2^-64: the quotients
       lhs_j/r_j lie in the order-r cyclotomic subgroup, and a nontrivial
       ∏ q_j^{δ_j} = 1 constrains each δ_j to one residue class mod the
       order of q_j once the others are fixed.
    """
    if not items:
        return True
    if pkg_public.is_infinity:
        return False

    seed_hasher = hashlib.sha256()
    for identity, message, signature in items:
        seed_hasher.update(identity.encode() + b"\x00" + message
                           + signature.to_bytes())
    # δ's are fixed *before* any per-item work, in the same rng order as
    # ever — the engine fan-out below therefore cannot perturb them.
    deltas = _batch_deltas(params, len(items), seed_hasher.digest(), rng)

    tasks = [(params, pkg_public, identity, message, signature, delta)
             for (identity, message, signature), delta in zip(items, deltas)]
    eng = engine_mod.resolve(engine)
    if eng is not None:
        shares = eng.map(_BATCH_VERIFY_SPEC, tasks)
        if any(not ok for ok, _, _ in shares):
            return False
    else:
        shares = []
        for task in tasks:
            share = _batch_verify_task(task)
            if not share[0]:
                return False  # serial path keeps its early exit
            shares.append(share)

    product_acc: Fp2Element | None = None
    rhs = Fp2Element.one(params.p)
    for _, term, rhs_factor in shares:
        if term is None:
            continue  # recomputed r already satisfies the pairing equation
        product_acc = term if product_acc is None else product_acc * term
        rhs = rhs * rhs_factor
    if product_acc is None:
        return True  # every signature took the recomputation path
    lhs = final_exponentiation(product_acc, params.curve)
    return lhs == rhs
