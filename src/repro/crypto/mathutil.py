"""Number-theoretic utilities used by the pairing substrate.

Pure-Python implementations of the handful of algorithms the elliptic-curve
and pairing code needs: modular inverse, modular square roots
(Tonelli–Shanks, with the fast ``p ≡ 3 (mod 4)`` path), Miller–Rabin
primality testing, deterministic prime generation from a seed, Jacobi
symbols, and integer-to-bytes helpers.

Everything here is deterministic given its inputs; randomized algorithms
(Miller–Rabin witnesses, prime search) draw from an explicitly passed
generator so experiments are reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable

from repro.crypto import fpbackend
from repro.exceptions import ParameterError

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
    227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293,
)


def inv_mod(a: int, m: int) -> int:
    """Return the inverse of ``a`` modulo ``m``.

    Raises :class:`ParameterError` when the inverse does not exist.
    Routed through the active F_p backend (pure python, or gmpy2 when
    installed — see :mod:`repro.crypto.fpbackend`).
    """
    return fpbackend.active_backend().inv(a, m)


def egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol (a/n) for odd positive ``n``."""
    if n <= 0 or n % 2 == 0:
        raise ParameterError("Jacobi symbol requires odd positive n")
    a %= n
    result = 1
    while a:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def is_quadratic_residue(a: int, p: int) -> bool:
    """True when ``a`` is a nonzero square modulo the odd prime ``p``."""
    a %= p
    if a == 0:
        return False
    return pow(a, (p - 1) // 2, p) == 1


def sqrt_mod(a: int, p: int) -> int:
    """A square root of ``a`` modulo the odd prime ``p``.

    Uses the direct exponentiation shortcut for ``p ≡ 3 (mod 4)`` (which
    holds for all supersingular-curve primes in this library) and falls back
    to Tonelli–Shanks otherwise.  Raises :class:`ParameterError` when ``a``
    is a non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if not is_quadratic_residue(a, p):
        raise ParameterError("%d is not a quadratic residue mod p" % a)
    if p % 4 == 3:
        return fpbackend.active_backend().sqrt(a, p)
    # Tonelli-Shanks for p ≡ 1 (mod 4).
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # Find a non-residue z deterministically.
    z = 2
    while is_quadratic_residue(z, p):
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i with t^(2^i) == 1.
        i, t2 = 0, t
        while t2 != 1:
            t2 = t2 * t2 % p
            i += 1
            if i == m:
                raise ParameterError("sqrt_mod internal failure")
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = b * b % p
        t = t * c % p
        r = r * b % p
    return r


def is_probable_prime(n: int, rounds: int = 40) -> bool:
    """Miller–Rabin primality test with deterministic witnesses.

    For reproducibility the witnesses are derived from SHA-256 of ``n``
    rather than drawn from a global RNG; 40 derived bases gives error
    probability far below 2^-80 for the sizes used here.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    seed = n.to_bytes((n.bit_length() + 7) // 8, "big")
    for i in range(rounds):
        digest = hashlib.sha256(seed + i.to_bytes(4, "big")).digest()
        a = int.from_bytes(digest, "big") % (n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate


def gen_prime(bits: int, rand: Callable[[int], int],
              condition: Callable[[int], bool] | None = None) -> int:
    """Generate a ``bits``-bit prime using ``rand(nbits) -> int``.

    ``condition`` optionally filters candidates (e.g. ``p % 4 == 3``).
    """
    if bits < 2:
        raise ParameterError("prime must have at least 2 bits")
    while True:
        candidate = rand(bits) | (1 << (bits - 1)) | 1
        if condition is not None and not condition(candidate):
            continue
        if is_probable_prime(candidate):
            return candidate


def int_to_bytes(n: int, length: int | None = None) -> bytes:
    """Big-endian byte encoding of a non-negative integer.

    When ``length`` is omitted, the minimal length is used (``b""`` encodes
    zero as a single zero byte so round-trips are unambiguous).
    """
    if n < 0:
        raise ParameterError("cannot encode negative integer")
    if length is None:
        length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian byte decoding to a non-negative integer."""
    return int.from_bytes(data, "big")


def bit_length_bytes(n: int) -> int:
    """Number of bytes needed to hold ``n``'s binary representation."""
    return max(1, (n.bit_length() + 7) // 8)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ParameterError("xor_bytes requires equal lengths (%d != %d)"
                             % (len(a), len(b)))
    return bytes(x ^ y for x, y in zip(a, b))


def ceil_div(a: int, b: int) -> int:
    """Ceiling of ``a / b`` for positive integers."""
    return -(-a // b)


def product(values: Iterable[int], mod: int | None = None) -> int:
    """Product of an iterable, optionally reduced modulo ``mod``."""
    result = 1
    for v in values:
        result *= v
        if mod is not None:
            result %= mod
    return result


def hamming_weight(n: int) -> int:
    """Number of set bits in ``n`` (used to pick low-weight exponents)."""
    return bin(n).count("1")


def naf(n: int) -> list[int]:
    """Non-adjacent form of ``n``, least-significant digit first.

    The NAF has minimal Hamming weight among signed binary representations,
    which shortens Miller loops and scalar multiplications.
    """
    digits: list[int] = []
    while n:
        if n & 1:
            d = 2 - (n % 4)
            digits.append(d)
            n -= d
        else:
            digits.append(0)
        n >>= 1
    return digits
