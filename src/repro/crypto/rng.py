"""HMAC-DRBG (NIST SP 800-90A) — seedable, deterministic randomness.

All randomness in the library flows through :class:`HmacDrbg` so that every
experiment is exactly reproducible from a seed: key generation, pseudonym
self-generation, PEKS randomizers, the secure-index scrambling permutation,
workload generation, and the attack simulations all accept a DRBG.

The generator exposes the small ``random``-module-like surface the rest of
the code needs (:meth:`randint`, :meth:`random_bytes`, :meth:`choice`,
:meth:`shuffle`, :meth:`uniform`, :meth:`gauss`) on top of the SP 800-90A
update/generate core.
"""

from __future__ import annotations

import math
from typing import MutableSequence, Sequence, TypeVar

from repro.crypto.hmac_impl import hmac_sha256
from repro.exceptions import ParameterError

T = TypeVar("T")


class HmacDrbg:
    """Deterministic random bit generator per NIST SP 800-90A (HMAC variant)."""

    def __init__(self, seed: bytes | str | int, personalization: bytes = b"") -> None:
        if isinstance(seed, str):
            seed = seed.encode()
        elif isinstance(seed, int):
            seed = seed.to_bytes(max(1, (seed.bit_length() + 7) // 8), "big")
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._update(seed + personalization)
        self._gauss_spare: float | None = None

    # -- SP 800-90A core ---------------------------------------------------
    def _update(self, data: bytes = b"") -> None:
        self._key = hmac_sha256(self._key, self._value + b"\x00" + data)
        self._value = hmac_sha256(self._key, self._value)
        if data:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + data)
            self._value = hmac_sha256(self._key, self._value)

    def reseed(self, data: bytes) -> None:
        """Mix additional entropy/domain-separation into the state."""
        self._update(data)

    def random_bytes(self, n: int) -> bytes:
        """Generate ``n`` pseudorandom bytes."""
        if n < 0:
            raise ParameterError("cannot generate a negative number of bytes")
        output = b""
        while len(output) < n:
            self._value = hmac_sha256(self._key, self._value)
            output += self._value
        self._update()
        return output[:n]

    # -- convenience sampling ----------------------------------------------
    def getrandbits(self, k: int) -> int:
        """A uniform integer in [0, 2^k)."""
        if k <= 0:
            return 0
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.random_bytes(nbytes), "big")
        return value >> (nbytes * 8 - k)

    def randint(self, a: int, b: int) -> int:
        """A uniform integer in the inclusive range [a, b] (rejection sampled)."""
        if a > b:
            raise ParameterError("randint requires a <= b")
        span = b - a + 1
        bits = span.bit_length()
        while True:
            candidate = self.getrandbits(bits)
            if candidate < span:
                return a + candidate

    def randrange(self, stop: int) -> int:
        """A uniform integer in [0, stop)."""
        if stop <= 0:
            raise ParameterError("randrange requires stop > 0")
        return self.randint(0, stop - 1)

    def random(self) -> float:
        """A float in [0, 1) with 53 bits of precision."""
        return self.getrandbits(53) / (1 << 53)

    def uniform(self, lo: float, hi: float) -> float:
        """A float uniform on [lo, hi)."""
        return lo + (hi - lo) * self.random()

    def expovariate(self, rate: float) -> float:
        """An exponential variate with the given rate (for network latency)."""
        if rate <= 0:
            raise ParameterError("rate must be positive")
        # 1 - random() is in (0, 1], avoiding log(0).
        return -math.log(1.0 - self.random()) / rate

    def gauss(self, mu: float = 0.0, sigma: float = 1.0) -> float:
        """A normal variate (Box–Muller, with spare caching)."""
        if self._gauss_spare is not None:
            spare, self._gauss_spare = self._gauss_spare, None
            return mu + sigma * spare
        while True:
            u1 = self.random()
            if u1 > 0.0:
                break
        u2 = self.random()
        radius = math.sqrt(-2.0 * math.log(u1))
        self._gauss_spare = radius * math.sin(2.0 * math.pi * u2)
        return mu + sigma * radius * math.cos(2.0 * math.pi * u2)

    def choice(self, seq: Sequence[T]) -> T:
        """A uniform element of a non-empty sequence."""
        if not seq:
            raise ParameterError("cannot choose from an empty sequence")
        return seq[self.randrange(len(seq))]

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        """k distinct elements, order randomized (Fisher–Yates prefix)."""
        if k > len(seq):
            raise ParameterError("sample size exceeds population")
        pool = list(seq)
        for i in range(k):
            j = self.randint(i, len(pool) - 1)
            pool[i], pool[j] = pool[j], pool[i]
        return pool[:k]

    def shuffle(self, seq: MutableSequence[T]) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(seq) - 1, 0, -1):
            j = self.randint(0, i)
            seq[i], seq[j] = seq[j], seq[i]

    def fork(self, label: bytes | str) -> "HmacDrbg":
        """A domain-separated child generator (independent stream)."""
        if isinstance(label, str):
            label = label.encode()
        return HmacDrbg(self.random_bytes(32), personalization=label)
