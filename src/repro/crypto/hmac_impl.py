"""HMAC (RFC 2104) implemented from scratch over :mod:`hashlib` SHA-256.

HCPP attaches ``HMAC_ν(message ‖ timestamp)`` to every protocol message for
integrity (paper §IV.B–E).  We implement the inner/outer padding
construction directly rather than using :mod:`hmac` so the whole MAC path
is part of the reproduction, and expose a constant-time comparison to avoid
timing side channels in verification.
"""

from __future__ import annotations

import hashlib

from repro.exceptions import IntegrityError

_BLOCK_SIZE = 64  # SHA-256 block size in bytes
_IPAD = bytes(0x36 for _ in range(_BLOCK_SIZE))
_OPAD = bytes(0x5C for _ in range(_BLOCK_SIZE))

HMAC_OUTPUT_SIZE = 32


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256(key, message) per RFC 2104."""
    if len(key) > _BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    inner_key = bytes(k ^ i for k, i in zip(key, _IPAD))
    outer_key = bytes(k ^ o for k, o in zip(key, _OPAD))
    inner = hashlib.sha256(inner_key + message).digest()
    return hashlib.sha256(outer_key + inner).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit on mismatch."""
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


def verify_hmac(key: bytes, message: bytes, tag: bytes) -> None:
    """Raise :class:`IntegrityError` unless ``tag`` authenticates ``message``."""
    expected = hmac_sha256(key, message)
    if not constant_time_equal(expected, tag):
        raise IntegrityError("HMAC verification failed: message was tampered "
                             "with or the key is wrong")
