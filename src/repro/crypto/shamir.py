"""Shamir secret sharing + threshold IBC key extraction.

Paper §VI.D: *"The attack to A-servers can be addressed by splitting the
role of an A-server to several local offices."*  The natural cryptographic
realization is to **share the IBC master secret s0** across the offices
with Shamir's scheme, so that

* no single office (or any coalition below the threshold) can extract
  private keys or impersonate the A-server — a *stronger* property than
  the paper's plain replication, since it also removes the single point of
  *compromise*, and
* any t offices jointly extract keys without ever reconstructing s0:
  office i returns the partial key s_i·H1(ID), and the requester combines
  them with Lagrange coefficients (evaluated at 0) in the exponent:

      Γ = Σ_i λ_i · (s_i·H1(ID)) = (Σ_i λ_i s_i) · H1(ID) = s0·H1(ID).

:func:`split` / :func:`reconstruct` are the classic polynomial scheme over
Z_q; :class:`ThresholdPkg` wires it to G1 for distributed key extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import mathutil
from repro.crypto.ec import Point
from repro.crypto.hashes import h1_identity
from repro.crypto.ibe import IdentityKeyPair
from repro.crypto.params import DomainParams
from repro.crypto.rng import HmacDrbg
from repro.exceptions import ParameterError

__all__ = ["Share", "split", "reconstruct", "lagrange_at_zero",
           "ThresholdPkg", "PartialKey"]


@dataclass(frozen=True)
class Share:
    """One Shamir share: the evaluation (x, f(x)) of the secret polynomial."""

    x: int
    y: int


def split(secret: int, threshold: int, n_shares: int, modulus: int,
          rng: HmacDrbg) -> list[Share]:
    """Split ``secret`` into ``n_shares`` with reconstruction threshold
    ``threshold`` over Z_modulus (a prime)."""
    if not 1 <= threshold <= n_shares:
        raise ParameterError("need 1 <= threshold <= n_shares")
    if n_shares >= modulus:
        raise ParameterError("too many shares for the field")
    secret %= modulus
    coefficients = [secret] + [rng.randrange(modulus)
                               for _ in range(threshold - 1)]
    shares = []
    for x in range(1, n_shares + 1):
        y = 0
        for coefficient in reversed(coefficients):  # Horner
            y = (y * x + coefficient) % modulus
        shares.append(Share(x=x, y=y))
    return shares


def lagrange_at_zero(xs: list[int], modulus: int) -> list[int]:
    """Lagrange coefficients λ_i for interpolating f(0) from points x_i."""
    if len(set(xs)) != len(xs):
        raise ParameterError("duplicate share indices")
    coefficients = []
    for i, xi in enumerate(xs):
        numerator, denominator = 1, 1
        for j, xj in enumerate(xs):
            if i == j:
                continue
            numerator = numerator * (-xj) % modulus
            denominator = denominator * (xi - xj) % modulus
        coefficients.append(
            numerator * mathutil.inv_mod(denominator, modulus) % modulus)
    return coefficients


def reconstruct(shares: list[Share], modulus: int) -> int:
    """Recover the secret from >= threshold shares."""
    if not shares:
        raise ParameterError("no shares")
    coefficients = lagrange_at_zero([s.x for s in shares], modulus)
    return sum(c * s.y for c, s in zip(coefficients, shares)) % modulus


@dataclass(frozen=True)
class PartialKey:
    """Office i's contribution to a key extraction: (i, s_i·H1(ID))."""

    share_x: int
    point: Point


class ThresholdPkg:
    """A t-of-n threshold PKG: the split A-server of §VI.D.

    Build with :meth:`setup` (dealer-based sharing of a fresh s0); each
    *office* is addressed by its share index.  ``partial_extract`` runs at
    one office; ``combine`` runs at the requester (or a gateway) and never
    sees s0 or any share.
    """

    def __init__(self, params: DomainParams, shares: list[Share],
                 public_key: Point, threshold: int) -> None:
        self.params = params
        self._shares = {share.x: share for share in shares}
        self.public_key = public_key  # P_pub = s0·P, same as a plain PKG
        self.threshold = threshold

    @classmethod
    def setup(cls, params: DomainParams, threshold: int, n_offices: int,
              rng: HmacDrbg) -> "ThresholdPkg":
        secret = params.random_scalar(rng)
        shares = split(secret, threshold, n_offices, params.r, rng)
        public_key = params.generator * secret
        # The dealer's copy of the secret is dropped here; only shares
        # and the public key survive into the object.
        return cls(params=params, shares=shares, public_key=public_key,
                   threshold=threshold)

    @property
    def offices(self) -> list[int]:
        return sorted(self._shares)

    def partial_extract(self, office: int, identity: str) -> PartialKey:
        """One office's partial key s_i·H1(ID) (checks it exists)."""
        share = self._shares.get(office)
        if share is None:
            raise ParameterError("unknown office %d" % office)
        return PartialKey(share_x=share.x,
                          point=h1_identity(self.params, identity) * share.y)

    def combine(self, identity: str,
                partials: list[PartialKey]) -> IdentityKeyPair:
        """Lagrange-combine >= t partial keys into Γ = s0·H1(ID)."""
        if len(partials) < self.threshold:
            raise ParameterError(
                "need %d partial keys, got %d" % (self.threshold,
                                                  len(partials)))
        xs = [p.share_x for p in partials]
        coefficients = lagrange_at_zero(xs, self.params.r)
        private = None
        for coefficient, partial in zip(coefficients, partials):
            term = partial.point * coefficient
            private = term if private is None else private + term
        assert private is not None
        public = h1_identity(self.params, identity)
        return IdentityKeyPair(identity=identity, public=public,
                               private=private)

    def verify_extraction(self, key: IdentityKeyPair) -> bool:
        """Publicly check Γ = s0·H1(ID) via ê(Γ, P) == ê(PK, P_pub)."""
        return self.params.pairing_ratio_check(
            (key.private, self.params.generator),
            (key.public, self.public_key))
