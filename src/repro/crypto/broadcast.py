"""Broadcast encryption — the paper's BE for privilege assignment (§IV.C).

HCPP stores ``BE_U(d)`` at the S-server, where U = {family, P-device} is
the set of search-privileged entities and d keys the trapdoor-wrapping PRP
θ.  REVOKE replaces it with ``BE_U′(d′)`` for the reduced set U′, cutting a
lost P-device off from future searches without re-encrypting any PHI.

We implement the **complete-subtree method** of Naor–Naor–Lotspiech
(CRYPTO'01), the classic stateless-receiver scheme:

* Receivers are leaves of a complete binary tree; every tree node owns a
  symmetric key; a receiver's secret material X (the paper's X in the
  ASSIGN message) is the key chain on its root-to-leaf path.
* To broadcast to the non-revoked set, the sender computes the *subtree
  cover* — the minimal set of maximal subtrees containing no revoked leaf —
  and encrypts the session payload once per cover node.
* Ciphertext size is O(t·log(n/t)) for t revocations; a receiver decrypts
  with whichever of its log n keys appears in the cover.

The tree keys derive from a broadcast master secret via a PRF, so the
sender's state is O(1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hmac_impl import hmac_sha256
from repro.crypto.modes import AuthenticatedCipher
from repro.crypto.rng import HmacDrbg
from repro.exceptions import DecryptionError, ParameterError, RevokedError

__all__ = ["BroadcastEncryption", "ReceiverSecret", "BroadcastCiphertext"]


@dataclass(frozen=True)
class ReceiverSecret:
    """One receiver's private material: its leaf index and path-key chain.

    ``path_keys[depth]`` is the key of the ancestor at that depth
    (depth 0 = root, last = the leaf itself).
    """

    leaf: int
    path_keys: tuple[bytes, ...]

    def size_bytes(self) -> int:
        return 8 + sum(len(k) for k in self.path_keys)


@dataclass(frozen=True)
class BroadcastCiphertext:
    """A cover of subtree-node ids, each with an encryption of the payload."""

    cover: tuple[tuple[int, bytes], ...]  # (node_id, ciphertext) pairs
    revoked: frozenset[int]

    def size_bytes(self) -> int:
        return sum(8 + len(ct) for _, ct in self.cover)


class BroadcastEncryption:
    """NNL complete-subtree broadcast encryption over ``capacity`` leaves.

    ``capacity`` is rounded up to a power of two.  Node ids follow the
    implicit-heap convention: root = 1, children of ``v`` are ``2v`` and
    ``2v + 1``; leaf ``i`` is node ``capacity + i``.
    """

    def __init__(self, master_secret: bytes, capacity: int) -> None:
        if capacity < 1:
            raise ParameterError("capacity must be >= 1")
        size = 1
        while size < capacity:
            size *= 2
        self.capacity = size
        self._master = master_secret

    # -- key derivation ------------------------------------------------------
    def _node_key(self, node_id: int) -> bytes:
        return hmac_sha256(self._master,
                           b"nnl-node:" + node_id.to_bytes(8, "big"))

    def receiver_secret(self, leaf: int) -> ReceiverSecret:
        """Extract the path-key chain for leaf ``leaf`` (sender-side)."""
        if not 0 <= leaf < self.capacity:
            raise ParameterError("leaf index out of range")
        node = self.capacity + leaf
        chain = []
        while node >= 1:
            chain.append(self._node_key(node))
            node //= 2
        chain.reverse()  # root first
        return ReceiverSecret(leaf=leaf, path_keys=tuple(chain))

    # -- cover computation ----------------------------------------------------
    def _cover(self, revoked: frozenset[int]) -> list[int]:
        """Minimal subtree cover of the non-revoked leaves (Steiner-tree
        complement).  Returns node ids; empty when everyone is revoked."""
        for leaf in revoked:
            if not 0 <= leaf < self.capacity:
                raise ParameterError("revoked leaf out of range")
        if not revoked:
            return [1]
        # Mark every ancestor of a revoked leaf ("dirty"), then for each
        # dirty node emit any clean child as a cover root.
        dirty: set[int] = set()
        for leaf in revoked:
            node = self.capacity + leaf
            while node >= 1:
                dirty.add(node)
                node //= 2
        cover: list[int] = []
        for node in sorted(dirty):
            if node >= self.capacity:
                continue  # leaves have no children
            for child in (2 * node, 2 * node + 1):
                if child not in dirty:
                    cover.append(child)
        return cover

    # -- encryption -----------------------------------------------------------
    def encrypt(self, payload: bytes, revoked: frozenset[int] | set[int],
                rng: HmacDrbg) -> BroadcastCiphertext:
        """BE_U(payload) for U = all leaves minus ``revoked``."""
        revoked = frozenset(revoked)
        cover = self._cover(revoked)
        entries = []
        for node_id in cover:
            cipher = AuthenticatedCipher(self._node_key(node_id))
            entries.append((node_id, cipher.encrypt(payload, rng)))
        return BroadcastCiphertext(cover=tuple(entries), revoked=revoked)

    @staticmethod
    def decrypt(ciphertext: BroadcastCiphertext,
                secret: ReceiverSecret, capacity: int) -> bytes:
        """Receiver-side decryption with the path-key chain.

        Raises :class:`RevokedError` when the receiver's leaf is outside
        the cover (i.e. it has been revoked).
        """
        # Map each ancestor node id of this leaf to its chain key.
        node = capacity + secret.leaf
        ancestors: dict[int, bytes] = {}
        for depth in range(len(secret.path_keys) - 1, -1, -1):
            ancestors[node] = secret.path_keys[depth]
            node //= 2
        for node_id, body in ciphertext.cover:
            key = ancestors.get(node_id)
            if key is None:
                continue
            try:
                return AuthenticatedCipher(key).decrypt(body)
            except DecryptionError as exc:
                raise DecryptionError(
                    "cover entry failed to decrypt (corrupted broadcast)"
                ) from exc
        raise RevokedError("receiver leaf %d is revoked (not in cover)"
                           % secret.leaf)
