"""Pseudo-random function family — the paper's f : {0,1}^k × {0,1}^β → {0,1}^(γ+log₂α).

Section II.B defines a PRF family F_k = {f_s} indexed by seeds s with
efficiency and pseudorandomness.  We instantiate it with HMAC-SHA256 in
"expand" mode (as in HKDF-Expand), which is a PRF under the standard
assumption on the compression function, and expose bit-precise output
lengths because the SSE construction needs outputs of exactly
γ + log₂α bits to XOR-mask lookup-table entries.
"""

from __future__ import annotations

from repro.crypto.hmac_impl import hmac_sha256
from repro.exceptions import ParameterError


class Prf:
    """A member f_s of the PRF family, with a fixed output bit-length.

    ``Prf(seed, output_bits)`` fixes the seed (the paper's s ∈ {0,1}^k) and
    output length ℓ(k); calling the object evaluates f_s(x).
    """

    def __init__(self, seed: bytes, output_bits: int) -> None:
        if output_bits <= 0:
            raise ParameterError("PRF output length must be positive")
        self._seed = seed
        self.output_bits = output_bits
        self.output_bytes = (output_bits + 7) // 8

    def __call__(self, x: bytes) -> bytes:
        """Evaluate f_s(x) to exactly ``output_bits`` bits (MSB-padded)."""
        output = b""
        counter = 0
        while len(output) < self.output_bytes:
            output += hmac_sha256(self._seed,
                                  counter.to_bytes(4, "big") + x)
            counter += 1
        output = output[: self.output_bytes]
        # Mask excess high bits so the value fits output_bits exactly.
        excess = self.output_bytes * 8 - self.output_bits
        if excess:
            first = output[0] & (0xFF >> excess)
            output = bytes([first]) + output[1:]
        return output

    def as_int(self, x: bytes) -> int:
        """f_s(x) interpreted as an integer in [0, 2^output_bits)."""
        return int.from_bytes(self(x), "big")


def prf_int(seed: bytes, x: bytes, modulus: int) -> int:
    """One-shot PRF evaluation reduced into [0, modulus).

    Uses 128 bits of extra width before reduction so the modular bias is
    negligible (< 2^-128) for any modulus the library uses.
    """
    if modulus <= 0:
        raise ParameterError("modulus must be positive")
    width_bits = modulus.bit_length() + 128
    return Prf(seed, width_bits).as_int(x) % modulus
