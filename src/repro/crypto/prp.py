"""Pseudo-random permutations — the paper's ℓ, φ and θ.

Section IV.A selects three PRPs:

* ℓ : {0,1}^k × {0,1}^β → {0,1}^β          (lookup-table virtual addresses)
* φ : {0,1}^k × {0,1}^log₂α → {0,1}^log₂α   (array-A physical addresses)
* θ : {0,1}^k × {0,1}^(β+γ+log₂α) → …        (multi-user trapdoor wrapping)

Two constructions are provided:

* :class:`FeistelPrp` — a balanced Luby–Rackoff network over bit strings of
  any even or odd length (the halves are split as ⌈n/2⌉ / ⌊n/2⌋, an
  unbalanced Feistel).  Luby–Rackoff proves 4 rounds give a strong PRP from
  a PRF; we use 10 for margin.
* :class:`DomainPrp` — a permutation of the *integer* domain [0, N) for
  arbitrary N (not a power of two), built from a FeistelPrp over
  ⌈log₂N⌉ bits with cycle walking.  The SSE array A has α entries where α
  is "the total size of the plaintext file collection", rarely a power of
  two, so this is exactly what φ needs.

Both are bijections for every key, invertible, and deterministic.
"""

from __future__ import annotations

from repro.crypto.hmac_impl import hmac_sha256
from repro.exceptions import ParameterError

_DEFAULT_ROUNDS = 10


class FeistelPrp:
    """An (un)balanced Feistel PRP over ``bits``-bit strings."""

    def __init__(self, key: bytes, bits: int, rounds: int = _DEFAULT_ROUNDS) -> None:
        if bits < 2:
            raise ParameterError("Feistel PRP needs a domain of >= 2 bits")
        if rounds < 4:
            raise ParameterError("fewer than 4 Feistel rounds is not a strong PRP")
        self.bits = bits
        self.rounds = rounds
        self._left_bits = (bits + 1) // 2
        self._right_bits = bits // 2
        # Pre-derive one round key per round (domain-separated HMAC keys).
        self._round_keys = [
            hmac_sha256(key, b"feistel-round" + i.to_bytes(4, "big"))
            for i in range(rounds)
        ]

    def _round_function(self, round_index: int, value: int, out_bits: int) -> int:
        data = value.to_bytes(max(16, (value.bit_length() + 7) // 8), "big")
        key = self._round_keys[round_index]
        digest = b""
        counter = 0
        while len(digest) * 8 < out_bits:
            digest += hmac_sha256(key, counter.to_bytes(4, "big") + data)
            counter += 1
        return int.from_bytes(digest, "big") & ((1 << out_bits) - 1)

    def encrypt(self, x: int) -> int:
        """Apply the permutation to an integer in [0, 2^bits)."""
        if not 0 <= x < (1 << self.bits):
            raise ParameterError("input outside PRP domain")
        left = x >> self._right_bits
        right = x & ((1 << self._right_bits) - 1)
        for i in range(self.rounds):
            # Alternate half-sizes to realise the unbalanced network.
            if i % 2 == 0:
                left = left ^ self._round_function(i, right, self._left_bits)
            else:
                right = right ^ self._round_function(i, left, self._right_bits)
        return (left << self._right_bits) | right

    def decrypt(self, y: int) -> int:
        """Invert the permutation."""
        if not 0 <= y < (1 << self.bits):
            raise ParameterError("input outside PRP domain")
        left = y >> self._right_bits
        right = y & ((1 << self._right_bits) - 1)
        for i in reversed(range(self.rounds)):
            if i % 2 == 0:
                left = left ^ self._round_function(i, right, self._left_bits)
            else:
                right = right ^ self._round_function(i, left, self._right_bits)
        return (left << self._right_bits) | right

    # Byte-string convenience used by the multi-user SSE θ wrapping.
    def encrypt_bytes(self, data: bytes) -> bytes:
        nbytes = (self.bits + 7) // 8
        if len(data) != nbytes:
            raise ParameterError("input length mismatch for PRP domain")
        value = int.from_bytes(data, "big")
        if value >= (1 << self.bits):
            raise ParameterError("input exceeds PRP bit-domain")
        return self.encrypt(value).to_bytes(nbytes, "big")

    def decrypt_bytes(self, data: bytes) -> bytes:
        nbytes = (self.bits + 7) // 8
        if len(data) != nbytes:
            raise ParameterError("input length mismatch for PRP domain")
        return self.decrypt(int.from_bytes(data, "big")).to_bytes(nbytes, "big")


class DomainPrp:
    """A PRP over the integer domain [0, N) for arbitrary N ≥ 2.

    Cycle walking: apply the power-of-two Feistel permutation repeatedly
    until the value lands back inside [0, N).  Because the Feistel map is a
    permutation of the superset, the induced map on [0, N) is a permutation,
    and the expected number of walks is < 2.
    """

    def __init__(self, key: bytes, size: int, rounds: int = _DEFAULT_ROUNDS) -> None:
        if size < 2:
            raise ParameterError("domain PRP needs size >= 2")
        self.size = size
        self._feistel = FeistelPrp(key, max(2, (size - 1).bit_length()), rounds)

    def encrypt(self, x: int) -> int:
        if not 0 <= x < self.size:
            raise ParameterError("input outside [0, N)")
        y = self._feistel.encrypt(x)
        while y >= self.size:
            y = self._feistel.encrypt(y)
        return y

    def decrypt(self, y: int) -> int:
        if not 0 <= y < self.size:
            raise ParameterError("input outside [0, N)")
        x = self._feistel.decrypt(y)
        while x >= self.size:
            x = self._feistel.decrypt(x)
        return x
