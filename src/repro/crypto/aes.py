"""AES (FIPS 197) block cipher implemented from scratch.

This is the instantiation of the paper's semantically secure symmetric
encryptions E (node encryption inside the secure index) and E′ (the PHI
file-collection cipher), via the CTR / encrypt-then-MAC modes in
:mod:`repro.crypto.modes`.

A straightforward table-driven implementation: the S-box is generated at
import time from the GF(2⁸) inverse + affine map (rather than pasted as a
magic table), key expansion follows FIPS 197 §5.2, and the round function
uses the standard SubBytes/ShiftRows/MixColumns/AddRoundKey pipeline on a
16-byte column-major state.  Supports 128/192/256-bit keys.

Performance note: pure-Python AES runs at roughly 1 MB/s, which is ample
for the protocol experiments (PHI files are small) and keeps the entire
cipher inside the reproduction as the scope rules require.
"""

from __future__ import annotations

from repro.exceptions import ParameterError

BLOCK_SIZE = 16


def _generate_sbox() -> tuple[bytes, bytes]:
    """Build the AES S-box from first principles (GF(2⁸) inverse + affine)."""

    def gf_mul(a: int, b: int) -> int:
        result = 0
        for _ in range(8):
            if b & 1:
                result ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B  # x^8 + x^4 + x^3 + x + 1
            b >>= 1
        return result

    # Multiplicative inverses via exponentiation: a^254 = a^-1 in GF(2^8).
    def gf_inv(a: int) -> int:
        if a == 0:
            return 0
        result = 1
        exponent = 254
        base = a
        while exponent:
            if exponent & 1:
                result = gf_mul(result, base)
            base = gf_mul(base, base)
            exponent >>= 1
        return result

    sbox = bytearray(256)
    for value in range(256):
        inv = gf_inv(value)
        transformed = 0
        for bit in range(8):
            transformed |= (
                ((inv >> bit) ^ (inv >> ((bit + 4) % 8)) ^ (inv >> ((bit + 5) % 8))
                 ^ (inv >> ((bit + 6) % 8)) ^ (inv >> ((bit + 7) % 8))
                 ^ (0x63 >> bit)) & 1
            ) << bit
        sbox[value] = transformed
    inv_sbox = bytearray(256)
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _generate_sbox()


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


# Precomputed GF(2^8) multiply tables for the MixColumns coefficients.
_MUL2 = bytes(_xtime(i) for i in range(256))
_MUL3 = bytes(_xtime(i) ^ i for i in range(256))


def _gf_mul_small(a: int, b: int) -> int:
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


_MUL9 = bytes(_gf_mul_small(i, 9) for i in range(256))
_MUL11 = bytes(_gf_mul_small(i, 11) for i in range(256))
_MUL13 = bytes(_gf_mul_small(i, 13) for i in range(256))
_MUL14 = bytes(_gf_mul_small(i, 14) for i in range(256))

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36,
         0x6C, 0xD8, 0xAB, 0x4D)


class AES:
    """The AES block cipher with a fixed key.

    >>> cipher = AES(bytes(16))
    >>> cipher.decrypt_block(cipher.encrypt_block(b"sixteen byte msg"))
    b'sixteen byte msg'
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ParameterError("AES key must be 16, 24 or 32 bytes")
        self.key_size = len(key)
        self.rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[list[int]]:
        """FIPS 197 key schedule; returns one 16-byte list per round key."""
        nk = len(key) // 4
        words = [list(key[4 * i: 4 * i + 4]) for i in range(nk)]
        total_words = 4 * (self.rounds + 1)
        for i in range(nk, total_words):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]                      # RotWord
                temp = [_SBOX[b] for b in temp]                 # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        round_keys = []
        for round_index in range(self.rounds + 1):
            rk: list[int] = []
            for w in words[4 * round_index: 4 * round_index + 4]:
                rk.extend(w)
            round_keys.append(rk)
        return round_keys

    # -- block operations ---------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ParameterError("AES block must be 16 bytes")
        state = [block[i] ^ self._round_keys[0][i] for i in range(16)]
        for round_index in range(1, self.rounds):
            state = self._encrypt_round(state, self._round_keys[round_index])
        # Final round: no MixColumns.
        sbox = _SBOX
        temp = [sbox[b] for b in state]
        temp = self._shift_rows(temp)
        rk = self._round_keys[self.rounds]
        return bytes(temp[i] ^ rk[i] for i in range(16))

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ParameterError("AES block must be 16 bytes")
        rk = self._round_keys[self.rounds]
        state = [block[i] ^ rk[i] for i in range(16)]
        state = self._inv_shift_rows(state)
        state = [_INV_SBOX[b] for b in state]
        for round_index in range(self.rounds - 1, 0, -1):
            rk = self._round_keys[round_index]
            state = [state[i] ^ rk[i] for i in range(16)]
            state = self._inv_mix_columns(state)
            state = self._inv_shift_rows(state)
            state = [_INV_SBOX[b] for b in state]
        rk = self._round_keys[0]
        return bytes(state[i] ^ rk[i] for i in range(16))

    # -- round building blocks (state is a flat 16-list, column-major) ------
    @staticmethod
    def _shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: list[int]) -> list[int]:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    def _encrypt_round(self, state: list[int], rk: list[int]) -> list[int]:
        sbox, mul2, mul3 = _SBOX, _MUL2, _MUL3
        s = [sbox[b] for b in state]
        s = self._shift_rows(s)
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3 ^ rk[c]
            out[c + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3 ^ rk[c + 1]
            out[c + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3] ^ rk[c + 2]
            out[c + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3] ^ rk[c + 3]
        return out

    @staticmethod
    def _inv_mix_columns(s: list[int]) -> list[int]:
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out
