"""Finite-field arithmetic for the pairing substrate.

Two fields are provided:

* :class:`Fp` — the prime field F_p, wrapping plain integers with an
  attached modulus so field elements carry their context.
* :class:`Fp2Element` — the quadratic extension F_p² = F_p[i] / (i² + 1),
  valid whenever ``p ≡ 3 (mod 4)`` so that −1 is a non-residue.  Elements
  are written ``a + b·i``.

The supersingular curve ``y² = x³ + x`` used throughout HCPP has embedding
degree 2, so the Tate pairing takes values in F_p²; the distortion map
``ψ(x, y) = (−x, i·y)`` moves curve points into E(F_p²).

Elements are immutable; all operators return new objects.  For hot loops
(the Miller loop) the pairing module works on raw integers for speed, using
these classes at API boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto import fpbackend, mathutil
from repro.exceptions import ParameterError


@dataclass(frozen=True)
class Fp:
    """An element of the prime field F_p.

    All arithmetic routes through the active
    :mod:`repro.crypto.fpbackend` backend — pure python by default, gmpy2
    when installed — so the same element API transparently benefits from
    GMP limb arithmetic; values stored on the element are always python
    ints regardless of backend.
    """

    value: int
    p: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", self.value % self.p)

    # -- arithmetic ------------------------------------------------------
    def _check(self, other: "Fp") -> None:
        if self.p != other.p:
            raise ParameterError("mixed-field arithmetic (p mismatch)")

    def __add__(self, other: "Fp") -> "Fp":
        self._check(other)
        backend = fpbackend.active_backend()
        return Fp(backend.add(self.value, other.value, self.p), self.p)

    def __sub__(self, other: "Fp") -> "Fp":
        self._check(other)
        backend = fpbackend.active_backend()
        return Fp(backend.sub(self.value, other.value, self.p), self.p)

    def __mul__(self, other: "Fp | int") -> "Fp":
        backend = fpbackend.active_backend()
        if isinstance(other, int):
            return Fp(backend.mul(self.value, other, self.p), self.p)
        self._check(other)
        return Fp(backend.mul(self.value, other.value, self.p), self.p)

    __rmul__ = __mul__

    def __neg__(self) -> "Fp":
        return Fp(-self.value % self.p, self.p)

    def __pow__(self, exponent: int) -> "Fp":
        backend = fpbackend.active_backend()
        if exponent < 0:
            return Fp(backend.powmod(backend.inv(self.value, self.p),
                                     -exponent, self.p), self.p)
        return Fp(backend.powmod(self.value, exponent, self.p), self.p)

    def inverse(self) -> "Fp":
        """Multiplicative inverse; raises if the element is zero."""
        return Fp(mathutil.inv_mod(self.value, self.p), self.p)

    def __truediv__(self, other: "Fp") -> "Fp":
        self._check(other)
        return self * other.inverse()

    def sqrt(self) -> "Fp":
        """A square root; raises :class:`ParameterError` for non-residues."""
        return Fp(mathutil.sqrt_mod(self.value, self.p), self.p)

    def is_square(self) -> bool:
        return self.value == 0 or mathutil.is_quadratic_residue(self.value, self.p)

    # -- conversions -----------------------------------------------------
    def __int__(self) -> int:
        return self.value

    def __bool__(self) -> bool:
        return self.value != 0

    def to_bytes(self) -> bytes:
        return mathutil.int_to_bytes(self.value, mathutil.bit_length_bytes(self.p))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Fp(%d mod %d-bit p)" % (self.value, self.p.bit_length())


class Fp2Element:
    """An element ``a + b·i`` of F_p² with ``i² = −1``.

    Implemented without :mod:`dataclasses` to keep attribute access cheap in
    the pairing's final exponentiation, which performs thousands of F_p²
    multiplications.
    """

    __slots__ = ("a", "b", "p")

    def __init__(self, a: int, b: int, p: int) -> None:
        if p % 4 != 3:
            raise ParameterError("F_p[i]/(i^2+1) requires p ≡ 3 (mod 4)")
        self.a = a % p
        self.b = b % p
        self.p = p

    # -- constructors ----------------------------------------------------
    @classmethod
    def one(cls, p: int) -> "Fp2Element":
        return cls(1, 0, p)

    @classmethod
    def zero(cls, p: int) -> "Fp2Element":
        return cls(0, 0, p)

    @classmethod
    def from_base(cls, value: int, p: int) -> "Fp2Element":
        """Embed an F_p element into F_p²."""
        return cls(value, 0, p)

    # -- arithmetic ------------------------------------------------------
    def __add__(self, other: "Fp2Element") -> "Fp2Element":
        p = self.p
        return Fp2Element((self.a + other.a) % p, (self.b + other.b) % p, p)

    def __sub__(self, other: "Fp2Element") -> "Fp2Element":
        p = self.p
        return Fp2Element((self.a - other.a) % p, (self.b - other.b) % p, p)

    def __neg__(self) -> "Fp2Element":
        return Fp2Element(-self.a % self.p, -self.b % self.p, self.p)

    def __mul__(self, other: "Fp2Element | int") -> "Fp2Element":
        p = self.p
        if isinstance(other, int):
            return Fp2Element(self.a * other % p, self.b * other % p, p)
        # (a + bi)(c + di) = (ac − bd) + (ad + bc)i, via Karatsuba (3 mults).
        a, b = self.a, self.b
        c, d = other.a, other.b
        ac = a * c
        bd = b * d
        cross = (a + b) * (c + d) - ac - bd
        return Fp2Element((ac - bd) % p, cross % p, p)

    __rmul__ = __mul__

    def square(self) -> "Fp2Element":
        """Squaring with the complex-number shortcut (2 mults)."""
        p = self.p
        a, b = self.a, self.b
        # (a + bi)^2 = (a+b)(a−b) + 2ab·i
        return Fp2Element((a + b) * (a - b) % p, 2 * a * b % p, p)

    def conjugate(self) -> "Fp2Element":
        """The conjugate a − b·i, which equals the p-power Frobenius."""
        return Fp2Element(self.a, -self.b % self.p, self.p)

    def norm(self) -> int:
        """The norm a² + b² ∈ F_p (product with the conjugate)."""
        return (self.a * self.a + self.b * self.b) % self.p

    def inverse(self) -> "Fp2Element":
        """Inverse via the norm: (a+bi)^-1 = (a−bi) / (a²+b²)."""
        n = self.norm()
        if n == 0:
            raise ParameterError("zero has no inverse in F_p^2")
        n_inv = mathutil.inv_mod(n, self.p)
        return Fp2Element(self.a * n_inv % self.p, -self.b * n_inv % self.p, self.p)

    def __truediv__(self, other: "Fp2Element") -> "Fp2Element":
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "Fp2Element":
        """Square-and-multiply exponentiation; negative exponents invert."""
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Fp2Element.one(self.p)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base.square()
            exponent >>= 1
        return result

    def frobenius(self) -> "Fp2Element":
        """The p-power Frobenius endomorphism x ↦ x^p (== conjugation)."""
        return self.conjugate()

    # -- predicates / conversions ----------------------------------------
    def is_one(self) -> bool:
        return self.a == 1 and self.b == 0

    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    def __bool__(self) -> bool:
        return not self.is_zero()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fp2Element):
            return NotImplemented
        return self.p == other.p and self.a == other.a and self.b == other.b

    def __hash__(self) -> int:
        return hash((self.a, self.b, self.p))

    def to_bytes(self) -> bytes:
        """Fixed-length big-endian encoding ``a ‖ b``."""
        length = mathutil.bit_length_bytes(self.p)
        return (mathutil.int_to_bytes(self.a, length)
                + mathutil.int_to_bytes(self.b, length))

    @classmethod
    def from_bytes(cls, data: bytes, p: int) -> "Fp2Element":
        length = mathutil.bit_length_bytes(p)
        if len(data) != 2 * length:
            raise ParameterError("bad F_p^2 encoding length")
        return cls(mathutil.bytes_to_int(data[:length]),
                   mathutil.bytes_to_int(data[length:]), p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Fp2(%d + %d*i)" % (self.a, self.b)
