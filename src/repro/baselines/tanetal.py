"""Baseline: the Tan et al. body-sensor-network scheme (paper ref [11]).

Tan, Wang, Zhong, Li, *Body sensor network security: an identity-based
cryptography approach* (WiSec 2008) — an IBE-based realization of
role-based emergency access for sensor records.

The HCPP paper's critique (§I.A): *"the scheme in fact failed to achieve
privacy protection in that the storage site will learn the ownership of
the encrypted records (i.e., which records are from which patient) in
order to return the desired records to the querying doctor.  Such leakage
will compromise patients' privacy by violating the unlinkability
requirement."*

We implement the scheme's storage/query shape: sensor records are
IBE-encrypted under a *role* identity (so content confidentiality holds),
but the server must index them **by patient identity** so a doctor's query
"records of patient X" can be answered.  The ownership-inference game in
experiment E14 then shows a curious server wins with probability 1 here,
versus chance level against HCPP's pseudonymous SSE storage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ec import Point
from repro.crypto.ibe import (FullIdent, IbeCiphertext, IdentityKeyPair,
                              PrivateKeyGenerator)
from repro.crypto.params import DomainParams
from repro.crypto.rng import HmacDrbg
from repro.exceptions import AccessDenied, ParameterError


@dataclass
class _StoredRecord:
    patient_id: str          # the linkability leak: plaintext ownership
    role: str
    ciphertext: IbeCiphertext


class TanStorageSite:
    """The storage site: honest-but-curious, and it *sees ownership*."""

    def __init__(self) -> None:
        self._records: list[_StoredRecord] = []

    def store(self, patient_id: str, role: str,
              ciphertext: IbeCiphertext) -> None:
        self._records.append(_StoredRecord(patient_id=patient_id, role=role,
                                           ciphertext=ciphertext))

    def query(self, patient_id: str, role: str) -> list[IbeCiphertext]:
        """The doctor's query — answered *because* ownership is indexed."""
        return [r.ciphertext for r in self._records
                if r.patient_id == patient_id and r.role == role]

    # -- the leak, made measurable ----------------------------------------
    def ownership_view(self) -> dict[str, int]:
        """What the curious operator learns: patient → record count."""
        view: dict[str, int] = {}
        for record in self._records:
            view[record.patient_id] = view.get(record.patient_id, 0) + 1
        return view

    def infer_owner(self, record_index: int) -> str:
        """The ownership-inference game: trivially perfect here."""
        if not 0 <= record_index < len(self._records):
            raise ParameterError("record index out of range")
        return self._records[record_index].patient_id


class TanAuthority:
    """The PKG issuing role keys (mirrors HCPP's A-server role)."""

    def __init__(self, params: DomainParams, rng: HmacDrbg) -> None:
        self.params = params
        self._pkg = PrivateKeyGenerator(params, rng)
        self._authorized: set[str] = set()

    @property
    def public_key(self) -> Point:
        return self._pkg.public_key

    def authorize(self, doctor_id: str) -> None:
        self._authorized.add(doctor_id)

    def role_key(self, doctor_id: str, role: str) -> IdentityKeyPair:
        if doctor_id not in self._authorized:
            raise AccessDenied("doctor %r not authorized for role keys"
                               % doctor_id)
        return self._pkg.extract(role)


class TanSensorNode:
    """A patient's body-sensor node: IBE-encrypts under the role string."""

    def __init__(self, patient_id: str, params: DomainParams,
                 authority_public: Point, rng: HmacDrbg) -> None:
        self.patient_id = patient_id
        self._ibe = FullIdent(params, authority_public)
        self._rng = rng

    def upload(self, site: TanStorageSite, role: str, data: bytes) -> None:
        ciphertext = self._ibe.encrypt(role, data, self._rng)
        # The defining flaw: the upload is labeled with the patient id so
        # the site can later answer per-patient queries.
        site.store(self.patient_id, role, ciphertext)


def doctor_retrieve(site: TanStorageSite, authority: TanAuthority,
                    params: DomainParams, authority_public: Point,
                    doctor_id: str, patient_id: str,
                    role: str) -> list[bytes]:
    """The emergency-doctor flow: query by patient id, decrypt with Γ_role."""
    key = authority.role_key(doctor_id, role)
    ibe = FullIdent(params, authority_public)
    return [ibe.decrypt(key, ct) for ct in site.query(patient_id, role)]
