"""Baseline: the Lee–Lee key-escrow scheme (paper ref [10]).

Lee & Lee, *A cryptographic key management solution for HIPAA
privacy/security regulations* (IEEE T-ITB 2008): patients control their
PHI with smart-card keys, and a **trusted server possesses all secret keys
of the patient** as the consent exception for emergencies.

The HCPP paper's critique (§I.A): *"Although technically correct, the
proposed scheme is unreasonable since the trusted server is able to access
the patients' PHI at any time.  As a result, PHI privacy is not fully
guaranteed."*

This module implements the scheme faithfully enough to demonstrate both
sides of that comparison:

* it *works*: normal retrieval needs the smart card; emergency retrieval
  succeeds without the patient (the fail-open property), and
* it *fails privacy*: :meth:`EscrowServer.covert_read` shows the escrow
  reading any record with no emergency declared and no patient
  involvement — the experiment E13 measures exactly this capability gap
  against HCPP (where no server-side coalition can decrypt anything).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.modes import AuthenticatedCipher
from repro.crypto.rng import HmacDrbg
from repro.ehr.records import PhiFile
from repro.exceptions import AccessDenied, ParameterError


@dataclass
class SmartCard:
    """The patient's smart card: holds the record-encryption key."""

    patient_id: str
    key: bytes
    present: bool = True  # False models an incapacitated patient


@dataclass
class _EscrowedPatient:
    key: bytes                               # the escrowed copy
    records: dict[bytes, bytes] = field(default_factory=dict)


class EscrowServer:
    """The Lee–Lee trusted server: stores ciphertexts *and all keys*."""

    def __init__(self) -> None:
        self._patients: dict[str, _EscrowedPatient] = {}
        self.emergency_log: list[tuple[str, str]] = []

    # -- registration ------------------------------------------------------
    def register(self, patient_id: str, key: bytes) -> None:
        """Key escrow at enrollment — the scheme's defining step."""
        if patient_id in self._patients:
            raise ParameterError("patient %r already registered" % patient_id)
        self._patients[patient_id] = _EscrowedPatient(key=key)

    def _patient(self, patient_id: str) -> _EscrowedPatient:
        entry = self._patients.get(patient_id)
        if entry is None:
            raise ParameterError("unknown patient %r" % patient_id)
        return entry

    # -- storage ---------------------------------------------------------
    def store(self, patient_id: str, fid: bytes, ciphertext: bytes) -> None:
        """Records are stored **labeled by patient id** (linkable)."""
        self._patient(patient_id).records[fid] = ciphertext

    def records_of(self, patient_id: str) -> dict[bytes, bytes]:
        return dict(self._patient(patient_id).records)

    # -- the consent exception ----------------------------------------------
    def emergency_read(self, patient_id: str,
                       physician_id: str) -> list[bytes]:
        """Declared-emergency decryption using the escrowed key."""
        entry = self._patient(patient_id)
        self.emergency_log.append((patient_id, physician_id))
        cipher = AuthenticatedCipher(entry.key)
        return [cipher.decrypt(ct) for ct in entry.records.values()]

    # -- the privacy violation HCPP critiques -----------------------------------
    def covert_read(self, patient_id: str) -> list[bytes]:
        """Decrypt everything with *no* emergency and *no* patient consent.

        Nothing in the scheme prevents this: the server holds the key.
        This method exists to measure the capability, not to endorse it.
        """
        entry = self._patient(patient_id)
        cipher = AuthenticatedCipher(entry.key)
        return [cipher.decrypt(ct) for ct in entry.records.values()]

    def server_view_owners(self) -> dict[str, int]:
        """What the server knows about ownership: everything."""
        return {pid: len(entry.records)
                for pid, entry in self._patients.items()}


class LeeLeePatient:
    """A patient in the Lee–Lee system."""

    def __init__(self, patient_id: str, rng: HmacDrbg) -> None:
        self.patient_id = patient_id
        self.rng = rng
        self.card = SmartCard(patient_id=patient_id,
                              key=rng.random_bytes(32))

    def enroll(self, server: EscrowServer) -> None:
        server.register(self.patient_id, self.card.key)

    def store_record(self, server: EscrowServer, phi_file: PhiFile) -> None:
        cipher = AuthenticatedCipher(self.card.key)
        server.store(self.patient_id, phi_file.fid,
                     cipher.encrypt(phi_file.to_bytes(), self.rng))

    def consent_retrieve(self, server: EscrowServer) -> list[PhiFile]:
        """Normal-case retrieval: requires the smart card in hand."""
        if not self.card.present:
            raise AccessDenied("patient incapacitated: smart card unavailable")
        cipher = AuthenticatedCipher(self.card.key)
        return [PhiFile.from_bytes(cipher.decrypt(ct))
                for ct in server.records_of(self.patient_id).values()]
