"""Baseline systems the paper compares against (refs [10] and [11])."""

from repro.baselines.leelee import EscrowServer, LeeLeePatient
from repro.baselines.tanetal import (TanAuthority, TanSensorNode,
                                     TanStorageSite, doctor_retrieve)

__all__ = ["EscrowServer", "LeeLeePatient", "TanAuthority", "TanSensorNode",
           "TanStorageSite", "doctor_retrieve"]
