"""crypto-hygiene: constant-time comparisons, no ``random``, no fixed IVs.

Three checks, all motivated by attacks the paper's threat model admits:

* **Timing-unsafe MAC/digest comparison** — ``==``/``!=`` on values that
  are (or are named like) MACs, tags, or digests short-circuits at the
  first differing byte; an attacker who can submit guesses measures the
  byte-position of the mismatch (the classic HMAC timing attack; the
  repo's own ``bench_timing_analysis.py`` demonstrates the channel).
  Verification must go through ``constant_time_equal`` (ours,
  ``crypto/hmac_impl.py``) or ``hmac.compare_digest`` (stdlib, for
  modules below the crypto layer).
* **``random`` module use** — Mersenne Twister is predictable from 624
  outputs; every key, nonce, and scalar must come from the seeded
  :class:`~repro.crypto.rng.HmacDrbg`.  The only allowed importer is
  the fault-injection plan (``net/transport/faults.py``), which *wants*
  a cheap seeded stream and never touches key material.
* **Literal IV/nonce** — a constant ``iv=``/``nonce=`` argument (or a
  bytes literal in the IV slot of ``ctr_transform``/``cbc_encrypt``)
  turns CTR into a two-time pad and CBC into a deterministic cipher.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.framework import Finding, Module, Rule, register

#: Names that smell like MAC/digest material.  CRCs are framing checksums,
#: not authenticators, and are deliberately not matched.
MACLIKE_NAME = re.compile(r"(^|_)(tag|mac|digest|hmac)(s)?($|_)|_tag$|^tag",
                          re.IGNORECASE)
MACLIKE_CALLS = frozenset({"hmac_sha256", "digest", "hexdigest"})

RANDOM_ALLOWED = frozenset({"src/repro/net/transport/faults.py"})

IV_PARAM_NAMES = frozenset({"iv", "nonce"})
IV_POSITIONAL = {"ctr_transform": 1, "cbc_encrypt": 1, "cbc_decrypt": 1}


def _terminal(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _literal_bytes(node: ast.AST) -> bool:
    """A bytes constant, including the ``b"\\x00" * 16`` idiom."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, bytes)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        return _literal_bytes(node.left) or _literal_bytes(node.right)
    return False


def _maclike(node: ast.AST) -> bool:
    if isinstance(node, ast.Call):
        name = _terminal(node.func)
        return name in MACLIKE_CALLS
    # Walk attribute chains: ``tag.B`` is MAC material even though the
    # terminal attribute is just ``B``.
    probe = node
    while True:
        name = _terminal(probe)
        if name and MACLIKE_NAME.search(name):
            return True
        if isinstance(probe, ast.Attribute):
            probe = probe.value
            continue
        return False


@register
class CryptoHygieneRule(Rule):
    id = "crypto-hygiene"
    description = ("MAC/digest comparisons must be constant-time; no "
                   "`random` outside fault injection; no literal IVs "
                   "or nonces")

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                findings.extend(self._check_compare(module, node))
            elif isinstance(node, ast.Import):
                findings.extend(self._check_import(
                    module, node, [alias.name for alias in node.names]))
            elif isinstance(node, ast.ImportFrom):
                findings.extend(self._check_import(
                    module, node, [node.module or ""]))
            elif isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node))
        return findings

    def _check_compare(self, module: Module,
                       node: ast.Compare) -> list[Finding]:
        if len(node.ops) != 1 or not isinstance(node.ops[0],
                                                (ast.Eq, ast.NotEq)):
            return []
        left, right = node.left, node.comparators[0]
        # Comparisons against None/len()/ints are structural, not secret.
        for side in (left, right):
            if isinstance(side, ast.Constant) and not isinstance(
                    side.value, (bytes, str)):
                return []
        if not (_maclike(left) or _maclike(right)):
            return []
        return [self.finding(
            module, node.lineno,
            "MAC/digest comparison %r uses ==/!= which short-circuits "
            "on the first differing byte — use constant_time_equal / "
            "hmac.compare_digest" % module.segment(node))]

    def _check_import(self, module: Module, node: ast.AST,
                      names: list[str]) -> list[Finding]:
        findings = []
        for name in names:
            if name == "random" or name.startswith("random."):
                if module.path in RANDOM_ALLOWED:
                    continue
                findings.append(self.finding(
                    module, node.lineno,
                    "the `random` module is predictable (Mersenne "
                    "Twister) — draw from crypto.rng.HmacDrbg; only the "
                    "fault-injection plan may import it"))
        return findings

    def _check_call(self, module: Module, node: ast.Call) -> list[Finding]:
        findings = []
        for keyword in node.keywords:
            if (keyword.arg in IV_PARAM_NAMES
                    and _literal_bytes(keyword.value)):
                findings.append(self.finding(
                    module, node.lineno,
                    "literal %s= passed to %s() — a fixed IV/nonce makes "
                    "the keystream reusable; draw it from the DRBG"
                    % (keyword.arg,
                       _terminal(node.func) or "a cipher call")))
        position = IV_POSITIONAL.get(_terminal(node.func) or "")
        if position is not None and len(node.args) > position:
            if _literal_bytes(node.args[position]):
                findings.append(self.finding(
                    module, node.lineno,
                    "literal IV/nonce in %s() — a fixed IV/nonce makes "
                    "the keystream reusable; draw it from the DRBG"
                    % _terminal(node.func)))
        return findings
