"""SARIF 2.1.0 emission for hcpplint reports.

SARIF is the interchange format code-scanning UIs ingest (GitHub code
scanning, VS Code SARIF viewer), so CI can publish the lint run as an
artifact instead of a text log.  The mapping is small and deliberate:

* each registered rule becomes a ``tool.driver.rules`` entry;
* each live finding becomes a ``result`` with ``ruleId``, ``level``,
  message text, and a physical location (repo-relative URI + line);
* baseline-suppressed findings are still emitted, carrying a
  ``suppressions`` entry of kind ``external`` with the baseline's
  justification — reviewers see *what* was accepted and *why*;
* stale baseline entries land in ``runs[0].properties`` so the failure
  mode is visible in the artifact too.

Volatile report fields (elapsed time, file counts) stay out of the
document so identical findings produce byte-identical SARIF — that's
what makes the golden-file test meaningful.
"""

from __future__ import annotations

import json

from repro.analysis.framework import AnalysisReport, Baseline, Finding, Rule

__all__ = ["to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_entry(rule: Rule) -> dict:
    return {
        "id": rule.id,
        "shortDescription": {"text": rule.description},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")},
        "properties": {"version": rule.version,
                       "crossFile": rule.cross_file},
    }


def _result(finding: Finding, justification: str | None = None) -> dict:
    result = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path,
                                     "uriBaseId": "SRCROOT"},
                "region": {"startLine": max(finding.line, 1)},
            },
        }],
    }
    if justification is not None:
        result["suppressions"] = [{
            "kind": "external",
            "justification": justification,
        }]
    return result


def _justification(baseline: Baseline | None, finding: Finding) -> str:
    if baseline is None:
        return ""
    basename = finding.path.rsplit("/", 1)[-1]
    for entry in baseline.entries:
        if (entry["rule"] == finding.rule
                and entry["message"] == finding.message
                and (entry["path"] == finding.path
                     or entry["path"].rsplit("/", 1)[-1] == basename)):
            return entry["reason"]
    return ""


def to_sarif(report: AnalysisReport, rules: list[Rule],
             baseline: Baseline | None = None) -> dict:
    results = [_result(f) for f in report.findings]
    results.extend(
        _result(f, justification=_justification(baseline, f))
        for f in report.suppressed)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "hcpplint",
                "informationUri":
                    "https://github.com/hcpp-repro/hcpp#static-analysis",
                "rules": [_rule_entry(rule) for rule in rules],
            }},
            "results": results,
            "columnKind": "utf16CodeUnits",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "properties": {
                "clean": report.clean,
                "unusedBaseline": report.unused_baseline,
            },
        }],
    }


def render_sarif(report: AnalysisReport, rules: list[Rule],
                 baseline: Baseline | None = None) -> str:
    return json.dumps(to_sarif(report, rules, baseline),
                      indent=2, sort_keys=True)
