"""secret-flow: secrets must never reach logs, exception text, or
plaintext journal/snapshot writes.

HCPP's whole design keeps key material and emergency passcodes away
from every untrusted surface: the S-server is honest-but-curious, wire
errors serialize exception text back to the peer
(``dispatch.Endpoint.handle_frame`` → ``wire.error_response``), and the
journal is plain bytes on disk.  A secret formatted into an exception
message therefore *crosses the wire*; a secret in a log line lands in
operator storage; a secret appended to the journal is plaintext
key-at-rest.

The pass is an intraprocedural name-based taint analysis:

* **Sources** — identifiers whose terminal name matches the secret
  taxonomy: the master/group secrets (``master_secret``, ``group_secret``,
  ``*_secret``, ``d_new``), SSE/SOK/session keys (``session_key``,
  ``sse_key*``, ``omega``, ``nu``, ``preshared*``, ``_mu``/``mu_value``),
  emergency material (``nounce``, ``passcode``), private key points
  (``*private*``), and plaintext search keywords (``keyword``/``kw*`` —
  keyword privacy is the point of the SSE layer, §IV.B/D).
* **Propagation** — an assignment whose right-hand side mentions a
  tainted identifier taints its targets (iterated to a small fixpoint).
* **Sanitizers** — sizes and counts of secrets are public by design
  (the experiments report them): a tainted value inside a call to
  ``len``/``size_bytes``/``size``/``count``/``sum`` stops tainting.
* **Sinks** — ``logging``-style calls (``log.debug/info/.../critical``),
  ``print``, ``repr``/``!r``/``%r`` of a tainted value inside any
  formatted string, exception constructors whose message interpolates a
  tainted value (``%``, ``.format``, f-string, string concat), and
  journal/snapshot writes (``...writer().append(...)``,
  ``journal.append(...)``, ``write_snapshot(...)``) carrying a tainted
  payload.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.framework import Finding, Module, Rule, register

SECRET_NAME = re.compile(
    r"(^|_)(secret|nounce|passcode|preshared|master|private)($|_)"
    r"|group_secret|session_key|sse_key|keystore"
    r"|^_?mu(_value)?$|^omega$|^nu$|^d_new$"
    r"|^keyword(s)?$|^kw[0-9]?$",
    re.IGNORECASE)

#: Calls through which a secret stops being secret (public metrics).
SANITIZERS = frozenset({"len", "size_bytes", "size", "count", "sum",
                        "sha256", "hmac_sha256", "digest", "hexdigest"})

LOG_METHODS = frozenset({"debug", "info", "warning", "error",
                         "exception", "critical", "log"})
LOG_RECEIVERS = re.compile(r"(^|_)(log|logger|logging)(ger)?$",
                           re.IGNORECASE)

JOURNAL_RECEIVERS = re.compile(r"(journal|writer)", re.IGNORECASE)
SNAPSHOT_WRITERS = frozenset({"write_snapshot"})


def _terminal_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_secret_name(name: str | None) -> bool:
    return bool(name) and bool(SECRET_NAME.search(name))


def _call_name(node: ast.Call) -> str | None:
    return _terminal_name(node.func)


class _TaintScope:
    """Tainted identifiers for one function body."""

    def __init__(self) -> None:
        self.names: set[str] = set()

    def _scan(self, node: ast.AST) -> ast.AST | None:
        """The first tainted sub-expression, honoring sanitizers."""
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in SANITIZERS:
                return None
            for part in ([node.func] + node.args
                         + [kw.value for kw in node.keywords]):
                hit = self._scan(part)
                if hit is not None:
                    return hit
            return None
        terminal = _terminal_name(node)
        if terminal is not None:
            if _is_secret_name(terminal) or terminal in self.names:
                return node
        for child in ast.iter_child_nodes(node):
            hit = self._scan(child)
            if hit is not None:
                return hit
        return None


def _formatted_parts(node: ast.AST) -> list[ast.AST] | None:
    """The interpolated values of a string-formatting expression, or
    None when the expression is not a formatting construct."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        right = node.right
        if isinstance(right, ast.Tuple):
            return list(right.elts)
        return [right]
    if isinstance(node, ast.JoinedStr):
        return [part.value for part in node.values
                if isinstance(part, ast.FormattedValue)]
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"):
        return list(node.args) + [kw.value for kw in node.keywords]
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        parts = []
        for side in (node.left, node.right):
            nested = _formatted_parts(side)
            parts.extend(nested if nested is not None else [side])
        return parts
    return None


@register
class SecretFlowRule(Rule):
    id = "secret-flow"
    description = ("secrets (keys, nounces, passcodes, search keywords) "
                   "must not flow into logs, exception messages, repr, "
                   "or journal/snapshot writes")

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(module, node))
        return findings

    # -- per-function taint -------------------------------------------------
    def _check_function(self, module: Module,
                        func: ast.FunctionDef) -> list[Finding]:
        scope = _TaintScope()
        args = func.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            if _is_secret_name(arg.arg):
                scope.names.add(arg.arg)
        # Two propagation passes reach a fixpoint for straight-line
        # assignment chains (a = secret; b = a; sink(b)).
        for _ in range(2):
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    if scope._scan(node.value) is not None:
                        for target in node.targets:
                            name = _terminal_name(target)
                            if isinstance(target, ast.Name) and name:
                                scope.names.add(name)
        findings: list[Finding] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, scope, node))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                findings.extend(self._check_raise(module, scope, node))
        return findings

    # -- sinks ---------------------------------------------------------------
    def _check_call(self, module: Module, scope: _TaintScope,
                    call: ast.Call) -> list[Finding]:
        findings: list[Finding] = []
        func = call.func
        name = _call_name(call)
        # logging / print
        is_log = (isinstance(func, ast.Attribute)
                  and func.attr in LOG_METHODS
                  and bool(LOG_RECEIVERS.search(
                      _terminal_name(func.value) or "")))
        if is_log or name == "print":
            for arg in call.args + [kw.value for kw in call.keywords]:
                hit = scope._scan(arg)
                if hit is not None:
                    findings.append(self.finding(
                        module, call.lineno,
                        "secret %r reaches a %s sink — secrets must "
                        "never be logged or printed"
                        % (module.segment(hit) or _terminal_name(hit),
                           "logging" if is_log else "print")))
                    break
        # repr(secret)
        if name == "repr" and call.args:
            hit = scope._scan(call.args[0])
            if hit is not None:
                findings.append(self.finding(
                    module, call.lineno,
                    "repr() of secret %r — the textual form will outlive "
                    "the variable" % (module.segment(hit)
                                      or _terminal_name(hit))))
        # journal append / snapshot write
        if name == "append" and isinstance(func, ast.Attribute):
            receiver = func.value
            receiver_src = module.segment(receiver)
            if JOURNAL_RECEIVERS.search(receiver_src or ""):
                for arg in call.args[1:] or call.args:
                    hit = scope._scan(arg)
                    if hit is not None:
                        findings.append(self.finding(
                            module, call.lineno,
                            "secret %r is written to the journal in "
                            "plaintext — journaled bytes are "
                            "key-material-at-rest"
                            % (module.segment(hit)
                               or _terminal_name(hit))))
                        break
        if name in SNAPSHOT_WRITERS:
            for arg in call.args + [kw.value for kw in call.keywords]:
                hit = scope._scan(arg)
                if hit is not None:
                    findings.append(self.finding(
                        module, call.lineno,
                        "secret %r is written to a snapshot in plaintext"
                        % (module.segment(hit) or _terminal_name(hit))))
                    break
        return findings

    def _check_raise(self, module: Module, scope: _TaintScope,
                     node: ast.Raise) -> list[Finding]:
        exc = node.exc
        if not isinstance(exc, ast.Call):
            return []
        findings: list[Finding] = []
        for arg in exc.args:
            parts = _formatted_parts(arg)
            if parts is None:
                continue
            for part in parts:
                hit = scope._scan(part)
                if hit is not None:
                    findings.append(self.finding(
                        module, node.lineno,
                        "secret %r is interpolated into an exception "
                        "message — dispatch serializes exception text "
                        "onto the wire"
                        % (module.segment(hit) or _terminal_name(hit))))
                    break
        return findings
