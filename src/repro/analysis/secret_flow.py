"""secret-flow: secrets must never reach logs, exception text, or
plaintext journal/snapshot writes.

HCPP's whole design keeps key material and emergency passcodes away
from every untrusted surface: the S-server is honest-but-curious, wire
errors serialize exception text back to the peer
(``dispatch.Endpoint.handle_frame`` → ``wire.error_response``), and the
journal is plain bytes on disk.  A secret formatted into an exception
message therefore *crosses the wire*; a secret in a log line lands in
operator storage; a secret appended to the journal is plaintext
key-at-rest.

The pass is an intraprocedural name-based taint analysis:

* **Sources** — identifiers whose terminal name matches the secret
  taxonomy: the master/group secrets (``master_secret``, ``group_secret``,
  ``*_secret``, ``d_new``), SSE/SOK/session keys (``session_key``,
  ``sse_key*``, ``omega``, ``nu``, ``preshared*``, ``_mu``/``mu_value``),
  emergency material (``nounce``, ``passcode``), private key points
  (``*private*``), and plaintext search keywords (``keyword``/``kw*`` —
  keyword privacy is the point of the SSE layer, §IV.B/D).
* **Propagation** — an assignment whose right-hand side mentions a
  tainted identifier taints its targets (iterated to a small fixpoint).
* **Sanitizers** — sizes and counts of secrets are public by design
  (the experiments report them): a tainted value inside a call to
  ``len``/``size_bytes``/``size``/``count``/``sum`` stops tainting.
* **Sinks** — ``logging``-style calls (``log.debug/info/.../critical``),
  ``print``, ``repr``/``!r``/``%r`` of a tainted value inside any
  formatted string, exception constructors whose message interpolates a
  tainted value (``%``, ``.format``, f-string, string concat), and
  journal/snapshot writes (``...writer().append(...)``,
  ``journal.append(...)``, ``write_snapshot(...)``) carrying a tainted
  payload.

v2 adds an **interprocedural layer** on the shared project call graph
(:mod:`repro.analysis.callgraph`), run in :meth:`finish`:

* **returns** — a function whose return expression is tainted makes
  every call to it a source (``derive()`` returning ``master_secret``
  taints ``key = derive()`` in another file); resolution is name-based
  and conservative: *every* definition of the name must return a
  secret, so ``dict.get`` lookalikes stay quiet;
* **arguments** — per function, each parameter is checked for a
  sink-reaching flow (directly or transitively through further calls);
  a call site passing a *tainted* argument into such a parameter is a
  finding at the call site, where the secret actually escapes;
* **attribute stores** — ``self.X = <tainted>`` marks ``X`` tainted
  for the whole class, so a secret stashed in one method and logged in
  a sibling is caught.

Interprocedurally-derived taint is **weak**: it marks an *aggregate
holder* (a system object, an envelope) rather than a proven secret, so
it does not project through attribute access — ``envelope.label`` is
public metadata even though the envelope contains ciphertext.  Name-
taxonomy taint stays **strong** and projects exactly as in v1.

The intraprocedural findings and their message text are unchanged —
the baseline keys on messages, and the interprocedural layer only adds
findings the per-function pass cannot see.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis import callgraph
from repro.analysis.framework import (Finding, Module, Project, Rule,
                                      register)

SECRET_NAME = re.compile(
    r"(^|_)(secret|nounce|passcode|preshared|master|private)($|_)"
    r"|group_secret|session_key|sse_key|keystore"
    r"|^_?mu(_value)?$|^omega$|^nu$|^d_new$"
    r"|^keyword(s)?$|^kw[0-9]?$",
    re.IGNORECASE)

#: Calls through which a secret stops being secret (public metrics).
SANITIZERS = frozenset({"len", "size_bytes", "size", "count", "sum",
                        "sha256", "hmac_sha256", "digest", "hexdigest"})

LOG_METHODS = frozenset({"debug", "info", "warning", "error",
                         "exception", "critical", "log"})
LOG_RECEIVERS = re.compile(r"(^|_)(log|logger|logging)(ger)?$",
                           re.IGNORECASE)

JOURNAL_RECEIVERS = re.compile(r"(journal|writer)", re.IGNORECASE)
SNAPSHOT_WRITERS = frozenset({"write_snapshot"})


def _terminal_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_secret_name(name: str | None) -> bool:
    return bool(name) and bool(SECRET_NAME.search(name))


def _call_name(node: ast.Call) -> str | None:
    return _terminal_name(node.func)


class _TaintScope:
    """Tainted identifiers for one function body.

    v2 distinguishes two taint strengths.  **Strong** taint is the
    original kind — a name the secret taxonomy matches, or anything
    assigned from one — and projects through attribute access
    (``master_secret.bytes`` is as secret as ``master_secret``).
    **Weak** taint marks *aggregate holders*: a value returned by a
    secret-returning function, or a parameter under flow analysis.  The
    aggregate itself reaching a sink counts (``print(system)`` reprs
    the keys inside), but a projection of it does not —
    ``envelope.label`` and ``issue.t_issue`` are public metadata of an
    object that merely *contains* secrets, and treating them as secret
    drowned every real finding in noise.

    ``name_taxonomy`` switches the secret-name regex source on/off —
    parameter-flow scopes (``does *this* parameter reach a sink?``)
    taint exactly one name and nothing else.  ``secret_calls`` and
    ``self_attrs`` are the interprocedural extensions: call names whose
    return value is secret, and ``self.<attr>`` slots a method stored a
    tainted value into (mapped to that value's strength).
    """

    def __init__(self, name_taxonomy: bool = True) -> None:
        self.names: set[str] = set()          # strong
        self.weak_names: set[str] = set()     # aggregate holders
        self.name_taxonomy = name_taxonomy
        self.secret_calls: frozenset[str] = frozenset()
        self.self_attrs: dict[str, bool] = {}  # attr -> strong?

    def _scan(self, node: ast.AST) -> ast.AST | None:
        """The first tainted sub-expression, honoring sanitizers."""
        hit = self._scan_strength(node)
        return hit[0] if hit is not None else None

    def _scan_strength(self,
                       node: ast.AST) -> tuple[ast.AST, bool] | None:
        """(hit node, strong?) for the first tainted sub-expression."""
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name in SANITIZERS:
                return None
            if name in self.secret_calls:
                return (node, False)
            for part in ([node.func] + node.args
                         + [kw.value for kw in node.keywords]):
                hit = self._scan_strength(part)
                if hit is not None:
                    return hit
            return None
        terminal = _terminal_name(node)
        if terminal is not None:
            if ((self.name_taxonomy and _is_secret_name(terminal))
                    or terminal in self.names):
                return (node, True)
            if isinstance(node, ast.Name) and terminal in self.weak_names:
                return (node, False)
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                    and terminal in self.self_attrs):
                return (node, self.self_attrs[terminal])
        if isinstance(node, ast.Attribute):
            # Projection: x.attr inherits only *strong* taint from x.
            inner = self._scan_strength(node.value)
            if inner is not None and inner[1]:
                return inner
            return None
        for child in ast.iter_child_nodes(node):
            hit = self._scan_strength(child)
            if hit is not None:
                return hit
        return None

    def add_assign(self, target_name: str, strong: bool) -> None:
        (self.names if strong else self.weak_names).add(target_name)


def _formatted_parts(node: ast.AST) -> list[ast.AST] | None:
    """The interpolated values of a string-formatting expression, or
    None when the expression is not a formatting construct."""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        right = node.right
        if isinstance(right, ast.Tuple):
            return list(right.elts)
        return [right]
    if isinstance(node, ast.JoinedStr):
        return [part.value for part in node.values
                if isinstance(part, ast.FormattedValue)]
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
            and node.func.attr == "format"):
        return list(node.args) + [kw.value for kw in node.keywords]
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        parts = []
        for side in (node.left, node.right):
            nested = _formatted_parts(side)
            parts.extend(nested if nested is not None else [side])
        return parts
    return None


#: message substring -> sink kind, for summarizing a callee's finding
#: at a caller-side call site.
_KIND_MARKERS = (
    ("reaches a logging sink", "logging"),
    ("reaches a print sink", "print"),
    ("repr() of secret", "repr"),
    ("written to the journal", "journal"),
    ("written to a snapshot", "snapshot"),
    ("exception message", "exception"),
)


def _finding_kind(message: str) -> str:
    for marker, kind in _KIND_MARKERS:
        if marker in message:
            return kind
    return "secret"


class _FuncInfo:
    """Per-function facts the interprocedural fixpoints consume."""

    def __init__(self, fn: "callgraph.FuncNode",
                 graph: "callgraph.CallGraph") -> None:
        self.fn = fn
        func = fn.node
        args = func.args
        params = [a.arg for a in args.posonlyargs + args.args
                  + args.kwonlyargs]
        if fn.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        self.params = params
        self.callees = graph.callees(func)
        self.returns: list[ast.AST] = []
        self.attr_assigns: list[tuple[str, ast.AST]] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Return) and node.value is not None:
                self.returns.append(node.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"):
                        self.attr_assigns.append((target.attr,
                                                  node.value))
        self.has_sink_heads = _has_sink_heads(fn.module, func)


def _has_sink_heads(module: Module, func: ast.AST) -> bool:
    """Cheap prescan: does the body contain any sink-shaped construct?
    Gates the per-parameter flow analysis to functions that could
    possibly sink anything."""
    for node in ast.walk(func):
        if (isinstance(node, ast.Raise)
                and isinstance(node.exc, ast.Call)
                and any(_formatted_parts(arg) is not None
                        for arg in node.exc.args)):
            return True
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in ("print", "repr") or name in SNAPSHOT_WRITERS:
            return True
        fn = node.func
        if (isinstance(fn, ast.Attribute) and fn.attr in LOG_METHODS
                and LOG_RECEIVERS.search(
                    _terminal_name(fn.value) or "")):
            return True
        if (name == "append" and isinstance(fn, ast.Attribute)
                and JOURNAL_RECEIVERS.search(
                    module.segment(fn.value) or "")):
            return True
    return False


@register
class SecretFlowRule(Rule):
    id = "secret-flow"
    version = 2          # v2: interprocedural layer in finish()
    cross_file = True
    description = ("secrets (keys, nounces, passcodes, search keywords) "
                   "must not flow into logs, exception messages, repr, "
                   "or journal/snapshot writes — traced through returns, "
                   "arguments, and attribute stores on the call graph")

    #: fixpoint round cap — taint chains deeper than this are beyond
    #: any code this repo grows (each round adds one call-graph hop).
    MAX_ROUNDS = 5

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(module, node))
        return findings

    # -- per-function taint -------------------------------------------------
    def _base_scope(self, func: ast.AST,
                    secret_calls: frozenset = frozenset(),
                    self_attrs: dict | None = None) -> _TaintScope:
        scope = _TaintScope()
        scope.secret_calls = secret_calls
        scope.self_attrs = dict(self_attrs or {})
        args = func.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])):
            if _is_secret_name(arg.arg):
                scope.names.add(arg.arg)
        # Two propagation passes reach a fixpoint for straight-line
        # assignment chains (a = secret; b = a; sink(b)).  The target
        # inherits the hit's strength: `key = derive()` holds an
        # aggregate, `key = master_secret` holds the secret itself.
        for _ in range(2):
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    hit = scope._scan_strength(node.value)
                    if hit is not None:
                        for target in node.targets:
                            name = _terminal_name(target)
                            if isinstance(target, ast.Name) and name:
                                scope.add_assign(name, hit[1])
        return scope

    def _scan_sinks(self, module: Module, scope: _TaintScope,
                    func: ast.AST) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, scope, node))
            elif isinstance(node, ast.Raise) and node.exc is not None:
                findings.extend(self._check_raise(module, scope, node))
        return findings

    def _check_function(self, module: Module,
                        func: ast.FunctionDef) -> list[Finding]:
        return self._scan_sinks(module, self._base_scope(func), func)

    # -- interprocedural layer ----------------------------------------------
    def finish(self, project: Project) -> Iterable[Finding]:
        graph = callgraph.for_project(project)
        infos = {id(fn.node): _FuncInfo(fn, graph)
                 for fn in graph.functions}
        returning, attr_taint = self._taint_fixpoint(graph, infos)
        secret_calls = self._secret_call_names(graph, returning)
        sink_params = self._sink_param_fixpoint(graph, infos)
        findings: list[Finding] = []
        for info in infos.values():
            findings.extend(self._report_function(
                graph, infos, info, secret_calls, attr_taint,
                sink_params))
        return findings

    #: call names never treated as secret-returning even when the only
    #: project definition of the name qualifies — these shadow stdlib
    #: container/IO methods, so most call sites resolve to builtins the
    #: analysis cannot see (``(bound or {}).get(...)`` is a dict, not
    #: the keystore's ``get``).
    GENERIC_CALL_NAMES = frozenset({
        "get", "pop", "popitem", "setdefault", "copy", "update",
        "items", "values", "keys", "read", "readline", "recv", "next",
    })

    @classmethod
    def _secret_call_names(cls, graph: "callgraph.CallGraph",
                           returning: set[int]) -> frozenset[str]:
        """Call names where *every* project definition returns a secret
        — ambiguous names (``get``, ``derive``) only qualify when all
        their definitions agree, so generic helpers stay quiet."""
        names = set()
        for name, defs in graph.by_name.items():
            if name in cls.GENERIC_CALL_NAMES:
                continue
            if defs and all(id(d.node) in returning for d in defs):
                names.add(name)
        return frozenset(names)

    def _extensions(self, info: _FuncInfo, secret_calls: frozenset,
                    attr_taint: dict) -> tuple[frozenset, dict]:
        """The interprocedural scope extensions relevant to one
        function: secret-returning callees it actually calls, tainted
        attrs of its own class (attr -> strong?)."""
        calls = (secret_calls & info.callees
                 if secret_calls else frozenset())
        attrs = (dict(attr_taint.get(id(info.fn.cls), {}))
                 if info.fn.cls is not None else {})
        return frozenset(calls), attrs

    def _taint_fixpoint(self, graph: "callgraph.CallGraph",
                        infos: dict) -> tuple[set[int], dict]:
        """Which functions return secrets, and which self-attributes
        hold them — iterated together since each feeds the other."""
        returning: set[int] = set()
        attr_taint: dict[int, dict[str, bool]] = {}
        for round_no in range(self.MAX_ROUNDS):
            changed = False
            secret_calls = self._secret_call_names(graph, returning)
            for info in infos.values():
                if not info.returns and not info.attr_assigns:
                    continue
                calls, attrs = self._extensions(info, secret_calls,
                                                attr_taint)
                if round_no > 0 and not calls and not attrs:
                    continue   # nothing new can have changed for it
                scope = self._base_scope(info.fn.node, calls, attrs)
                key = id(info.fn.node)
                if (key not in returning
                        and any(scope._scan(expr) is not None
                                for expr in info.returns)):
                    returning.add(key)
                    changed = True
                if info.fn.cls is not None:
                    stored = attr_taint.setdefault(id(info.fn.cls),
                                                   {})
                    for attr, value in info.attr_assigns:
                        hit = scope._scan_strength(value)
                        if hit is None:
                            continue
                        if stored.get(attr) is None or (hit[1]
                                                        and not
                                                        stored[attr]):
                            stored[attr] = hit[1]
                            changed = True
            if not changed:
                break
        return returning, attr_taint

    def _sink_param_fixpoint(self, graph: "callgraph.CallGraph",
                             infos: dict) -> dict[int, dict[str, str]]:
        """id(func node) -> {parameter name: sink kind} for parameters
        that reach a sink, directly or through further calls."""
        sink_params: dict[int, dict[str, str]] = {}
        for round_no in range(self.MAX_ROUNDS):
            changed = False
            for info in infos.values():
                if not info.params:
                    continue
                transitive = any(
                    sink_params.get(id(d.node))
                    for callee in info.callees
                    for d in graph.resolve(callee))
                if not info.has_sink_heads and not transitive:
                    continue
                known = sink_params.setdefault(id(info.fn.node), {})
                for param in info.params:
                    if param in known:
                        continue
                    kind = self._param_sink_kind(graph, info, param,
                                                 sink_params)
                    if kind is not None:
                        known[param] = kind
                        changed = True
            if not changed:
                break
        return {key: value for key, value in sink_params.items()
                if value}

    def _param_sink_kind(self, graph: "callgraph.CallGraph",
                         info: _FuncInfo, param: str,
                         sink_params: dict) -> str | None:
        func = info.fn.node
        scope = _TaintScope(name_taxonomy=False)
        # The parameter is an aggregate holder, not a proven secret:
        # weak taint, so sinks of its *projections* (``envelope.label``)
        # don't make the whole parameter a sink conduit.
        scope.weak_names.add(param)
        for _ in range(2):
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    hit = scope._scan_strength(node.value)
                    if hit is not None:
                        for target in node.targets:
                            name = _terminal_name(target)
                            if isinstance(target, ast.Name) and name:
                                scope.add_assign(name, hit[1])
        if info.has_sink_heads:
            hits = self._scan_sinks(info.fn.module, scope, func)
            if hits:
                return _finding_kind(hits[0].message)
        for name, call in graph.call_sites(func):
            defs = graph.resolve(name)
            if not defs:
                continue
            if any(not sink_params.get(id(d.node)) for d in defs):
                continue   # every definition must sink, or none count
            callee = defs[0]
            callee_sinks = sink_params[id(callee.node)]
            for pname, arg in graph.map_call_args(call, callee):
                if (pname in callee_sinks
                        and scope._scan(arg) is not None):
                    return callee_sinks[pname]
        return None

    def _report_function(self, graph: "callgraph.CallGraph",
                         infos: dict, info: _FuncInfo,
                         secret_calls: frozenset, attr_taint: dict,
                         sink_params: dict) -> list[Finding]:
        func = info.fn.node
        module = info.fn.module
        calls, attrs = self._extensions(info, secret_calls, attr_taint)
        scope = self._base_scope(func, calls, attrs)
        findings: list[Finding] = []
        # (a) sinks only the extended scope reaches — the intra pass
        # already reported everything the base scope taints, so a line
        # it flagged is skipped here (one finding per sink site).
        if info.has_sink_heads and (calls or attrs):
            base_lines = {f.line for f in self._scan_sinks(
                module, self._base_scope(func), func)}
            for found in self._scan_sinks(module, scope, func):
                if found.line not in base_lines:
                    findings.append(found)
        # (b) a tainted argument flowing into a parameter the callee
        # (transitively) sinks — reported at the call site, where the
        # secret actually escapes this function's control.
        for name, call in graph.call_sites(func):
            defs = graph.resolve(name)
            if not defs:
                continue
            if any(not sink_params.get(id(d.node)) for d in defs):
                continue
            callee = defs[0]
            callee_sinks = sink_params[id(callee.node)]
            for pname, arg in graph.map_call_args(call, callee):
                kind = callee_sinks.get(pname)
                if kind is None:
                    continue
                hit = scope._scan(arg)
                if hit is not None:
                    findings.append(self.finding(
                        module, call.lineno,
                        "secret %r flows into %s() whose parameter %r "
                        "reaches a %s sink — the secret escapes "
                        "through the call graph"
                        % (module.segment(hit) or _terminal_name(hit),
                           name, pname, kind)))
                    break
        return findings

    # -- sinks ---------------------------------------------------------------
    def _check_call(self, module: Module, scope: _TaintScope,
                    call: ast.Call) -> list[Finding]:
        findings: list[Finding] = []
        func = call.func
        name = _call_name(call)
        # logging / print
        is_log = (isinstance(func, ast.Attribute)
                  and func.attr in LOG_METHODS
                  and bool(LOG_RECEIVERS.search(
                      _terminal_name(func.value) or "")))
        if is_log or name == "print":
            for arg in call.args + [kw.value for kw in call.keywords]:
                hit = scope._scan(arg)
                if hit is not None:
                    findings.append(self.finding(
                        module, call.lineno,
                        "secret %r reaches a %s sink — secrets must "
                        "never be logged or printed"
                        % (module.segment(hit) or _terminal_name(hit),
                           "logging" if is_log else "print")))
                    break
        # repr(secret)
        if name == "repr" and call.args:
            hit = scope._scan(call.args[0])
            if hit is not None:
                findings.append(self.finding(
                    module, call.lineno,
                    "repr() of secret %r — the textual form will outlive "
                    "the variable" % (module.segment(hit)
                                      or _terminal_name(hit))))
        # journal append / snapshot write
        if name == "append" and isinstance(func, ast.Attribute):
            receiver = func.value
            receiver_src = module.segment(receiver)
            if JOURNAL_RECEIVERS.search(receiver_src or ""):
                for arg in call.args[1:] or call.args:
                    hit = scope._scan(arg)
                    if hit is not None:
                        findings.append(self.finding(
                            module, call.lineno,
                            "secret %r is written to the journal in "
                            "plaintext — journaled bytes are "
                            "key-material-at-rest"
                            % (module.segment(hit)
                               or _terminal_name(hit))))
                        break
        if name in SNAPSHOT_WRITERS:
            for arg in call.args + [kw.value for kw in call.keywords]:
                hit = scope._scan(arg)
                if hit is not None:
                    findings.append(self.finding(
                        module, call.lineno,
                        "secret %r is written to a snapshot in plaintext"
                        % (module.segment(hit) or _terminal_name(hit))))
                    break
        return findings

    def _check_raise(self, module: Module, scope: _TaintScope,
                     node: ast.Raise) -> list[Finding]:
        exc = node.exc
        if not isinstance(exc, ast.Call):
            return []
        findings: list[Finding] = []
        for arg in exc.args:
            parts = _formatted_parts(arg)
            if parts is None:
                continue
            for part in parts:
                hit = scope._scan(part)
                if hit is not None:
                    findings.append(self.finding(
                        module, node.lineno,
                        "secret %r is interpolated into an exception "
                        "message — dispatch serializes exception text "
                        "onto the wire"
                        % (module.segment(hit) or _terminal_name(hit))))
                    break
        return findings
