"""async-discipline: coroutines must not block, and loop-owned state
stays on the loop.

The asyncio transport (PR 7) multiplexes thousands of in-flight frames
over one event loop thread.  Three mistakes silently destroy that
concurrency — none of them crash, all of them show up only as tail
latency under load:

* **A blocking call inside ``async def``** (``time.sleep``, raw socket
  I/O, ``os.fsync``, ``subprocess``) parks the *entire* loop, not one
  coroutine.  Every other connection stalls for the duration.
* **``await`` while holding a synchronous lock**: the coroutine
  suspends with the lock held, any *thread* then touching the lock
  blocks until the loop resumes this coroutine — a cross-thread
  convoy, and a deadlock when the resume needs that very thread.
  ``async with`` on an :class:`asyncio.Lock` is the correct idiom and
  is not flagged.
* **Loop-affine state touched off-loop**: the concurrency pass accepts
  the ``# Loop-affine:`` marker as proof of single-threaded access.
  This pass enforces the other half of that bargain — attributes
  mutated inside a marked function are loop-owned, so a *synchronous*,
  unmarked method mutating them executes on some caller thread and
  races the loop.  ``async def`` methods run on the loop and are fine;
  ``__init__`` runs before the loop exists; a marker in the class body
  itself declares the whole class loop-affine (one thread owns the
  instance) and exempts it.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.callgraph import terminal
from repro.analysis.concurrency import (LOOP_MARKER, _MutationWalker,
                                        _is_lock_context)
from repro.analysis.framework import Finding, Module, Rule, register

#: module-level callables that block the calling thread.
BLOCKING_CALLS = {
    "sleep": ("time",),
    "fsync": ("os",),
    "run": ("subprocess",),
    "call": ("subprocess",),
    "check_call": ("subprocess",),
    "check_output": ("subprocess",),
    "Popen": ("subprocess",),
    "socket": ("socket",),
    "create_connection": ("socket",),
}

#: socket methods that block; only flagged on sock-named receivers so
#: that e.g. ``queue.get`` lookalikes stay quiet.
BLOCKING_SOCKET_METHODS = frozenset({
    "recv", "recv_into", "recvfrom", "send", "sendall", "sendto",
    "accept", "connect", "makefile",
})


def _blocking_call(node: ast.Call) -> str | None:
    """A human-readable name when the call blocks the thread."""
    func = node.func
    name = terminal(func)
    if name in BLOCKING_CALLS:
        owners = BLOCKING_CALLS[name]
        if isinstance(func, ast.Attribute):
            receiver = terminal(func.value)
            if receiver in owners:
                return "%s.%s" % (receiver, name)
        elif isinstance(func, ast.Name) and name in ("sleep", "fsync"):
            return name       # `from time import sleep` style
        return None
    if (isinstance(func, ast.Attribute)
            and func.attr in BLOCKING_SOCKET_METHODS):
        receiver = terminal(func.value)
        if receiver and "sock" in receiver.lower():
            return "%s.%s" % (receiver, func.attr)
    return None


class _AsyncBodyWalker:
    """Walk an async function's own body — nested defs excluded, they
    have their own execution context."""

    def __init__(self) -> None:
        self.blocking: list[tuple[str, int]] = []
        self.awaits_under_lock: list[tuple[str, int]] = []

    def walk(self, node: ast.AST, lock: str | None) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, ast.With):
            held = lock
            for item in node.items:
                if _is_lock_context(item):
                    probe = item.context_expr
                    if isinstance(probe, ast.Call):
                        probe = probe.func
                    held = terminal(probe) or "lock"
            for child in node.body:
                self.walk(child, held)
            return
        if isinstance(node, ast.Await) and lock is not None:
            self.awaits_under_lock.append((lock, node.lineno))
        if isinstance(node, ast.Call):
            blocked = _blocking_call(node)
            if blocked is not None:
                self.blocking.append((blocked, node.lineno))
        for child in ast.iter_child_nodes(node):
            self.walk(child, lock)


def _mutated_attrs(func: ast.AST) -> list[tuple[str, int]]:
    """Every ``self.X`` mutation in a function body (nested defs
    excluded), as (attr, line)."""
    walker = _MutationWalker()
    for stmt in getattr(func, "body", []):
        walker.walk(stmt, False)
    return [(attr, line) for attr, line, _locked in walker.mutations]


@register
class AsyncDisciplineRule(Rule):
    id = "async-discipline"
    version = 1
    description = ("async def bodies must not block the event loop, "
                   "must not await holding a sync lock, and loop-affine "
                   "state is only mutated from the loop")

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(self._check_async_body(module, node))
            elif isinstance(node, ast.ClassDef):
                findings.extend(self._check_loop_affinity(module, node))
        return findings

    def _check_async_body(self, module: Module,
                          func: ast.AsyncFunctionDef) -> list[Finding]:
        walker = _AsyncBodyWalker()
        for stmt in func.body:
            walker.walk(stmt, None)
        findings = []
        for name, line in walker.blocking:
            findings.append(self.finding(
                module, line,
                "blocking call %s inside async def %s stalls the whole "
                "event loop — use run_in_executor or the async "
                "equivalent" % (name, func.name)))
        for lock, line in walker.awaits_under_lock:
            findings.append(self.finding(
                module, line,
                "await while holding synchronous lock %r in %s — the "
                "lock stays held across the suspension and convoys "
                "every thread that touches it; use an asyncio.Lock with "
                "`async with`" % (lock, func.name)))
        return findings

    def _check_loop_affinity(self, module: Module,
                             cls: ast.ClassDef) -> list[Finding]:
        methods = [node for node in cls.body
                   if isinstance(node, (ast.FunctionDef,
                                        ast.AsyncFunctionDef))]
        if not methods:
            return []
        class_segment = module.segment(cls)
        if not class_segment or not LOOP_MARKER.search(class_segment):
            return []      # no marker anywhere in the class
        # A marker lexically outside every method declares the whole
        # class loop-affine — nothing to cross-check.
        method_text = "".join(module.segment(m) for m in methods)
        markers_in_methods = len(LOOP_MARKER.findall(method_text))
        markers_total = len(LOOP_MARKER.findall(class_segment))
        if markers_total > markers_in_methods:
            return []
        affine: dict[str, str] = {}        # attr -> declaring method
        for method in methods:
            if method.name == "__init__":
                continue   # __init__ builds everything; not a claim
            if not LOOP_MARKER.search(module.segment(method)):
                continue
            for attr, _line in _mutated_attrs(method):
                affine.setdefault(attr, method.name)
        if not affine:
            return []
        findings = []
        for method in methods:
            if isinstance(method, ast.AsyncFunctionDef):
                continue   # coroutines run on the loop
            if method.name == "__init__":
                continue   # runs before the loop exists
            if LOOP_MARKER.search(module.segment(method)):
                continue
            for attr, line in _mutated_attrs(method):
                owner = affine.get(attr)
                if owner is not None:
                    findings.append(self.finding(
                        module, line,
                        "%s.%s is loop-affine (mutated under the "
                        "`# Loop-affine:` marker in %s) but sync method "
                        "%s mutates it from a caller thread — route the "
                        "mutation through run_coroutine_threadsafe or "
                        "call_soon_threadsafe"
                        % (cls.name, attr, owner, method.name)))
        return findings
