"""callgraph: project-wide name-based call resolution for cross-file rules.

Several passes need the same question answered: *starting from this
function, which project definitions can execution reach?*  PR 5's
wire-coverage pass answered it with a private depth-3 walk; the
interprocedural secret-flow upgrade and the wire-schema pass need the
same graph, so it lives here once.

Resolution is deliberately name-based: ``self.server.handle_store(...)``
resolves to every ``def handle_store`` in the project, regardless of
receiver type.  The analyzer has no type information (stdlib :mod:`ast`
only), and over-approximating callees errs on the side of *finding* a
guard/sink rather than missing one — the right bias for both consumers.
Traversal is breadth-first and cycle-safe with no depth cap; the graph
is memoized per :class:`Project` so every rule shares one build.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.analysis.framework import Module, Project

__all__ = ["FuncNode", "CallGraph", "for_project", "terminal"]

FunctionAST = (ast.FunctionDef, ast.AsyncFunctionDef)


def terminal(node: ast.AST) -> str | None:
    """The terminal identifier of a name or attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@dataclass
class FuncNode:
    """One function/method definition in the project."""

    module: Module
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: ast.ClassDef | None = None      # enclosing class, methods only

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def qualname(self) -> str:
        if self.cls is not None:
            return "%s:%s.%s" % (self.module.dotted, self.cls.name,
                                 self.node.name)
        return "%s:%s" % (self.module.dotted, self.node.name)

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def positional_params(self) -> list[str]:
        """Parameter names by position, ``self``/``cls`` included."""
        args = self.node.args
        return [a.arg for a in args.posonlyargs + args.args]

    def keyword_params(self) -> set[str]:
        args = self.node.args
        return {a.arg for a in args.posonlyargs + args.args
                + args.kwonlyargs}


class CallGraph:
    """Name-indexed definitions plus callee extraction and reachability."""

    def __init__(self, project: Project) -> None:
        self.functions: list[FuncNode] = []
        self.by_name: dict[str, list[FuncNode]] = {}
        self._node_index: dict[int, FuncNode] = {}
        self._callee_cache: dict[int, frozenset[str]] = {}
        for module in project.modules:
            self._collect(module, module.tree, None)

    def _collect(self, module: Module, root: ast.AST,
                 cls: ast.ClassDef | None) -> None:
        for child in ast.iter_child_nodes(root):
            if isinstance(child, ast.ClassDef):
                self._collect(module, child, child)
            elif isinstance(child, FunctionAST):
                func = FuncNode(module=module, node=child, cls=cls)
                self.functions.append(func)
                self.by_name.setdefault(child.name, []).append(func)
                self._node_index[id(child)] = func
                # Nested defs are plain functions, not methods.
                self._collect(module, child, None)

    # -- lookups ------------------------------------------------------------
    def resolve(self, name: str) -> list[FuncNode]:
        """Every definition a call to ``name`` might reach."""
        return self.by_name.get(name, [])

    def node_for(self, func_ast: ast.AST) -> FuncNode | None:
        return self._node_index.get(id(func_ast))

    def callees(self, func_ast: ast.AST) -> frozenset[str]:
        """Terminal names of every call inside a function body (nested
        defs included — their calls still run in this function's
        dynamic extent when invoked)."""
        cached = self._callee_cache.get(id(func_ast))
        if cached is not None:
            return cached
        names = set()
        for node in ast.walk(func_ast):
            if isinstance(node, ast.Call):
                name = terminal(node.func)
                if name:
                    names.add(name)
        result = frozenset(names)
        self._callee_cache[id(func_ast)] = result
        return result

    def call_sites(self, func_ast: ast.AST) -> Iterator[tuple[str,
                                                              ast.Call]]:
        """(terminal callee name, Call node) for every call in the body."""
        for node in ast.walk(func_ast):
            if isinstance(node, ast.Call):
                name = terminal(node.func)
                if name:
                    yield name, node

    # -- reachability -------------------------------------------------------
    def reachable(self, start: ast.AST) -> Iterator[ast.AST]:
        """BFS over callee names from ``start`` (inclusive), cycle-safe,
        no depth cap — yields every project definition execution might
        reach."""
        seen_ids: set[int] = set()
        seen_names: set[str] = set()
        frontier: list[ast.AST] = [start]
        while frontier:
            func = frontier.pop(0)
            if id(func) in seen_ids:
                continue
            seen_ids.add(id(func))
            yield func
            for callee in sorted(self.callees(func)):
                if callee in seen_names:
                    continue
                seen_names.add(callee)
                for definition in self.resolve(callee):
                    frontier.append(definition.node)

    @staticmethod
    def map_call_args(call: ast.Call,
                      callee: FuncNode) -> list[tuple[str, ast.AST]]:
        """Map a call site's arguments onto the callee's parameter names.

        Starred/double-starred arguments are skipped (position unknown);
        the implicit ``self``/``cls`` slot is skipped for method calls.
        """
        params = callee.positional_params()
        if callee.is_method and params and params[0] in ("self", "cls"):
            params = params[1:]
        pairs: list[tuple[str, ast.AST]] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if index < len(params):
                pairs.append((params[index], arg))
        keyword_names = callee.keyword_params()
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in keyword_names:
                pairs.append((kw.arg, kw.value))
        return pairs


def for_project(project: Project) -> CallGraph:
    """The project's call graph, built once and cached on the project."""
    graph = getattr(project, "_callgraph", None)
    if graph is None:
        graph = CallGraph(project)
        project._callgraph = graph
    return graph


def iter_functions(module: Module) -> Iterable[ast.AST]:
    for node in ast.walk(module.tree):
        if isinstance(node, FunctionAST):
            yield node
