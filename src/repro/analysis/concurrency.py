"""concurrency: shared attributes mutate under their lock, or never race.

The threaded surfaces — ``StorageServer`` (PR 1's parallel search pool),
``ReplayGuard`` (consulted from dispatch on arbitrary transport
threads), and the durable store (journal writes racing snapshots) —
follow one convention: instance state that a lock protects is *only*
mutated inside ``with self._lock``.  A single unlocked mutation of a
locked attribute is a torn-write / lost-update bug waiting for the
fault-injected schedules PR 3 produces.

The check is per class: collect every mutation of ``self.<attr>``
(assignment, augmented assignment, subscript store, or a mutating
method call like ``.append``/``.pop``/``.update``) and whether it
happened lexically inside a ``with self.<...lock...>`` block.  An
attribute mutated both inside *and* outside lock blocks is flagged at
each unlocked site.  Attributes only ever touched unlocked are fine
(single-threaded state); ``__init__`` is exempt (no aliasing yet).

Private helpers that are *always called with the lock held* declare it
with a comment — ``# Caller holds self._lock.`` — the same marker
``ReplayGuard._prune`` already carries.  The pass treats the whole
function body as locked when the marker appears.

The async transport (PR 7) adds two idioms the pass understands:

* ``async with self._lock`` (an :class:`asyncio.Lock`) is a lock
  context exactly like its synchronous twin — before PR 7 the walker
  only special-cased ``ast.With``, so async code could neither take
  credit for its locks nor be caught mutating outside them;
* state owned by an event loop is serialized *by the loop*, not by a
  lock: a function whose body carries a ``# Loop-affine: ...`` marker
  (all mutations happen on the loop thread, cross-thread access goes
  through ``run_coroutine_threadsafe``) is treated as locked, the same
  way the caller-holds marker works.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from repro.analysis.framework import Finding, Module, Rule, register

MUTATOR_METHODS = frozenset({
    "append", "add", "insert", "update", "pop", "remove", "clear",
    "extend", "setdefault", "popitem", "discard", "appendleft",
})

#: Lifecycle transitions on pooled resources (multiprocessing.Pool,
#: executors, transports).  ``self._pool.terminate()`` racing a
#: ``with self._lock: self._pool = ctx.Pool(...)`` is the same
#: lost-update shape as an unlocked ``.append`` — a worker can submit
#: to a pool another thread is tearing down.  The crypto engine (PR 6)
#: guards its pool with a lock; this teaches the pass that calling a
#: lifecycle method *is* a mutation of the attribute holding the pool.
LIFECYCLE_METHODS = frozenset({
    "close", "terminate", "join", "shutdown", "start", "cancel",
})

LOCK_NAME = re.compile(r"lock", re.IGNORECASE)
HELD_MARKER = re.compile(r"caller\s+holds\s+(self\.)?_?\w*lock",
                         re.IGNORECASE)
#: Event-loop affinity: the function's mutations all happen on the
#: owning event loop's thread, so the loop itself is the serializer.
LOOP_MARKER = re.compile(r"loop.affine", re.IGNORECASE)


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` → ``"X"`` (one level only — deeper chains are the
    contained object's problem, not this class's)."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def _is_lock_context(item: ast.withitem) -> bool:
    expr = item.context_expr
    if isinstance(expr, ast.Call):       # e.g. self._lock.acquire_timeout()
        expr = expr.func
    probe = expr
    while isinstance(probe, ast.Attribute):
        if LOCK_NAME.search(probe.attr):
            return True
        probe = probe.value
    return isinstance(probe, ast.Name) and bool(LOCK_NAME.search(probe.id))


class _MutationWalker:
    """Record (attr, line, locked?) for every self-attribute mutation."""

    def __init__(self) -> None:
        self.mutations: list[tuple[str, int, bool]] = []

    def walk(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or any(_is_lock_context(item)
                                  for item in node.items)
            for child in node.body:
                self.walk(child, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested defs have their own locking story
        self._record(node, locked)
        for child in ast.iter_child_nodes(node):
            self.walk(child, locked)

    def _record(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                self._record_target(target, node.lineno, locked)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            self._record_target(node.target, node.lineno, locked)
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and (func.attr in MUTATOR_METHODS
                         or func.attr in LIFECYCLE_METHODS)):
                attr = _self_attr(func.value)
                if attr is not None:
                    self.mutations.append((attr, node.lineno, locked))

    def _record_target(self, target: ast.AST, line: int,
                       locked: bool) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self.mutations.append((attr, line, locked))
            return
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None:
                self.mutations.append((attr, line, locked))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, line, locked)


@register
class ConcurrencyRule(Rule):
    id = "concurrency"
    description = ("instance attributes mutated under `with self._lock` "
                   "must never also mutate outside it")

    def check_module(self, module: Module) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(self, module: Module,
                     cls: ast.ClassDef) -> list[Finding]:
        locked_attrs: set[str] = set()
        unlocked: dict[str, list[tuple[int, str]]] = {}
        for func in cls.body:
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if func.name == "__init__":
                continue
            segment = module.segment(func)
            held = bool(HELD_MARKER.search(segment)
                        or LOOP_MARKER.search(segment))
            walker = _MutationWalker()
            for stmt in func.body:
                walker.walk(stmt, held)
            for attr, line, locked in walker.mutations:
                if LOCK_NAME.search(attr):
                    continue  # swapping the lock itself is out of scope
                if locked:
                    locked_attrs.add(attr)
                else:
                    unlocked.setdefault(attr, []).append((line, func.name))
        findings = []
        for attr in sorted(locked_attrs & set(unlocked)):
            for line, func_name in unlocked[attr]:
                findings.append(self.finding(
                    module, line,
                    "%s.%s is mutated under `with ...lock` elsewhere but "
                    "%s mutates it without the lock — either take the "
                    "lock or mark the helper `# Caller holds "
                    "self._lock.`" % (cls.name, attr, func_name)))
        return findings
