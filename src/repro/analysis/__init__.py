"""hcpplint — static enforcement of HCPP's security/layering invariants.

Importing this package registers the five passes:

* ``secret-flow`` — secrets never reach logs, exception text, repr, or
  plaintext journal/snapshot writes.
* ``crypto-hygiene`` — constant-time MAC comparison, no ``random``
  outside fault injection, no literal IVs/nonces.
* ``wire-coverage`` — every mutating opcode is dispatched, replay-
  guarded, and journaled.
* ``layering`` — declarative per-package import/call contracts.
* ``concurrency`` — lock-protected attributes never mutate unlocked.

Entry point: ``tools/hcpplint.py``.  Library surface:
:class:`Analyzer`, :class:`Baseline`, :func:`all_rules`.
"""

from repro.analysis.framework import (AnalysisReport, Analyzer, Baseline,
                                      Finding, Module, Project, Rule,
                                      all_rules, analyze_source, get_rule,
                                      register, rule_ids)

# Importing the rule modules is what populates the registry.
from repro.analysis import concurrency as _concurrency        # noqa: F401
from repro.analysis import crypto_hygiene as _crypto_hygiene  # noqa: F401
from repro.analysis import layering as _layering              # noqa: F401
from repro.analysis import secret_flow as _secret_flow        # noqa: F401
from repro.analysis import wire_coverage as _wire_coverage    # noqa: F401

__all__ = ["AnalysisReport", "Analyzer", "Baseline", "Finding", "Module",
           "Project", "Rule", "all_rules", "analyze_source", "get_rule",
           "register", "rule_ids"]
