"""hcpplint — static enforcement of HCPP's security/layering invariants.

Importing this package registers the seven passes:

* ``secret-flow`` — secrets never reach logs, exception text, repr, or
  plaintext journal/snapshot writes; v2 traces flows through returns,
  arguments, and attribute stores on the project call graph.
* ``crypto-hygiene`` — constant-time MAC comparison, no ``random``
  outside fault injection, no literal IVs/nonces.
* ``wire-coverage`` — every mutating opcode is dispatched and replay-
  guarded along its full call chain.
* ``wire-schema`` — the opcode registry, dispatch arities, write-lock +
  K_FRAME journaling discipline, federation sealing, and router
  forwarding all agree, per opcode.
* ``async-discipline`` — coroutines never block the event loop, never
  await under a sync lock, and loop-affine state stays on the loop.
* ``layering`` — declarative per-package import/call contracts.
* ``concurrency`` — lock-protected attributes never mutate unlocked.

Entry point: ``tools/hcpplint.py``.  Library surface:
:class:`Analyzer`, :class:`Baseline`, :func:`all_rules`, plus
:mod:`repro.analysis.cache` (incremental re-runs) and
:mod:`repro.analysis.sarif` (SARIF 2.1.0 emission).
"""

from repro.analysis.framework import (AnalysisReport, Analyzer, Baseline,
                                      Finding, Module, Project, Rule,
                                      all_rules, analyze_source, get_rule,
                                      register, rule_ids)

# Importing the rule modules is what populates the registry.
from repro.analysis import async_discipline as _async_discipline  # noqa: F401
from repro.analysis import concurrency as _concurrency        # noqa: F401
from repro.analysis import crypto_hygiene as _crypto_hygiene  # noqa: F401
from repro.analysis import layering as _layering              # noqa: F401
from repro.analysis import secret_flow as _secret_flow        # noqa: F401
from repro.analysis import wire_coverage as _wire_coverage    # noqa: F401
from repro.analysis import wire_schema as _wire_schema        # noqa: F401

__all__ = ["AnalysisReport", "Analyzer", "Baseline", "Finding", "Module",
           "Project", "Rule", "all_rules", "analyze_source", "get_rule",
           "register", "rule_ids"]
