"""wire-coverage: every mutating opcode is journaled and replay-guarded.

PR 4's durability contract is *generic*: ``DurableEndpoint.handle_frame``
journals any successful frame whose opcode is in the endpoint class's
``MUTATING_OPS``.  That genericity is also its weak point — nothing
breaks visibly when

* an opcode is added to ``MUTATING_OPS`` but never registered in the
  endpoint's ``_ops`` dispatch table (it can never be handled, hence
  never journaled — the typo'd constant just dangles), or
* a *mutating* opcode's handler chain never consults a
  :class:`ReplayGuard` (a duplicated delivery from a faulty network —
  PR 3 injects exactly these — applies the mutation twice).

This pass checks both statically.  Guard consultation is traced through
the shared project call graph (:mod:`repro.analysis.callgraph`): from
the opcode's ``_op_*`` handler, callee names are resolved project-wide
(``self.server.handle_store`` → any ``def handle_store``) with no depth
cap — the PR-5 version stopped three calls deep, which the deeper
router → federation → server chains outgrew.  A consultation is a call
to ``open_envelope`` that passes a guard (4th positional argument or
``guard=``), or a ``.seen()`` / ``.check_and_remember()`` call on a
guard-named receiver.

The companion durable-journal check (``store/durable.py`` appends
``K_FRAME`` keyed on ``MUTATING_OPS``) moved to the wire-schema pass,
which owns the registry-wide contracts.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis import callgraph
from repro.analysis.framework import Finding, Module, Project, Rule, register

DISPATCH_MODULES = ("repro.core.dispatch",)
GUARD_METHODS = frozenset({"seen", "check_and_remember"})


def _terminal(node: ast.AST) -> str | None:
    return callgraph.terminal(node)


def _opcode_label(node: ast.AST, module: Module) -> str:
    """``wire.OP_STORE`` → ``OP_STORE`` (or the source text)."""
    name = _terminal(node)
    if name is not None:
        return name
    return module.segment(node) or "<opcode>"


class _EndpointClass:
    """One class defining MUTATING_OPS + an _ops dispatch table."""

    def __init__(self, module: Module, node: ast.ClassDef) -> None:
        self.module = module
        self.node = node
        self.mutating: dict[str, int] = {}       # opcode label -> line
        self.ops: dict[str, str] = {}            # opcode label -> method
        self._collect()

    def _collect(self) -> None:
        for item in self.node.body:
            if (isinstance(item, ast.Assign)
                    and any(_terminal(t) == "MUTATING_OPS"
                            for t in item.targets)):
                for call in ast.walk(item.value):
                    if isinstance(call, (ast.Name, ast.Attribute)):
                        label = _terminal(call)
                        if label and label.startswith("OP_"):
                            self.mutating[label] = item.lineno
        for func in ast.walk(self.node):
            if not isinstance(func, ast.FunctionDef):
                continue
            for stmt in ast.walk(func):
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if (isinstance(target, ast.Attribute)
                            and target.attr == "_ops"
                            and isinstance(stmt.value, ast.Dict)):
                        for key, value in zip(stmt.value.keys,
                                              stmt.value.values):
                            self._add_op(key, value)
                    elif (isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Attribute)
                            and target.value.attr == "_ops"):
                        self._add_op(target.slice, stmt.value)

    def _add_op(self, key: ast.AST | None, value: ast.AST) -> None:
        if key is None:
            return
        label = _terminal(key)
        method = _terminal(value)
        if label and method:
            self.ops[label] = method


def _guard_consulted(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        name = _terminal(node.func)
        if name == "open_envelope":
            if len(node.args) >= 4 and not (
                    isinstance(node.args[3], ast.Constant)
                    and node.args[3].value is None):
                return True
            if any(kw.arg == "guard" for kw in node.keywords):
                return True
        if name in GUARD_METHODS and isinstance(node.func, ast.Attribute):
            chain = []
            probe = node.func.value
            while True:
                part = _terminal(probe)
                if part:
                    chain.append(part.lower())
                if isinstance(probe, ast.Attribute):
                    probe = probe.value
                    continue
                break
            if any("guard" in part for part in chain):
                return True
    return False


def _chain_has_guard(project: Project, start: ast.FunctionDef) -> bool:
    graph = callgraph.for_project(project)
    return any(_guard_consulted(func) for func in graph.reachable(start))


@register
class WireCoverageRule(Rule):
    id = "wire-coverage"
    version = 2          # v2: shared call graph, no depth cap
    cross_file = True
    description = ("every MUTATING_OPS opcode is dispatched and its "
                   "handler chain consults a ReplayGuard (traced through "
                   "the project call graph)")

    def finish(self, project: Project) -> Iterable[Finding]:
        findings: list[Finding] = []
        endpoints: list[_EndpointClass] = []
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    endpoint = _EndpointClass(module, node)
                    if endpoint.mutating:
                        endpoints.append(endpoint)
        for endpoint in endpoints:
            findings.extend(self._check_endpoint(project, endpoint))
        return findings

    def _check_endpoint(self, project: Project,
                        endpoint: _EndpointClass) -> list[Finding]:
        findings = []
        for label, line in sorted(endpoint.mutating.items()):
            method = endpoint.ops.get(label)
            if method is None:
                findings.append(self.finding(
                    endpoint.module, line,
                    "%s lists %s in MUTATING_OPS but never registers a "
                    "handler for it in _ops — the opcode can never be "
                    "handled, hence never journaled"
                    % (endpoint.node.name, label)))
                continue
            handler = self._method(endpoint, method)
            if handler is None:
                findings.append(self.finding(
                    endpoint.module, line,
                    "%s._ops maps %s to %r which is not defined on the "
                    "class" % (endpoint.node.name, label, method)))
                continue
            if not _chain_has_guard(project, handler):
                findings.append(self.finding(
                    endpoint.module, handler.lineno,
                    "mutating opcode %s is handled by %s.%s without "
                    "consulting a ReplayGuard anywhere in its call "
                    "chain — a duplicated delivery applies the mutation "
                    "twice" % (label, endpoint.node.name, method)))
        return findings

    @staticmethod
    def _method(endpoint: _EndpointClass,
                name: str) -> ast.FunctionDef | None:
        for node in ast.walk(endpoint.node):
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
        return None
