"""Incremental analysis cache: per-file sha256 → findings.

A full hcpplint run parses ~140 files and walks each AST once per rule;
the interprocedural passes added in v2 roughly double that work.  The
cache keeps warm re-runs inside the <10s budget by skipping everything
that provably cannot have changed:

* **Per-file rules** (``Rule.cross_file`` is False — the rule's
  findings depend only on the one file) cache under
  ``(rule id, rule version, file sha256)``.  An edited file misses for
  every rule; an untouched file replays its stored findings without
  even being parsed, unless a cross-file rule forces the parse anyway.
* **Cross-file rules** (wire-coverage, wire-schema, layering, the
  interprocedural secret-flow layer) cache under a *project
  fingerprint* — the sha256 over every (path, file sha) pair — because
  any file can change their verdict.  One edit re-runs them all, which
  is exactly the correctness contract.
* Bumping ``Rule.version`` or :data:`CACHE_SCHEMA` (the framework
  version) invalidates the matching entries wholesale; a corrupt or
  alien cache file is silently discarded and rebuilt.

Only *raw* findings are cached — the baseline is applied at report
time, so editing the baseline never requires re-analysis.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable

from repro.analysis.framework import Finding, Rule

__all__ = ["AnalysisCache", "CACHE_SCHEMA", "file_sha", "project_key"]

#: Bump on any framework-level change that alters what findings mean
#: (Finding fields, baseline semantics, cache layout).
CACHE_SCHEMA = 1

#: A cross-file rule keeps its last few project fingerprints so that
#: alternating full and ``--since`` runs don't evict each other.
PROJECT_KEYS_KEPT = 4


def file_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def project_key(entries: Iterable[tuple[str, str]]) -> str:
    """Fingerprint of the analyzed file set: sorted (path, sha) pairs."""
    digest = hashlib.sha256()
    for path, sha in sorted(entries):
        digest.update(path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(sha.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def _dump(findings: Iterable[Finding]) -> list[dict]:
    return [vars(f) for f in findings]


def _load_findings(raw: list[dict]) -> list[Finding]:
    return [Finding(**entry) for entry in raw]


class AnalysisCache:
    """JSON-backed findings cache, one file per repo checkout."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._dirty = False
        self._data = self._read()

    def _read(self) -> dict:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return self._empty()
        if (not isinstance(data, dict)
                or data.get("schema") != CACHE_SCHEMA):
            return self._empty()
        if not isinstance(data.get("files"), dict) or not isinstance(
                data.get("project"), dict):
            return self._empty()
        return data

    @staticmethod
    def _empty() -> dict:
        return {"schema": CACHE_SCHEMA, "files": {}, "project": {}}

    # -- per-file rules -----------------------------------------------------
    def file_findings(self, rule: Rule, path: str,
                      sha: str) -> list[Finding] | None:
        entry = self._data["files"].get(path, {}).get(rule.id)
        if (not entry or entry.get("sha") != sha
                or entry.get("v") != rule.version):
            return None
        try:
            return _load_findings(entry["findings"])
        except (KeyError, TypeError):
            return None

    def store_file(self, rule: Rule, path: str, sha: str,
                   findings: list[Finding]) -> None:
        slot = self._data["files"].setdefault(path, {})
        slot[rule.id] = {"sha": sha, "v": rule.version,
                         "findings": _dump(findings)}
        self._dirty = True

    # -- cross-file rules ---------------------------------------------------
    def project_findings(self, rule: Rule,
                         key: str) -> list[Finding] | None:
        entry = self._data["project"].get(rule.id)
        if not entry or entry.get("v") != rule.version:
            return None
        raw = entry.get("keys", {}).get(key)
        if raw is None:
            return None
        try:
            return _load_findings(raw)
        except TypeError:
            return None

    def store_project(self, rule: Rule, key: str,
                      findings: list[Finding]) -> None:
        entry = self._data["project"].get(rule.id)
        if not entry or entry.get("v") != rule.version:
            entry = {"v": rule.version, "keys": {}}
            self._data["project"][rule.id] = entry
        keys = entry["keys"]
        keys.pop(key, None)          # re-insert to refresh recency
        keys[key] = _dump(findings)
        while len(keys) > PROJECT_KEYS_KEPT:
            keys.pop(next(iter(keys)))
        self._dirty = True

    # -- persistence --------------------------------------------------------
    def save(self) -> None:
        if not self._dirty:
            return
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(self._data, fh, separators=(",", ":"))
            os.replace(tmp, self.path)
        except OSError:
            return                    # a cache is never worth failing for
        self._dirty = False
