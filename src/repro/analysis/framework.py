"""hcpplint core: rule registry, project model, baseline, reporting.

HCPP's security argument rests on conventions that no type checker sees:
secrets stay out of logs and exception text, MAC comparisons run in
constant time, mutating opcodes are journaled and replay-guarded, layers
import only downward, shared state mutates under its lock.  This package
machine-checks those conventions.  The framework here is deliberately
small and dependency-free (stdlib :mod:`ast` only — the analyzer must
sit below every layer it judges, so it imports nothing from ``repro``).

Concepts
--------
* :class:`Module` — one parsed source file (path, source, AST), shared
  by every rule so the file is read and parsed exactly once.
* :class:`Rule` — a registered pass.  ``check_module`` runs per file;
  ``finish`` runs once after all files (for cross-file rules like
  wire-coverage) with the whole :class:`Project` in hand.
* :class:`Finding` — rule id, severity, ``path:line``, message.
* :class:`Baseline` — accepted findings with a written justification.
  A baseline entry matches on (rule, path, message) — *not* line
  numbers, which churn — so a suppression survives unrelated edits but
  dies the moment the flagged code changes its meaning.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = ["Finding", "Module", "Project", "Rule", "Baseline",
           "register", "rule_ids", "get_rule", "all_rules",
           "Analyzer", "AnalysisReport"]

SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: where, which rule, and why it matters."""

    rule: str
    path: str          # repo-relative, forward slashes
    line: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule,
                                   self.message)

    def key(self) -> tuple[str, str, str]:
        """Baseline identity: stable across unrelated line churn."""
        return (self.rule, self.path, self.message)


@dataclass
class Module:
    """One parsed source file."""

    path: str          # repo-relative, forward slashes
    source: str
    tree: ast.AST
    #: memoized source lines for segment(); splitting the whole file on
    #: every call dominated analyzer runtime before this cache.
    _lines: list | None = field(default=None, repr=False)

    @property
    def dotted(self) -> str:
        """``src/repro/core/wire.py`` → ``repro.core.wire``."""
        path = self.path
        if path.startswith("src/"):
            path = path[len("src/"):]
        if path.endswith(".py"):
            path = path[:-3]
        if path.endswith("/__init__"):
            path = path[:-len("/__init__")]
        return path.replace("/", ".")

    def segment(self, node: ast.AST) -> str:
        """Source text of a node (empty string when unavailable)."""
        lineno = getattr(node, "lineno", None)
        end_lineno = getattr(node, "end_lineno", None)
        col = getattr(node, "col_offset", None)
        end_col = getattr(node, "end_col_offset", None)
        if None in (lineno, end_lineno, col, end_col):
            return ""
        if self._lines is None:
            self._lines = self.source.splitlines(keepends=True)
        lines = self._lines
        if end_lineno > len(lines):
            return ""
        if lineno == end_lineno:
            return lines[lineno - 1][col:end_col]
        picked = lines[lineno - 1:end_lineno]
        picked[0] = picked[0][col:]
        picked[-1] = picked[-1][:end_col]
        return "".join(picked)


@dataclass
class Project:
    """All modules under analysis, indexed for cross-file rules."""

    modules: list[Module] = field(default_factory=list)
    #: lazy name -> [(module, def)] index; built on first lookup.
    _function_index: dict | None = field(default=None, repr=False)
    #: memoized CallGraph (built by callgraph.for_project on demand).
    _callgraph: object | None = field(default=None, repr=False)

    def by_dotted(self, dotted: str) -> Module | None:
        for module in self.modules:
            if module.dotted == dotted:
                return module
        return None

    def functions_named(self, name: str) -> list[tuple[Module,
                                                       ast.FunctionDef]]:
        """Every function/method definition with this name, anywhere."""
        if self._function_index is None:
            index: dict[str, list] = {}
            for module in self.modules:
                for node in ast.walk(module.tree):
                    if isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        index.setdefault(node.name, []).append(
                            (module, node))
            self._function_index = index
        return self._function_index.get(name, [])


class Rule:
    """One analysis pass.  Subclasses set ``id``/``description`` and
    override :meth:`check_module` and/or :meth:`finish`."""

    id: str = ""
    description: str = ""
    severity: str = "error"
    #: bump when the rule's logic changes — cached findings keyed on the
    #: old version are discarded (see :mod:`repro.analysis.cache`).
    version: int = 1
    #: True when findings depend on files beyond the one being checked
    #: (the rule does real work in ``finish``).  Cross-file rules cache
    #: per project fingerprint, per-file rules per file hash.
    cross_file: bool = False

    def check_module(self, module: Module) -> "Iterable[Finding]":
        return ()

    def finish(self, project: Project) -> "Iterable[Finding]":
        return ()

    def finding(self, module_or_path, line: int, message: str) -> Finding:
        path = (module_or_path.path if isinstance(module_or_path, Module)
                else module_or_path)
        return Finding(rule=self.id, path=path, line=line, message=message,
                       severity=self.severity)


_REGISTRY: dict[str, Callable[[], Rule]] = {}


def register(factory: Callable[[], Rule]) -> Callable[[], Rule]:
    """Class decorator: make a rule discoverable by id."""
    rule_id = factory.id
    if not rule_id:
        raise ValueError("rule %r has no id" % factory)
    if rule_id in _REGISTRY:
        raise ValueError("duplicate rule id %r" % rule_id)
    _REGISTRY[rule_id] = factory
    return factory


def rule_ids() -> list[str]:
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise KeyError("unknown rule %r (known: %s)"
                       % (rule_id, ", ".join(rule_ids())))


def all_rules() -> list[Rule]:
    return [_REGISTRY[rule_id]() for rule_id in rule_ids()]


class Baseline:
    """Accepted findings, each with a human-written justification.

    File format (JSON)::

        {"entries": [{"rule": ..., "path": ..., "message": ...,
                      "reason": "why this is acceptable"}, ...]}

    Every entry must carry a non-empty ``reason`` — an unexplained
    suppression is itself an error.  :meth:`unused` reports entries that
    matched nothing, so stale suppressions get cleaned out instead of
    silently masking future regressions at the same site.

    Matching prefers the exact repo-relative path; when no entry matches
    exactly, an entry whose basename and (rule, message) agree still
    suppresses.  A file *rename* inside ``src/`` therefore doesn't turn
    every suppression at once into a failure — moving code is routine,
    and the (rule, message) pair already pins the finding's meaning.
    Two same-named files with the same finding are indistinguishable to
    the fallback; the exact-path entry wins whenever one exists.
    """

    def __init__(self, entries: list[dict] | None = None) -> None:
        self.entries = entries or []
        for entry in self.entries:
            for field_name in ("rule", "path", "message", "reason"):
                if not entry.get(field_name):
                    raise ValueError(
                        "baseline entry %r is missing %r — every "
                        "suppression needs a justification"
                        % (entry, field_name))
        self._hits: set[int] = set()

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        return cls(data.get("entries", []))

    def suppresses(self, finding: Finding) -> bool:
        for index, entry in enumerate(self.entries):
            if (entry["rule"] == finding.rule
                    and entry["path"] == finding.path
                    and entry["message"] == finding.message):
                self._hits.add(index)
                return True
        basename = finding.path.rsplit("/", 1)[-1]
        for index, entry in enumerate(self.entries):
            if (entry["rule"] == finding.rule
                    and entry["path"].rsplit("/", 1)[-1] == basename
                    and entry["message"] == finding.message):
                self._hits.add(index)
                return True
        return False

    def unused(self, paths: "set[str] | None" = None,
               rules: "set[str] | None" = None) -> list[dict]:
        """Entries that matched nothing.  A partial run (subset of files
        or rules) only judges entries it could have exercised."""
        stale = []
        for index, entry in enumerate(self.entries):
            if index in self._hits:
                continue
            if paths is not None and entry["path"] not in paths:
                continue
            if rules is not None and entry["rule"] not in rules:
                continue
            stale.append(entry)
        return stale


@dataclass
class AnalysisReport:
    """The outcome of one analyzer run."""

    findings: list[Finding]          # not suppressed — these fail the build
    suppressed: list[Finding]        # matched a baseline entry
    unused_baseline: list[dict]      # stale suppressions (also a failure)
    files: int
    rules: list[str]
    elapsed_s: float

    @property
    def clean(self) -> bool:
        return not self.findings and not self.unused_baseline

    def to_json(self) -> str:
        return json.dumps({
            "clean": self.clean,
            "files": self.files,
            "rules": self.rules,
            "elapsed_s": round(self.elapsed_s, 3),
            "findings": [vars(f) for f in self.findings],
            "suppressed": [vars(f) for f in self.suppressed],
            "unused_baseline": self.unused_baseline,
        }, indent=2)

    def to_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        for entry in self.unused_baseline:
            lines.append("baseline: unused entry for [%s] %s — remove it"
                         % (entry["rule"], entry["path"]))
        tail = ("hcpplint: %d finding(s), %d suppressed, %d file(s), "
                "%.2fs" % (len(self.findings), len(self.suppressed),
                           self.files, self.elapsed_s))
        lines.append(tail)
        return "\n".join(lines)


DEFAULT_EXCLUDES = ("*/__pycache__/*",)


def _iter_sources(root: str, targets: list[str]) -> list[str]:
    paths: list[str] = []
    for target in targets:
        absolute = os.path.join(root, target)
        if os.path.isfile(absolute):
            paths.append(absolute)
            continue
        for dirpath, _dirnames, filenames in os.walk(absolute):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    paths.append(os.path.join(dirpath, filename))
    cleaned = []
    for path in sorted(set(paths)):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if any(fnmatch.fnmatch("/" + rel, pattern) or
               fnmatch.fnmatch(rel, pattern)
               for pattern in DEFAULT_EXCLUDES):
            continue
        cleaned.append(path)
    return cleaned


class Analyzer:
    """Parse once, run many rules, apply the baseline."""

    def __init__(self, root: str, rules: list[Rule] | None = None,
                 baseline: Baseline | None = None) -> None:
        self.root = os.path.abspath(root)
        self.rules = rules if rules is not None else all_rules()
        self.baseline = baseline or Baseline()

    def load(self, targets: list[str]) -> Project:
        project = Project()
        for path in _iter_sources(self.root, targets):
            rel = os.path.relpath(path, self.root).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=rel)
            project.modules.append(Module(path=rel, source=source,
                                          tree=tree))
        return project

    def run(self, targets: list[str],
            cache: "object | None" = None) -> AnalysisReport:
        """Analyze ``targets``; with a cache (duck-typed
        :class:`repro.analysis.cache.AnalysisCache`) unchanged files and
        unchanged project fingerprints replay stored findings."""
        started = time.monotonic()
        if cache is None:
            project = self.load(targets)
            return self.run_project(project, started=started)
        return self._run_cached(targets, cache, started)

    def _run_cached(self, targets: list[str], cache,
                    started: float) -> AnalysisReport:
        import hashlib
        sources: list[tuple[str, str, str]] = []   # (rel, source, sha)
        for path in _iter_sources(self.root, targets):
            rel = os.path.relpath(path, self.root).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
            sources.append((rel, source, sha))
        fingerprint_key = None
        per_file = [r for r in self.rules if not r.cross_file]
        cross = [r for r in self.rules if r.cross_file]
        if cross:
            digest = hashlib.sha256()
            for rel, _source, sha in sorted(
                    (r, s, h) for r, s, h in sources):
                digest.update(("%s\x00%s\n" % (rel, sha)).encode("utf-8"))
            fingerprint_key = digest.hexdigest()
        cross_missing = [
            r for r in cross
            if cache.project_findings(r, fingerprint_key) is None]
        file_missing: dict[str, list[Rule]] = {}
        for rel, _source, sha in sources:
            need = [r for r in per_file
                    if cache.file_findings(r, rel, sha) is None]
            if need:
                file_missing[rel] = need
        # Parse only what the misses require: everything when any
        # cross-file rule must re-run, just the edited files otherwise.
        modules: dict[str, Module] = {}
        if cross_missing:
            to_parse = [rel for rel, _s, _h in sources]
        else:
            to_parse = sorted(file_missing)
        by_rel = {rel: (source, sha) for rel, source, sha in sources}
        for rel in to_parse:
            source, _sha = by_rel[rel]
            modules[rel] = Module(path=rel, source=source,
                                  tree=ast.parse(source, filename=rel))
        collected: list[Finding] = []
        for rel, _source, sha in sources:
            for rule in per_file:
                found = cache.file_findings(rule, rel, sha)
                if found is None:
                    found = list(rule.check_module(modules[rel]))
                    cache.store_file(rule, rel, sha, found)
                collected.extend(found)
        if cross:
            project = None
            if cross_missing:
                project = Project(modules=[modules[rel]
                                           for rel, _s, _h in sources])
            for rule in cross:
                found = cache.project_findings(rule, fingerprint_key)
                if found is None:
                    found = []
                    for module in project.modules:
                        found.extend(rule.check_module(module))
                    found.extend(rule.finish(project))
                    cache.store_project(rule, fingerprint_key, found)
                collected.extend(found)
        cache.save()
        return self._report(collected,
                            paths={rel for rel, _s, _h in sources},
                            files=len(sources), started=started)

    def run_project(self, project: Project,
                    started: float | None = None) -> AnalysisReport:
        if started is None:
            started = time.monotonic()
        collected: list[Finding] = []
        for rule in self.rules:
            for module in project.modules:
                collected.extend(rule.check_module(module))
            collected.extend(rule.finish(project))
        return self._report(
            collected,
            paths={module.path for module in project.modules},
            files=len(project.modules), started=started)

    def _report(self, collected: list[Finding], paths: set[str],
                files: int, started: float) -> AnalysisReport:
        collected.sort(key=lambda f: (f.path, f.line, f.rule))
        kept, suppressed = [], []
        for finding in collected:
            if self.baseline.suppresses(finding):
                suppressed.append(finding)
            else:
                kept.append(finding)
        return AnalysisReport(
            findings=kept, suppressed=suppressed,
            unused_baseline=self.baseline.unused(
                paths=paths, rules={rule.id for rule in self.rules}),
            files=files,
            rules=[rule.id for rule in self.rules],
            elapsed_s=time.monotonic() - started)


def analyze_source(source: str, rule: Rule,
                   path: str = "src/repro/fixture.py") -> list[Finding]:
    """Run one rule over an in-memory snippet (the test harness)."""
    module = Module(path=path, source=source,
                    tree=ast.parse(source, filename=path))
    project = Project(modules=[module])
    findings = list(rule.check_module(module))
    findings.extend(rule.finish(project))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings
