"""wire-schema: the opcode registry, dispatch tables, and frame builders
must agree — per opcode, project-wide.

PR 8's security review found its HIGH bugs *between* layers: an
internal scatter leg built without a federation seal, a merge handler
that trusted unverified chunks.  Each individual file looked fine; the
contract they jointly violated lived nowhere.  This pass makes that
contract a machine-checked schema, cross-referencing four artifacts it
discovers in the project:

* the **opcode registry** — module-level ``OP_* = b"..."`` assignments
  (in the real tree, all of them in ``core/wire.py``);
* **dispatch tables** — ``self._ops = {OP_X: self._op_x, ...}`` (plus
  subscript registrations) and their ``MUTATING_OPS`` declarations;
* **frame builders** — every ``make_frame(OP_X, ...)`` /
  ``seal_internal_frame(key, OP_X, ...)`` call site;
* **router tables** — ``self._routes = {OP_X: ...}``.

Checks, per opcode: two opcodes must not share wire bytes; a registered
opcode must be served by some ``_ops``/``_routes`` table; every build
site's operand count must match the handler's ``_expect`` arity (sealed
frames carry one extra tag field; handlers that branch on
``len(fields)`` or iterate over the operand list are variadic and
exempt); an opcode that is ever *sealed* is federation-internal — its
handlers must call ``open_internal_frame`` in their first statement,
before any state is touched; a class declaring ``MUTATING_OPS`` must
run a ``handle_frame`` (own or inherited) that serializes mutating
opcodes under a ``_write_lock``; ``store/durable.py`` must journal
``K_FRAME`` records keyed on ``MUTATING_OPS`` membership (moved here
from wire-coverage — it is a registry-wide contract, not a replay
one); and a router's ``_routes`` must forward every client-facing
opcode an internal-serving endpoint exposes.

Every check is discovery-gated: when a partial run (``--since``, test
fixtures) lacks one of the artifacts, the checks needing it stay quiet
instead of guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.callgraph import terminal
from repro.analysis.framework import Finding, Module, Project, Rule, register
from repro.analysis.wire_coverage import _EndpointClass

DISPATCH_MODULE = "repro.core.dispatch"
DURABLE_MODULE = "repro.store.durable"


@dataclass
class _Registry:
    """Everything the pass discovers, before cross-checking."""

    #: opcode label -> (module, line, wire bytes or None)
    opcodes: dict[str, tuple[Module, int, bytes | None]] = field(
        default_factory=dict)
    #: endpoint classes with an _ops table (any, not just mutating)
    endpoints: list[tuple[Module, _EndpointClass]] = field(
        default_factory=list)
    #: router classes: (module, class node, routed labels)
    routers: list[tuple[Module, ast.ClassDef, dict[str, int]]] = field(
        default_factory=list)
    #: (kind, label, operand count, module, line); kind is make|seal
    build_sites: list[tuple[str, str, int, "Module", int]] = field(
        default_factory=list)
    #: labels ever passed to seal_internal_frame / open_internal_frame
    internal: set[str] = field(default_factory=set)


def _collect(project: Project) -> _Registry:
    reg = _Registry()
    for module in project.modules:
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    name = terminal(target)
                    if (name and name.startswith("OP_")
                            and name not in reg.opcodes):
                        value = (node.value.value
                                 if isinstance(node.value, ast.Constant)
                                 and isinstance(node.value.value, bytes)
                                 else None)
                        reg.opcodes[name] = (module, node.lineno, value)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                endpoint = _EndpointClass(module, node)
                if endpoint.ops:
                    reg.endpoints.append((module, endpoint))
                routes = _routes_table(node)
                if routes:
                    reg.routers.append((module, node, routes))
            elif isinstance(node, ast.Call):
                _collect_call(reg, module, node)
    return reg


def _routes_table(cls: ast.ClassDef) -> dict[str, int]:
    routes: dict[str, int] = {}
    for stmt in ast.walk(cls):
        if not isinstance(stmt, ast.Assign):
            continue
        for target in stmt.targets:
            if (isinstance(target, ast.Attribute)
                    and target.attr == "_routes"
                    and isinstance(stmt.value, ast.Dict)):
                for key in stmt.value.keys:
                    label = terminal(key)
                    if label and label.startswith("OP_"):
                        routes[label] = stmt.lineno
            elif (isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "_routes"):
                label = terminal(target.slice)
                if label and label.startswith("OP_"):
                    routes[label] = stmt.lineno
    return routes


def _collect_call(reg: _Registry, module: Module, call: ast.Call) -> None:
    name = terminal(call.func)
    if name == "make_frame" and call.args:
        label = terminal(call.args[0])
        if label and label.startswith("OP_"):
            operands = call.args[1:]
            if not any(isinstance(a, ast.Starred) for a in operands):
                reg.build_sites.append(("make", label, len(operands),
                                        module, call.lineno))
    elif name == "seal_internal_frame" and len(call.args) >= 2:
        label = terminal(call.args[1])
        if label and label.startswith("OP_"):
            reg.internal.add(label)
            operands = call.args[2:]
            if not any(isinstance(a, ast.Starred) for a in operands):
                reg.build_sites.append(("seal", label, len(operands),
                                        module, call.lineno))
    elif name == "open_internal_frame" and len(call.args) >= 2:
        label = terminal(call.args[1])
        if label and label.startswith("OP_"):
            reg.internal.add(label)


def _handler_def(endpoint: _EndpointClass,
                 method: str) -> ast.FunctionDef | None:
    for node in ast.walk(endpoint.node):
        if isinstance(node, (ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            if node.name == method:
                return node
    return None


def _fields_param(handler: ast.FunctionDef) -> str | None:
    """The operand-list parameter: first positional after self/cls."""
    params = [a.arg for a in handler.args.posonlyargs + handler.args.args]
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    return params[0] if params else None


def _handler_arity(handler: ast.FunctionDef) -> int | None:
    """The operand count a handler demands, or None when variadic."""
    fields = _fields_param(handler)
    if fields is None:
        return None
    counts: set[int] = set()
    for node in ast.walk(handler):
        if isinstance(node, ast.For) and terminal(node.iter) == fields:
            return None                       # iterates the operand list
        if not isinstance(node, ast.Call):
            continue
        name = terminal(node.func)
        if (name == "len" and node.args
                and terminal(node.args[0]) == fields):
            return None                       # branches on operand count
        if (name == "_expect" and len(node.args) >= 2
                and terminal(node.args[0]) == fields
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, int)):
            counts.add(node.args[1].value)
    if len(counts) == 1:
        return counts.pop()
    return None


def _first_statement_opens_frame(handler: ast.FunctionDef) -> bool:
    body = list(handler.body)
    while body and (isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
        body.pop(0)                           # docstring
    if not body:
        return False
    for node in ast.walk(body[0]):
        if (isinstance(node, ast.Call)
                and terminal(node.func) == "open_internal_frame"):
            return True
    return False


@register
class WireSchemaRule(Rule):
    id = "wire-schema"
    version = 1
    cross_file = True
    description = ("every registry opcode is dispatched with matching "
                   "operand arity, mutating opcodes take the write lock "
                   "and journal K_FRAME, sealed opcodes verify "
                   "open_internal_frame first, and the router forwards "
                   "all client-facing opcodes")

    def finish(self, project: Project) -> Iterable[Finding]:
        reg = _collect(project)
        findings: list[Finding] = []
        findings.extend(self._check_duplicate_bytes(reg))
        findings.extend(self._check_dispatched(project, reg))
        findings.extend(self._check_arity(reg))
        findings.extend(self._check_internal_sealing(reg))
        findings.extend(self._check_write_lock(project))
        findings.extend(self._check_durable(project))
        findings.extend(self._check_router(reg))
        return findings

    # -- registry ----------------------------------------------------------
    def _check_duplicate_bytes(self, reg: _Registry) -> list[Finding]:
        findings = []
        by_value: dict[bytes, str] = {}
        for label, (module, line, value) in sorted(reg.opcodes.items()):
            if value is None:
                continue
            other = by_value.get(value)
            if other is not None:
                findings.append(self.finding(
                    module, line,
                    "opcode %s reuses the wire byte value of %s — frames "
                    "become ambiguous at dispatch" % (label, other)))
            else:
                by_value[value] = label
        return findings

    def _check_dispatched(self, project: Project,
                          reg: _Registry) -> list[Finding]:
        if not reg.endpoints:
            return []                          # no dispatch tables in scope
        if (len(project.modules) > 1
                and project.by_dotted(DISPATCH_MODULE) is None):
            return []                          # partial run without dispatch
        served: set[str] = set()
        for _module, endpoint in reg.endpoints:
            served.update(endpoint.ops)
        for _module, _cls, routes in reg.routers:
            served.update(routes)
        findings = []
        for label, (module, line, _value) in sorted(reg.opcodes.items()):
            if label not in served:
                findings.append(self.finding(
                    module, line,
                    "opcode %s is in the wire registry but no _ops or "
                    "_routes table serves it — frames carrying it can "
                    "only ever error" % label))
        return findings

    # -- arity -------------------------------------------------------------
    def _check_arity(self, reg: _Registry) -> list[Finding]:
        arities: dict[str, list[tuple[str, str, int]]] = {}
        for _module, endpoint in reg.endpoints:
            for label, method in endpoint.ops.items():
                handler = _handler_def(endpoint, method)
                if handler is None:
                    continue
                count = _handler_arity(handler)
                if count is not None:
                    arities.setdefault(label, []).append(
                        (endpoint.node.name, method, count))
        findings = []
        for kind, label, operands, module, line in reg.build_sites:
            expected = arities.get(label)
            if not expected:
                continue
            # A sealed frame hits the handler with its federation tag
            # stripped; a raw make_frame of an internal opcode must
            # itself carry the tag field.
            offset = (1 if (kind == "make" and label in reg.internal)
                      else 0)
            if any(operands == count + offset
                   for _cls, _method, count in expected):
                continue
            cls, method, count = expected[0]
            findings.append(self.finding(
                module, line,
                "frame for %s is built with %d operand(s) here but "
                "handler %s.%s expects %d — the frame can never "
                "dispatch cleanly" % (label, operands, cls, method,
                                      count + offset)))
        return findings

    # -- federation sealing ------------------------------------------------
    def _check_internal_sealing(self, reg: _Registry) -> list[Finding]:
        findings = []
        for _module, endpoint in reg.endpoints:
            for label, method in sorted(endpoint.ops.items()):
                if label not in reg.internal:
                    continue
                handler = _handler_def(endpoint, method)
                if handler is None:
                    continue
                if not _first_statement_opens_frame(handler):
                    findings.append(self.finding(
                        endpoint.module, handler.lineno,
                        "handler %s.%s serves federation-internal opcode "
                        "%s but does not verify it with "
                        "open_internal_frame before touching any state — "
                        "an unauthenticated peer can forge the leg"
                        % (endpoint.node.name, method, label)))
        return findings

    # -- write-lock discipline ----------------------------------------------
    def _check_write_lock(self, project: Project) -> list[Finding]:
        classes: dict[str, ast.ClassDef] = {}
        mutating: list[tuple[Module, _EndpointClass]] = []
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    classes.setdefault(node.name, node)
                    endpoint = _EndpointClass(module, node)
                    if endpoint.mutating:
                        mutating.append((module, endpoint))
        findings = []
        for module, endpoint in mutating:
            if not self._chain_serializes(endpoint.node, classes):
                findings.append(self.finding(
                    module, endpoint.node.lineno,
                    "%s declares MUTATING_OPS but no handle_frame in its "
                    "class chain serializes mutating opcodes under a "
                    "_write_lock — concurrent mutations can interleave"
                    % endpoint.node.name))
        return findings

    @staticmethod
    def _chain_serializes(cls: ast.ClassDef,
                          classes: dict[str, ast.ClassDef]) -> bool:
        seen: set[str] = set()
        frontier = [cls]
        while frontier:
            node = frontier.pop()
            if node.name in seen:
                continue
            seen.add(node.name)
            for item in node.body:
                if (isinstance(item, ast.FunctionDef)
                        and item.name == "handle_frame"
                        and _serializes_mutations(item)):
                    return True
            for base in node.bases:
                base_name = terminal(base)
                if base_name and base_name in classes:
                    frontier.append(classes[base_name])
        return False

    # -- durable journaling (moved from wire-coverage) ----------------------
    def _check_durable(self, project: Project) -> list[Finding]:
        module = project.by_dotted(DURABLE_MODULE)
        if module is None:
            return []  # partial run (fixtures / subset targets)
        journals_frames = False
        keyed_on_mutating = False
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and terminal(node.func) == "append"
                    and node.args
                    and terminal(node.args[0]) == "K_FRAME"):
                journals_frames = True
            if isinstance(node, ast.Compare):
                names = {terminal(part)
                         for part in ast.walk(node)
                         if isinstance(part, (ast.Name, ast.Attribute))}
                if "MUTATING_OPS" in names and any(
                        isinstance(op, (ast.In, ast.NotIn))
                        for op in node.ops):
                    keyed_on_mutating = True
        findings = []
        if not journals_frames:
            findings.append(self.finding(
                module, 1,
                "store/durable.py never appends a K_FRAME journal "
                "record — acknowledged mutations are not crash-"
                "consistent"))
        if not keyed_on_mutating:
            findings.append(self.finding(
                module, 1,
                "store/durable.py no longer keys its journal commit on "
                "MUTATING_OPS membership — mutating frames may go "
                "unjournaled"))
        return findings

    # -- router coverage ----------------------------------------------------
    def _check_router(self, reg: _Registry) -> list[Finding]:
        if not reg.routers:
            return []
        client_facing: set[str] = set()
        for _module, endpoint in reg.endpoints:
            if reg.internal & set(endpoint.ops):
                client_facing.update(
                    label for label in endpoint.ops
                    if label not in reg.internal)
        if not client_facing:
            return []
        findings = []
        for module, cls, routes in reg.routers:
            for label in sorted(client_facing - set(routes)):
                findings.append(self.finding(
                    module, cls.lineno,
                    "router %s does not forward client-facing opcode "
                    "%s — federated deployments cannot reach it"
                    % (cls.name, label)))
        return findings


def _serializes_mutations(handler: ast.FunctionDef) -> bool:
    membership = False
    locked = False
    for node in ast.walk(handler):
        if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
            names = {terminal(part) for part in ast.walk(node)
                     if isinstance(part, (ast.Name, ast.Attribute))}
            if "MUTATING_OPS" in names:
                membership = True
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                probe = item.context_expr
                if isinstance(probe, ast.Call):
                    probe = probe.func
                name = terminal(probe)
                if name and "write_lock" in name:
                    locked = True
    return membership and locked
