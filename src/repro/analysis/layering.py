"""layering: declarative per-package import/call contracts.

The codebase is a strict layer cake, and every PR so far has defended
one slice of it by hand (PR 2 shipped ``tools/check_layering.py`` for
the protocols/transport boundary).  This pass generalizes that one-off
into a contract table:

* ``repro.crypto`` is the bottom — it imports nothing above itself
  (stdlib, ``repro.crypto``, ``repro.exceptions`` only), so the whole
  cryptographic core stays auditable in isolation.
* ``repro.sse`` builds only on crypto.
* ``repro.store.journal`` / ``repro.store.snapshot`` are raw durability
  primitives that sit *below* ``repro.core`` (their docstrings already
  promise this); only ``repro.store.durable`` — the adapter at the wire
  boundary — may speak to dispatch and envelopes.  No store module may
  import the protocol *flows* (storage/retrieval/emergency/privilege/
  mhi/crossdomain): durability wraps frames, never re-runs protocols.
* ``repro.net`` knows frames and links, never entities or protocols
  (``repro.core.wire`` is the shared boundary language and is allowed).
* ``repro.core.protocols`` speaks only wire frames: no direct calls to
  a remote party's surface (``handle_*``, the A-server's issuance
  methods, entity install hooks, raw ``transmit``) and no import of the
  simulator behind the transport abstraction.
* ``repro.analysis`` (this package) imports stdlib only — the analyzer
  must sit below everything it judges.

A contract names a package prefix; the *longest matching prefix* wins,
so ``repro.store.journal`` gets the strict journal contract while
``repro.store.durable`` falls back to the broader store contract.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from repro.analysis.framework import Finding, Module, Rule, register

# Remote-party surface (kept from tools/check_layering.py, PR 2):
# anything the other end of a wire would serve.
FORBIDDEN_METHOD_PREFIXES = ("handle_",)
FORBIDDEN_METHODS = frozenset({
    "authenticate_emergency",   # A-server, §IV.E.2 steps 1-2
    "extract_role_key",         # A-server, Γ_r issuance
    "seal_role_key",            # A-server, sealed Γ_r issuance
    "register_pdevice",         # A-server, emergency registration
    "receive_assign",           # entity-side ASSIGN install
    "receive_passcode",         # P-device-side step-3 install
    "transmit",                 # raw simulator access
})

PROTOCOL_FLOWS = tuple(
    "repro.core.protocols." + flow
    for flow in ("storage", "retrieval", "emergency", "privilege",
                 "mhi", "crossdomain"))


@dataclass(frozen=True)
class Contract:
    """Import/call obligations for one package prefix."""

    prefix: str                       # dotted module prefix this governs
    #: repro-internal prefixes this package may import (stdlib is always
    #: allowed; ``None`` means any repro import is fine).
    allowed: tuple | None = None
    #: repro-internal prefixes this package must never import, checked
    #: even when ``allowed`` is None.
    forbidden: tuple = ()
    #: enforce the frames-only call rule (no remote-party methods).
    frames_only: bool = False
    why: str = ""


CONTRACTS = (
    Contract(prefix="repro.analysis",
             allowed=("repro.analysis",),
             why="the analyzer must sit below every layer it judges"),
    Contract(prefix="repro.crypto",
             allowed=("repro.crypto", "repro.exceptions"),
             why="the cryptographic core is auditable in isolation"),
    Contract(prefix="repro.crypto.engine",
             allowed=("repro.crypto", "repro.exceptions"),
             why="the worker-pool engine stays bottom-layer: stdlib "
                 "multiprocessing is fine, but tasks are resolved from "
                 "dotted 'module:function' specs at run time so the "
                 "engine never imports sse/core/protocol modules"),
    Contract(prefix="repro.sse",
             allowed=("repro.sse", "repro.crypto", "repro.exceptions"),
             why="searchable encryption builds only on crypto"),
    Contract(prefix="repro.store.journal",
             allowed=("repro.exceptions",),
             why="the WAL sits below repro.core (its docstring promises "
                 "this); only durable.py adapts frames to records"),
    Contract(prefix="repro.store.snapshot",
             allowed=("repro.exceptions",),
             why="snapshots are raw durability primitives below "
                 "repro.core"),
    Contract(prefix="repro.store",
             forbidden=PROTOCOL_FLOWS,
             why="durability wraps acknowledged frames; it must never "
                 "re-run protocol flows"),
    Contract(prefix="repro.net",
             forbidden=("repro.core.aserver", "repro.core.sserver",
                        "repro.core.entities", "repro.core.dispatch",
                        "repro.core.protocols", "repro.crypto.engine"),
             why="transports carry bytes; entities, protocols, and the "
                 "crypto worker pool live above/below the wire"),
    Contract(prefix="repro.core.shard",
             allowed=("repro.core.shard", "repro.exceptions"),
             why="the consistent-hash ring is pure placement math below "
                 "dispatch: no wire, no endpoints, no crypto"),
    Contract(prefix="repro.core.health",
             allowed=("repro.core.health", "repro.exceptions"),
             why="circuit breakers and latency accounting are pure "
                 "bookkeeping over an injected clock: no wire, no "
                 "endpoints, no crypto"),
    Contract(prefix="repro.core.router",
             allowed=("repro.core.router", "repro.core.wire",
                      "repro.core.shard", "repro.core.health",
                      "repro.exceptions"),
             why="the federation router forwards opaque frames by ring "
                 "position; it must never import entity or protocol "
                 "layers (it cannot open what it routes)"),
    Contract(prefix="repro.core.protocols",
             forbidden=("repro.net.sim", "repro.crypto.engine"),
             frames_only=True,
             why="protocols speak only wire frames through a transport "
                 "(PR 2 dispatch boundary); the crypto engine is reached "
                 "only through engine= keywords on served surfaces, "
                 "never pooled directly from a protocol flow"),
)


def contract_for(dotted: str) -> Contract | None:
    best: Contract | None = None
    for contract in CONTRACTS:
        if dotted == contract.prefix or dotted.startswith(
                contract.prefix + "."):
            if best is None or len(contract.prefix) > len(best.prefix):
                best = contract
    return best


def _imported_names(node: ast.AST) -> list[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom) and node.module:
        # ``from repro.core import wire`` imports repro.core.wire; list
        # both so either prefix can satisfy/violate a contract.
        return [node.module] + ["%s.%s" % (node.module, alias.name)
                                for alias in node.names]
    return []


def _matches(name: str, prefixes: tuple) -> bool:
    return any(name == prefix or name.startswith(prefix + ".")
               for prefix in prefixes)


@register
class LayeringRule(Rule):
    id = "layering"
    description = ("per-package import/call contracts: crypto at the "
                   "bottom, protocols frames-only, store below core")

    def check_module(self, module: Module) -> Iterable[Finding]:
        contract = contract_for(module.dotted)
        if contract is None:
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                findings.extend(self._check_import(module, contract, node))
            elif (contract.frames_only and isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                name = node.func.attr
                if (name in FORBIDDEN_METHODS
                        or name.startswith(FORBIDDEN_METHOD_PREFIXES)):
                    findings.append(self.finding(
                        module, node.lineno,
                        "direct remote-party call .%s() — build a frame "
                        "and go through the transport" % name))
        return findings

    def _check_import(self, module: Module, contract: Contract,
                      node: ast.AST) -> list[Finding]:
        findings = []
        for name in _imported_names(node):
            if not name.startswith("repro"):
                continue  # stdlib / third-party: out of scope here
            if contract.forbidden and _matches(name, contract.forbidden):
                findings.append(self.finding(
                    module, node.lineno,
                    "%s must not import %s (%s)"
                    % (contract.prefix, name, contract.why)))
                continue
            if contract.allowed is not None and not _matches(
                    name, contract.allowed):
                findings.append(self.finding(
                    module, node.lineno,
                    "%s may import only {%s} but imports %s (%s)"
                    % (contract.prefix, ", ".join(contract.allowed),
                       name, contract.why)))
        return findings
