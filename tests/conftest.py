"""Shared fixtures: small pairing parameters, a PKG, and system builders.

Session-scoped where the object is immutable (domain parameters, extracted
keys); function-scoped where tests mutate state (full systems).
"""

from __future__ import annotations

import pytest

from repro.crypto.ibe import PrivateKeyGenerator
from repro.crypto.params import test_params as _test_params
from repro.crypto.rng import HmacDrbg


@pytest.fixture(scope="session")
def params():
    """The fast 160-bit test parameters (insecure, test-only)."""
    return _test_params()


@pytest.fixture()
def rng():
    """A fresh deterministic DRBG per test."""
    return HmacDrbg(b"pytest-seed")


@pytest.fixture(scope="session")
def pkg(params):
    """A PKG with a fixed master secret (read-only across tests)."""
    return PrivateKeyGenerator(params, HmacDrbg(b"pkg-seed"))


@pytest.fixture()
def system():
    """A freshly built single-hospital HCPP system."""
    from repro.core.system import build_system
    return build_system(seed=b"pytest-system")


@pytest.fixture()
def stored_system(system):
    """A system with three PHI records already uploaded."""
    from repro.core.protocols.storage import private_phi_storage
    from repro.ehr.records import Category
    patient = system.patient
    server = system.sserver
    patient.add_record(Category.ALLERGIES, ["allergies", "penicillin"],
                       "Severe penicillin allergy; carries epinephrine.",
                       server.address)
    patient.add_record(Category.CARDIOLOGY, ["cardiology", "heart-attack"],
                       "Prior MI (2024); ejection fraction 45%.",
                       server.address)
    patient.add_record(Category.DRUG_HISTORY, ["drug-history", "warfarin"],
                       "Warfarin 5 mg daily; INR target 2-3.",
                       server.address)
    private_phi_storage(patient, server, system.network)
    return system


@pytest.fixture()
def privileged_system(stored_system):
    """stored_system plus ASSIGN run for both family and P-device."""
    from repro.core.protocols.privilege import assign_privilege
    assign_privilege(stored_system.patient, stored_system.family,
                     stored_system.sserver, stored_system.network)
    assign_privilege(stored_system.patient, stored_system.pdevice,
                     stored_system.sserver, stored_system.network)
    return stored_system
