"""Journal framing edge cases: torn tails, corruption, snapshots.

The classification contract under test: an *incomplete final record* is
a torn tail (repairable — only the unacknowledged mutation is lost);
damage to any *committed* record is corruption and must raise, never be
silently dropped.
"""

from __future__ import annotations

import os

import pytest

from repro.exceptions import JournalCorruptionError, ParameterError
from repro.store import (JournalReader, JournalWriter, read_journal,
                         read_snapshot, snapshot_path, write_snapshot,
                         list_snapshot_ids)
from repro.store.journal import HEADER_SIZE, K_FRAME, K_META, K_SNAP, _crc


def _write(path, entries, **kwargs):
    with JournalWriter(path, **kwargs) as writer:
        for kind, payload in entries:
            writer.append(kind, payload, ts_ms=1234)


def _full_frame(kind: bytes, payload: bytes) -> bytes:
    """The exact on-disk bytes one append produces."""
    import struct
    body = kind + struct.pack(">Q", 1234) + payload
    return (struct.pack("<2sII", b"JR", len(body), _crc(len(body), body))
            + body)


class TestRoundTrip:
    def test_append_then_read(self, tmp_path):
        path = str(tmp_path / "a.journal")
        _write(path, [(K_META, b"name"), (K_FRAME, b"frame-1"),
                      (K_FRAME, b"frame-2")])
        records = read_journal(path)
        assert [(r.kind, r.payload) for r in records] == [
            (K_META, b"name"), (K_FRAME, b"frame-1"), (K_FRAME, b"frame-2")]
        assert all(r.ts_ms == 1234 for r in records)

    def test_missing_file_is_empty_history(self, tmp_path):
        assert read_journal(str(tmp_path / "nope.journal")) == []

    def test_empty_file_is_empty_history(self, tmp_path):
        path = str(tmp_path / "empty.journal")
        open(path, "wb").close()
        assert read_journal(path) == []

    def test_offsets_are_returned_and_monotonic(self, tmp_path):
        path = str(tmp_path / "o.journal")
        with JournalWriter(path) as writer:
            offsets = [writer.append(K_FRAME, b"x" * n) for n in range(5)]
        assert offsets == sorted(offsets) and offsets[0] == 0
        scanned = [offset for offset, _ in JournalReader(path).scan()]
        assert scanned == offsets

    def test_fsync_policies_accepted(self, tmp_path):
        for policy in ("always", "batch", "os"):
            path = str(tmp_path / ("%s.journal" % policy))
            _write(path, [(K_FRAME, b"p")], fsync_policy=policy)
            assert len(read_journal(path)) == 1

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(ParameterError):
            JournalWriter(str(tmp_path / "x.journal"), fsync_policy="yolo")

    def test_oversize_record_rejected_at_append(self, tmp_path):
        from repro.store.journal import MAX_BODY_SIZE
        with JournalWriter(str(tmp_path / "big.journal")) as writer:
            with pytest.raises(ParameterError, match="cap"):
                writer.append(K_FRAME, b"\x00" * MAX_BODY_SIZE)


class TestTornTail:
    """A torn final record is repaired by truncation; every committed
    record before it survives byte-for-byte."""

    @pytest.mark.parametrize("cut", list(range(1, len(_full_frame(
        K_FRAME, b"the-final-record")))))
    def test_torn_at_every_byte_offset_of_final_record(self, tmp_path, cut):
        path = str(tmp_path / "torn.journal")
        _write(path, [(K_META, b"name"), (K_FRAME, b"committed")])
        committed_size = os.path.getsize(path)
        final = _full_frame(K_FRAME, b"the-final-record")
        with open(path, "ab") as fh:
            fh.write(final[:cut])

        seen = []
        records = read_journal(path, repair=True,
                               on_torn=lambda tail, size:
                               seen.append((tail, size)))
        # Exactly the incomplete record is lost — nothing else.
        assert [(r.kind, r.payload) for r in records] == [
            (K_META, b"name"), (K_FRAME, b"committed")]
        assert seen == [(committed_size, committed_size + cut)]
        # Repair physically truncated the fragment.
        assert os.path.getsize(path) == committed_size
        # A later append extends a clean file.
        _write(path, [(K_FRAME, b"after-repair")])
        assert [r.payload for r in read_journal(path)] == [
            b"name", b"committed", b"after-repair"]

    def test_unrepai_read_leaves_fragment_in_place(self, tmp_path):
        path = str(tmp_path / "torn.journal")
        _write(path, [(K_FRAME, b"committed")])
        size = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(_full_frame(K_FRAME, b"partial")[:7])
        records = read_journal(path, repair=False)
        assert len(records) == 1
        assert os.path.getsize(path) == size + 7

    def test_double_recovery_is_idempotent(self, tmp_path):
        path = str(tmp_path / "torn.journal")
        _write(path, [(K_FRAME, b"committed")])
        with open(path, "ab") as fh:
            fh.write(_full_frame(K_FRAME, b"partial")[:11])
        first = read_journal(path, repair=True)
        second = read_journal(path, repair=True)
        assert first == second
        assert [r.payload for r in second] == [b"committed"]

    def test_armed_torn_write_tears_and_raises(self, tmp_path):
        path = str(tmp_path / "armed.journal")
        writer = JournalWriter(path)
        writer.append(K_FRAME, b"committed")
        writer.arm_torn_write(HEADER_SIZE + 3)
        with pytest.raises(JournalCorruptionError, match="torn write"):
            writer.append(K_FRAME, b"never-acknowledged")
        records = read_journal(path, repair=True)
        assert [r.payload for r in records] == [b"committed"]


class TestCorruption:
    """Damage to committed records is detected, never silently served."""

    def test_flipped_bit_in_non_tail_record_raises(self, tmp_path):
        path = str(tmp_path / "bitrot.journal")
        _write(path, [(K_FRAME, b"record-one"), (K_FRAME, b"record-two")])
        with open(path, "r+b") as fh:
            data = bytearray(fh.read())
            # Flip one bit inside the first record's payload.
            data[HEADER_SIZE + 9 + 2] ^= 0x10
            fh.seek(0)
            fh.write(data)
        with pytest.raises(JournalCorruptionError, match="CRC mismatch"):
            read_journal(path, repair=True)

    def test_flipped_bit_in_final_complete_record_raises(self, tmp_path):
        # The final record is *complete* (its full frame is on disk), so
        # a CRC failure there is corruption too — torn-tail leniency only
        # covers records the file ends in the middle of.
        path = str(tmp_path / "tailrot.journal")
        _write(path, [(K_FRAME, b"record-one"), (K_FRAME, b"record-two")])
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size - 2)
            byte = fh.read(1)
            fh.seek(size - 2)
            fh.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(JournalCorruptionError, match="CRC mismatch"):
            read_journal(path)

    def test_bad_magic_raises(self, tmp_path):
        path = str(tmp_path / "magic.journal")
        _write(path, [(K_FRAME, b"one"), (K_FRAME, b"two")])
        with open(path, "r+b") as fh:
            fh.write(b"XX")  # clobber the first record's magic
        with pytest.raises(JournalCorruptionError, match="bad record magic"):
            read_journal(path)

    def test_absurd_length_in_non_tail_record_raises(self, tmp_path):
        import struct
        path = str(tmp_path / "length.journal")
        # Handcraft: record with a length far past the cap, followed by
        # enough bytes that it cannot be a torn tail.
        from repro.store.journal import MAX_BODY_SIZE
        bogus = struct.pack("<2sII", b"JR", MAX_BODY_SIZE + 1, 0)
        with open(path, "wb") as fh:
            fh.write(bogus + b"\x00" * (MAX_BODY_SIZE + 1))
        with pytest.raises(JournalCorruptionError, match="cap"):
            read_journal(path)


class TestSnapshots:
    def test_round_trip(self, tmp_path):
        body = b"endpoint-state" * 100
        write_snapshot(str(tmp_path), "sserver", 3, body)
        assert read_snapshot(str(tmp_path), "sserver", 3) == body
        assert list_snapshot_ids(str(tmp_path), "sserver") == [3]

    def test_snapshot_only_journal(self, tmp_path):
        # A journal whose only content is a snapshot marker recovers to
        # exactly the snapshot state (empty replay suffix).
        path = str(tmp_path / "s.journal")
        write_snapshot(str(tmp_path), "s", 0, b"state")
        _write(path, [(K_SNAP, (0).to_bytes(4, "big"))])
        records = read_journal(path)
        assert [r.kind for r in records] == [K_SNAP]
        snapshot_id = int.from_bytes(records[0].payload, "big")
        assert read_snapshot(str(tmp_path), "s", snapshot_id) == b"state"

    def test_digest_mismatch_raises(self, tmp_path):
        write_snapshot(str(tmp_path), "x", 0, b"pristine-state")
        path = snapshot_path(str(tmp_path), "x", 0)
        with open(path, "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0x80]))
        with pytest.raises(JournalCorruptionError):
            read_snapshot(str(tmp_path), "x", 0)

    def test_truncated_snapshot_raises(self, tmp_path):
        write_snapshot(str(tmp_path), "x", 1, b"0123456789")
        path = snapshot_path(str(tmp_path), "x", 1)
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)
        with pytest.raises(JournalCorruptionError):
            read_snapshot(str(tmp_path), "x", 1)

    def test_missing_snapshot_raises(self, tmp_path):
        with pytest.raises(JournalCorruptionError):
            read_snapshot(str(tmp_path), "ghost", 9)
