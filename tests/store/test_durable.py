"""Durable endpoint semantics: crash/recover lifecycle, replay-guard
persistence, snapshots, the keystore record, and corruption refusal."""

from __future__ import annotations

import os

import pytest

from repro.ehr.records import Category
from repro.core import wire
from repro.core.protocols.base import with_policies
from repro.core.protocols.emergency import pdevice_emergency_retrieval
from repro.core.protocols.privilege import assign_privilege
from repro.core.protocols.retrieval import common_case_retrieval
from repro.core.protocols.storage import private_phi_storage
from repro.core.protocols.messages import pack_fields, unpack_fields
from repro.core.system import build_system
from repro.net.transport import FaultPolicy, LoopbackTransport, RetryPolicy
from repro.exceptions import (JournalCorruptionError, ParameterError,
                              RecoveryError, ReplayError)
from repro.store import (DurableStore, JournalWriter, bind_durable_aserver,
                         bind_durable_pdevice, bind_durable_sserver,
                         read_journal)
from repro.store.journal import K_FRAME, K_SNAP

ALLERGY = "Severe penicillin allergy; carries epinephrine."
CARDIO = "Prior MI (2024); ejection fraction 45%."


def _deployment(tmp_path, seed=b"durable-tests", **store_kwargs):
    system = build_system(seed=seed)
    faults = FaultPolicy(seed=0)
    net = with_policies(LoopbackTransport(),
                        retry=RetryPolicy(attempt_timeout_s=0.2,
                                          base_backoff_s=0.01),
                        faults=faults)
    data_dir = str(tmp_path)
    ds = bind_durable_sserver(
        net, system.sserver, DurableStore(data_dir, "sserver",
                                          **store_kwargs),
        fault_policy=faults)
    da = bind_durable_aserver(
        net, system.state, DurableStore(data_dir, "aserver", **store_kwargs),
        fault_policy=faults)
    dp = bind_durable_pdevice(
        net, system.pdevice, system.params,
        DurableStore(data_dir, "pdevice", **store_kwargs),
        fault_policy=faults)
    return system, net, faults, (ds, da, dp)


def _seed_and_store(system, net):
    patient, server = system.patient, system.sserver
    patient.add_record(Category.ALLERGIES, ["allergies", "penicillin"],
                       ALLERGY, server.address)
    patient.add_record(Category.CARDIOLOGY, ["cardiology", "heart-attack"],
                       CARDIO, server.address)
    private_phi_storage(patient, server, net)
    return patient, server


def _spy_frames(durable):
    """Capture every frame the endpoint handles (for replay probes)."""
    frames: list[bytes] = []
    original = durable.handle_frame

    def spy(frame):
        frames.append(frame)
        return original(frame)

    durable.handle_frame = spy
    return frames


def _first_with_opcode(frames, opcode):
    for frame in frames:
        if wire.parse_frame(frame)[0] == opcode:
            return frame
    raise AssertionError("no %r frame captured" % opcode)


class TestCrashRecover:
    def test_state_identical_after_crash_and_restart(self, tmp_path):
        system, net, faults, (ds, da, dp) = _deployment(tmp_path)
        patient, server = _seed_and_store(system, net)
        assign_privilege(patient, system.pdevice, server, net)
        before = ds.export_state()
        faults.crash(server.address)
        faults.restart(server.address)
        assert ds.export_state() == before
        result = common_case_retrieval(patient, server, net, ["allergies"])
        assert [f.medical_content for f in result.files] == [ALLERGY]

    def test_double_recovery_is_idempotent(self, tmp_path):
        system, net, faults, (ds, da, dp) = _deployment(tmp_path)
        _seed_and_store(system, net)
        faults.crash(system.sserver.address)
        faults.restart(system.sserver.address)
        first = ds.export_state()
        faults.crash(system.sserver.address)
        faults.restart(system.sserver.address)
        assert ds.export_state() == first

    def test_crashed_endpoint_refuses_with_typed_error(self, tmp_path):
        system, net, faults, _ = _deployment(tmp_path)
        patient, server = _seed_and_store(system, net)
        faults.crash(server.address)
        from repro.exceptions import TransientTransportError
        with pytest.raises(TransientTransportError):
            common_case_retrieval(patient, server, net, ["allergies"])
        faults.restart(server.address)
        result = common_case_retrieval(patient, server, net, ["allergies"])
        assert [f.medical_content for f in result.files] == [ALLERGY]

    def test_crash_during_write_loses_only_unacked_mutation(self, tmp_path):
        system, net, faults, (ds, _, _) = _deployment(tmp_path)
        patient, server = _seed_and_store(system, net)
        count_before = server.collection_count()
        faults.crash(server.address, during_write=True, restart_after=1)
        patient.add_record(Category.ALLERGIES, ["latex"],
                           "Latex sensitivity.", server.address)
        # The client-side retry re-presents the upload after the torn
        # write killed the server mid-append; recovery truncates the
        # fragment and the retried upload lands.
        private_phi_storage(patient, server, net)
        assert ds._store.torn_repairs == 1
        assert ds._store.last_torn_loss > 0
        assert server.collection_count() == count_before + 1
        result = common_case_retrieval(patient, server, net, ["latex"])
        assert [f.medical_content for f in result.files] == [
            "Latex sensitivity."]

    def test_during_write_without_durable_endpoint_rejected(self):
        faults = FaultPolicy(seed=0)
        with pytest.raises(ParameterError, match="durable endpoint"):
            faults.crash("nowhere://x", during_write=True)


class TestReplayGuardPersistence:
    """Regression: before the durable layer, a crash-restart emptied the
    replay guards, silently reopening the replay window."""

    def test_duplicate_store_rejected_after_restart(self, tmp_path):
        system, net, faults, (ds, _, _) = _deployment(tmp_path)
        frames = _spy_frames(ds)
        patient, server = _seed_and_store(system, net)
        store_frame = _first_with_opcode(frames, wire.OP_STORE)
        faults.crash(server.address)
        faults.restart(server.address)
        reply = net.request(patient.address, server.address, store_frame,
                            "dup-after-restart")
        with pytest.raises(ReplayError):
            wire.parse_response(reply)

    def test_duplicate_search_rejected_after_restart(self, tmp_path):
        # Read ops are not journaled as frames; their guard commitments
        # ride K_GUARD records and must equally survive the crash.
        system, net, faults, (ds, _, _) = _deployment(tmp_path)
        frames = _spy_frames(ds)
        patient, server = _seed_and_store(system, net)
        common_case_retrieval(patient, server, net, ["allergies"])
        search_frame = _first_with_opcode(frames, wire.OP_SEARCH)
        faults.crash(server.address)
        faults.restart(server.address)
        reply = net.request(patient.address, server.address, search_frame,
                            "dup-search-after-restart")
        with pytest.raises(ReplayError):
            wire.parse_response(reply)

    def test_duplicate_emergency_auth_rejected_after_restart(self, tmp_path):
        system, net, faults, (_, da, _) = _deployment(tmp_path)
        frames = _spy_frames(da)
        patient, server = _seed_and_store(system, net)
        assign_privilege(patient, system.pdevice, server, net)
        physician = system.any_physician()
        system.state.sign_in(physician.hospital, physician.physician_id)
        pdevice_emergency_retrieval(physician, system.pdevice, system.state,
                                    server, net, ["cardiology"])
        auth_frame = _first_with_opcode(frames, wire.OP_EMERGENCY_AUTH)
        faults.crash(system.state.address)
        faults.restart(system.state.address)
        reply = net.request(physician.address, system.state.address,
                            auth_frame, "dup-auth-after-restart")
        with pytest.raises(ReplayError):
            wire.parse_response(reply)


class TestSnapshots:
    def test_snapshot_every_writes_snapshots_and_recovers(self, tmp_path):
        system, net, faults, (ds, _, _) = _deployment(
            tmp_path, snapshot_every=1)
        patient, server = _seed_and_store(system, net)
        assign_privilege(patient, system.pdevice, server, net)
        snaps = [f for f in os.listdir(str(tmp_path))
                 if f.startswith("sserver.snap.")]
        assert snaps, "snapshot_every=1 wrote no snapshots"
        before = ds.export_state()
        faults.crash(server.address)
        faults.restart(server.address)
        assert ds.export_state() == before

    def test_recovery_falls_back_over_damaged_snapshot(self, tmp_path):
        system, net, faults, (ds, _, _) = _deployment(
            tmp_path, snapshot_every=1)
        patient, server = _seed_and_store(system, net)
        before = ds.export_state()
        # Damage the newest snapshot: recovery must fall back to an
        # older one (or genesis) and still replay to the same state.
        snaps = sorted(f for f in os.listdir(str(tmp_path))
                       if f.startswith("sserver.snap."))
        with open(os.path.join(str(tmp_path), snaps[-1]), "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            last = fh.read(1)
            fh.seek(-1, os.SEEK_END)
            fh.write(bytes([last[0] ^ 0xFF]))
        faults.crash(server.address)
        faults.restart(server.address)
        assert ds.export_state() == before

    def test_manual_snapshot_returns_sequential_ids(self, tmp_path):
        system, net, faults, (ds, _, _) = _deployment(tmp_path)
        _seed_and_store(system, net)
        assert ds.snapshot() == 0
        assert ds.snapshot() == 1


class TestCorruptionRefusal:
    """Committed journal damage is detected at recovery, never served."""

    def test_flipped_bit_in_committed_record_blocks_recovery(self, tmp_path):
        system, net, faults, (ds, _, _) = _deployment(tmp_path)
        patient, server = _seed_and_store(system, net)
        faults.crash(server.address)
        path = os.path.join(str(tmp_path), "sserver.journal")
        with open(path, "r+b") as fh:
            data = fh.read()
            fh.seek(len(data) // 2)
            byte = fh.read(1)
            fh.seek(len(data) // 2)
            fh.write(bytes([byte[0] ^ 0x40]))
        with pytest.raises(JournalCorruptionError):
            faults.restart(server.address)

    def test_aserver_checkpoint_mismatch_blocks_recovery(self, tmp_path):
        system, net, faults, (_, da, _) = _deployment(tmp_path)
        patient, server = _seed_and_store(system, net)
        assign_privilege(patient, system.pdevice, server, net)
        physician = system.any_physician()
        system.state.sign_in(physician.hospital, physician.physician_id)
        pdevice_emergency_retrieval(physician, system.pdevice, system.state,
                                    server, net, ["cardiology"])
        faults.crash(system.state.address)
        # Rewrite the journal with a forged checkpoint on the last
        # mutating frame (valid CRC, wrong commitment): the replayed
        # audit log can no longer match what was committed.
        path = os.path.join(str(tmp_path), "aserver.journal")
        records = read_journal(path)
        last_frame = max(i for i, r in enumerate(records)
                         if r.kind == K_FRAME)
        os.remove(path)
        with JournalWriter(path) as writer:
            for i, record in enumerate(records):
                payload = record.payload
                if i == last_frame:
                    frame, _extra = unpack_fields(payload, expected=2)
                    forged = pack_fields((1).to_bytes(8, "big"),
                                         b"\x00" * 32, b"\x00" * 32)
                    payload = pack_fields(frame, forged)
                writer.append(record.kind, payload, record.ts_ms)
        with pytest.raises(RecoveryError, match="checkpoint"):
            faults.restart(system.state.address)


class TestKeystore:
    def test_assign_replays_from_journaled_key(self, tmp_path):
        # μ reaches the durable P-device via rekey() during ASSIGN and is
        # journaled as the device's keystore; recovery must decrypt the
        # replayed ASSIGN frame with it even when the wrapper was built
        # without a pre-shared key (the fresh-process case).
        system, net, faults, (_, _, dp) = _deployment(tmp_path)
        patient, server = _seed_and_store(system, net)
        assign_privilege(patient, system.pdevice, server, net)
        assert system.pdevice.package is not None
        dp._mu_value = None  # forget the in-memory copy
        faults.crash(system.pdevice.address)
        faults.restart(system.pdevice.address)
        assert system.pdevice.package is not None
        assert dp._mu_value == patient.preshared_key(system.pdevice.name)

    def test_rd_records_and_alerts_survive(self, tmp_path):
        system, net, faults, (_, _, dp) = _deployment(tmp_path)
        patient, server = _seed_and_store(system, net)
        assign_privilege(patient, system.pdevice, server, net)
        physician = system.any_physician()
        system.state.sign_in(physician.hospital, physician.physician_id)
        pdevice_emergency_retrieval(physician, system.pdevice, system.state,
                                    server, net, ["cardiology"])
        rds = [rd.to_bytes() for rd in system.pdevice.records]
        alerts = system.pdevice.alerts
        assert rds and alerts
        faults.crash(system.pdevice.address)
        faults.restart(system.pdevice.address)
        assert [rd.to_bytes() for rd in system.pdevice.records] == rds
        assert system.pdevice.alerts == alerts
        for rd in system.pdevice.records:
            assert rd.verify(system.params, system.state.public_key)
