"""Baseline tests: Lee–Lee escrow (E13) and Tan et al. linkability (E14),
each contrasted against HCPP's corresponding property."""

import pytest

from repro.crypto.rng import HmacDrbg
from repro.baselines.leelee import EscrowServer, LeeLeePatient
from repro.baselines.tanetal import (TanAuthority, TanSensorNode,
                                     TanStorageSite, doctor_retrieve)
from repro.ehr.records import Category, PhiFile, make_phi_file
from repro.exceptions import AccessDenied, ParameterError


@pytest.fixture()
def rng():
    return HmacDrbg(b"baselines")


class TestLeeLee:
    def _enrolled(self, rng):
        server = EscrowServer()
        patient = LeeLeePatient("alice", rng)
        patient.enroll(server)
        phi = make_phi_file(rng, Category.CARDIOLOGY, ["cardiology"],
                            "MI history.")
        patient.store_record(server, phi)
        return server, patient, phi

    def test_normal_retrieval_works(self, rng):
        server, patient, phi = self._enrolled(rng)
        files = patient.consent_retrieve(server)
        assert files[0].medical_content == "MI history."

    def test_incapacitated_patient_blocked_normally(self, rng):
        server, patient, _ = self._enrolled(rng)
        patient.card.present = False
        with pytest.raises(AccessDenied):
            patient.consent_retrieve(server)

    def test_emergency_fail_open_works(self, rng):
        """The scheme is 'technically correct': emergencies succeed."""
        server, patient, _ = self._enrolled(rng)
        patient.card.present = False
        plaintexts = server.emergency_read("alice", "dr-er-1")
        assert b"MI history." in plaintexts[0]
        assert server.emergency_log == [("alice", "dr-er-1")]

    def test_the_privacy_violation(self, rng):
        """The paper's critique: the escrow reads PHI with NO emergency
        and NO consent — impossible in HCPP (see collusion tests)."""
        server, patient, _ = self._enrolled(rng)
        plaintexts = server.covert_read("alice")
        assert b"MI history." in plaintexts[0]
        assert server.emergency_log == []  # nothing was even logged

    def test_ownership_fully_linkable(self, rng):
        server, patient, _ = self._enrolled(rng)
        other = LeeLeePatient("bob", rng)
        other.enroll(server)
        other.store_record(server, make_phi_file(
            rng, Category.XRAY, ["xray"], "note"))
        assert server.server_view_owners() == {"alice": 1, "bob": 1}

    def test_double_registration_rejected(self, rng):
        server = EscrowServer()
        patient = LeeLeePatient("alice", rng)
        patient.enroll(server)
        with pytest.raises(ParameterError):
            patient.enroll(server)

    def test_unknown_patient_rejected(self, rng):
        with pytest.raises(ParameterError):
            EscrowServer().covert_read("ghost")


class TestTanEtAl:
    def _deployed(self, params, rng):
        authority = TanAuthority(params, rng)
        site = TanStorageSite()
        node = TanSensorNode("alice", params, authority.public_key, rng)
        node.upload(site, "role:er-duty", b"sensor record 1")
        node.upload(site, "role:er-duty", b"sensor record 2")
        return authority, site

    def test_authorized_doctor_retrieves(self, params, rng):
        authority, site = self._deployed(params, rng)
        authority.authorize("dr-er")
        records = doctor_retrieve(site, authority, params,
                                  authority.public_key, "dr-er", "alice",
                                  "role:er-duty")
        assert records == [b"sensor record 1", b"sensor record 2"]

    def test_unauthorized_doctor_blocked(self, params, rng):
        authority, site = self._deployed(params, rng)
        with pytest.raises(AccessDenied):
            doctor_retrieve(site, authority, params, authority.public_key,
                            "dr-mallory", "alice", "role:er-duty")

    def test_content_confidential_at_rest(self, params, rng):
        """Content confidentiality holds (that is not the flaw)."""
        authority, site = self._deployed(params, rng)
        blob = b"".join(r.ciphertext.V + r.ciphertext.W
                        for r in site._records)
        assert b"sensor record" not in blob

    def test_the_linkability_violation(self, params, rng):
        """The paper's critique: the site learns record ownership —
        ownership inference succeeds with probability 1."""
        authority, site = self._deployed(params, rng)
        node_bob = TanSensorNode("bob", params, authority.public_key, rng)
        node_bob.upload(site, "role:er-duty", b"bob record")
        assert site.ownership_view() == {"alice": 2, "bob": 1}
        assert site.infer_owner(0) == "alice"
        assert site.infer_owner(2) == "bob"

    def test_hcpp_defeats_same_inference(self, stored_system):
        """Contrast: HCPP's server view has pseudonyms, not identities —
        and fresh pseudonyms per session prevent even count aggregation."""
        observations = stored_system.sserver.observations
        assert all(b"alice" not in o.pseudonym for o in observations)

    def test_index_bounds(self, params, rng):
        authority, site = self._deployed(params, rng)
        with pytest.raises(ParameterError):
            site.infer_owner(99)
