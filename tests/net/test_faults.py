"""Chaos tests: fault injection, retry recovery, and failure semantics.

Every scenario here must end in one of exactly two ways: success after
retries, or a clean *typed* error — never a hang, never a silent wrong
answer.  The matrix drives the real protocol suite through all three
transport backends under seeded drop/duplicate schedules, then probes
each fault kind (partition, crash, corruption, truncation, duplication)
in isolation, including proof that duplicates injected *below* the
protocol layer are rejected by the receiver-side ``ReplayGuard``s.
"""

from __future__ import annotations

import pytest

from repro.ehr.mhi import AnomalyKind
from repro.ehr.records import Category
from repro.core import wire
from repro.core.federation import bind_federated_sserver
from repro.core.protocols.base import with_policies
from repro.core.protocols.emergency import (family_based_retrieval,
                                            pdevice_emergency_retrieval)
from repro.core.protocols.messages import pack_fields, seal, unpack_fields
from repro.core.protocols.mhi import (mhi_retrieve, mhi_store,
                                      role_identity_for)
from repro.core.protocols.privilege import (assign_privilege,
                                            revoke_privilege)
from repro.core.protocols.retrieval import common_case_retrieval
from repro.core.protocols.storage import private_phi_storage
from repro.core.system import build_system
from repro.net.transport import (AsyncTransport, FaultPolicy,
                                 LoopbackTransport, RetryPolicy,
                                 SocketTransport, parse_fault_spec)
from repro.exceptions import (ParameterError, PartialResultError,
                              ReplayError, ReproError,
                              TransientTransportError, TransportError)

ALLERGY_TEXT = "Severe penicillin allergy; carries epinephrine."
CARDIO_TEXT = "Prior MI (2024); ejection fraction 45%."

# Seed chosen so the 5% drop + 2% duplication schedule actually fires
# at least once each over the ~30 frames of the full suite.
CHAOS_SEED = 15

BACKENDS = ["loopback", "sim", "socket", "async"]


class _Echo:
    """Minimal endpoint: echoes the frame payload back."""

    def __init__(self) -> None:
        self.frames: list[bytes] = []

    def attach(self, transport) -> None:
        self.transport = transport

    def handle_frame(self, frame: bytes) -> bytes:
        self.frames.append(frame)
        return wire.ok_response(frame)


def _make_transport(backend: str, system):
    if backend == "loopback":
        return LoopbackTransport()
    if backend == "sim":
        return system.network
    if backend == "async":
        return AsyncTransport()
    return SocketTransport()


def _close(net) -> None:
    if isinstance(net, (SocketTransport, AsyncTransport)):
        net.close()


def _seeded_patient(system):
    patient, server = system.patient, system.sserver
    patient.add_record(Category.ALLERGIES, ["allergies", "penicillin"],
                       ALLERGY_TEXT, server.address)
    patient.add_record(Category.CARDIOLOGY, ["cardiology", "heart-attack"],
                       CARDIO_TEXT, server.address)
    return patient, server


def _run_full_suite(net, system):
    """All six protocols end-to-end; returns per-protocol stats."""
    patient, server = _seeded_patient(system)
    stats = {}
    stats["storage"] = private_phi_storage(patient, server, net).stats
    stats["assign-family"] = assign_privilege(patient, system.family,
                                              server, net).stats
    stats["assign-pdevice"] = assign_privilege(patient, system.pdevice,
                                               server, net).stats
    rt = common_case_retrieval(patient, server, net, ["allergies"])
    assert [f.medical_content for f in rt.files] == [ALLERGY_TEXT]
    stats["retrieval"] = rt.stats
    fam = family_based_retrieval(system.family, server, net, ["cardiology"])
    assert [f.medical_content for f in fam.files] == [CARDIO_TEXT]
    stats["family-emergency"] = fam.stats
    physician = system.any_physician()
    system.state.sign_in(physician.hospital, physician.physician_id)
    window = system.pdevice.vitals.generate_day(
        "2026-07-01", anomalies=[(36000.0, AnomalyKind.TACHYCARDIA)])
    role = role_identity_for("2026-07-01")
    stats["mhi-store"] = mhi_store(system.pdevice, server,
                                   system.state.public_key, net, window,
                                   role).stats
    pd = pdevice_emergency_retrieval(physician, system.pdevice,
                                     system.state, server, net,
                                     ["cardiology"])
    assert [f.medical_content for f in pd.files] == [CARDIO_TEXT]
    stats["pdevice-emergency"] = pd.stats
    stats["mhi-retrieve"] = mhi_retrieve(physician, system.state, server,
                                         net, role, "2026-07-03").stats
    stats["revoke"] = revoke_privilege(patient, system.pdevice.name,
                                       server, net).stats
    return stats


class TestRetryPolicy:
    def test_backoff_doubles_then_caps(self):
        policy = RetryPolicy(base_backoff_s=0.05, max_backoff_s=0.3)
        assert policy.backoff_s(1) == pytest.approx(0.05)
        assert policy.backoff_s(2) == pytest.approx(0.10)
        assert policy.backoff_s(3) == pytest.approx(0.20)
        assert policy.backoff_s(4) == pytest.approx(0.30)  # capped
        assert policy.backoff_s(10) == pytest.approx(0.30)

    def test_zero_attempts_rejected(self):
        with pytest.raises(ParameterError):
            RetryPolicy(max_attempts=0)

    def test_negative_timings_rejected(self):
        for field in ("base_backoff_s", "max_backoff_s",
                      "attempt_timeout_s", "deadline_s"):
            with pytest.raises(ParameterError):
                RetryPolicy(**{field: -0.1})

    def test_backoff_index_is_one_based(self):
        with pytest.raises(ParameterError):
            RetryPolicy().backoff_s(0)

    def test_jitter_default_off_keeps_pinned_schedule(self):
        # jitter_seed=None must reproduce the exact undithered values
        # every deployment to date has been tuned against.
        plain = RetryPolicy(base_backoff_s=0.05, max_backoff_s=0.3)
        assert plain.jitter_seed is None
        assert plain.backoff_s(1) == pytest.approx(0.05)
        assert plain.backoff_s(4) == pytest.approx(0.30)

    def test_jitter_is_seeded_and_deterministic(self):
        a = RetryPolicy(base_backoff_s=0.05, max_backoff_s=0.3,
                        jitter_seed=7)
        b = RetryPolicy(base_backoff_s=0.05, max_backoff_s=0.3,
                        jitter_seed=7)
        c = RetryPolicy(base_backoff_s=0.05, max_backoff_s=0.3,
                        jitter_seed=8)
        schedule_a = [a.backoff_s(k) for k in range(1, 9)]
        assert schedule_a == [b.backoff_s(k) for k in range(1, 9)]
        # Different seeds decorrelate (no retry stampede in lockstep).
        assert schedule_a != [c.backoff_s(k) for k in range(1, 9)]

    def test_jitter_stays_within_the_nominal_envelope(self):
        plain = RetryPolicy(base_backoff_s=0.05, max_backoff_s=0.3)
        jittered = RetryPolicy(base_backoff_s=0.05, max_backoff_s=0.3,
                               jitter_seed=3)
        for k in range(1, 20):
            wait = jittered.backoff_s(k)
            # Full jitter: uniform in (0, nominal] — never zero (a 0s
            # wait retries in the slot that just failed), never above
            # the capped exponential.
            assert 0.0 < wait <= plain.backoff_s(k)


class TestFaultPolicy:
    def test_rates_validated(self):
        with pytest.raises(ParameterError):
            FaultPolicy(drop_rate=1.5)
        with pytest.raises(ParameterError):
            FaultPolicy(duplicate_rate=-0.1)
        with pytest.raises(ParameterError):
            FaultPolicy(delay_s=-1.0)

    def test_same_seed_same_schedule(self):
        frames = [b"frame-%d" % i for i in range(200)]
        kwargs = dict(seed=42, drop_rate=0.2, duplicate_rate=0.2,
                      corrupt_rate=0.1, truncate_rate=0.1, delay_rate=0.1)
        a, b = FaultPolicy(**kwargs), FaultPolicy(**kwargs)
        plans_a = [a.plan("x", "y", "l", f) for f in frames]
        plans_b = [b.plan("x", "y", "l", f) for f in frames]
        assert plans_a == plans_b
        assert a.counts == b.counts
        assert a.counts["dropped"] > 0 and a.counts["duplicated"] > 0

    def test_zero_rates_do_not_shift_the_schedule(self):
        # The same seed must produce the same drop decisions whether or
        # not unrelated rates are armed (each consult burns a fixed
        # number of draws).
        only_drop = FaultPolicy(seed=9, drop_rate=0.3)
        drop_and_dup = FaultPolicy(seed=9, drop_rate=0.3,
                                   duplicate_rate=0.0)
        frames = [b"f%d" % i for i in range(100)]
        drops_a = [only_drop.plan("x", "y", "l", f).drop for f in frames]
        drops_b = [drop_and_dup.plan("x", "y", "l", f).drop
                   for f in frames]
        assert drops_a == drops_b

    def test_corruption_keeps_length_changes_one_byte(self):
        policy = FaultPolicy(seed=1, corrupt_rate=1.0)
        frame = bytes(range(64))
        plan = policy.plan("x", "y", "l", frame)
        assert plan.corrupted and len(plan.frame) == len(frame)
        assert sum(1 for a, b in zip(plan.frame, frame) if a != b) == 1

    def test_truncation_shortens(self):
        policy = FaultPolicy(seed=1, truncate_rate=1.0)
        plan = policy.plan("x", "y", "l", bytes(64))
        assert plan.truncated and len(plan.frame) < 64

    def test_parse_fault_spec(self):
        policy = parse_fault_spec("drop=0.05, dup=0.02, seed=7")
        assert policy.drop_rate == pytest.approx(0.05)
        assert policy.duplicate_rate == pytest.approx(0.02)

    def test_parse_fault_spec_rejects_unknown_key(self):
        with pytest.raises(ParameterError, match="bad fault spec"):
            parse_fault_spec("jitter=0.5")

    def test_parse_fault_spec_rejects_bad_value(self):
        with pytest.raises(ParameterError, match="bad fault value"):
            parse_fault_spec("drop=lots")


class TestChaosMatrix:
    """The acceptance scenario: 5% drop + 2% duplication, all six
    protocols, every backend — success via retries, accounting kept."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_protocols_complete_under_drop_and_dup(self, backend):
        system = build_system(seed=b"chaos-matrix")
        faults = FaultPolicy(seed=CHAOS_SEED, drop_rate=0.05,
                             duplicate_rate=0.02)
        net = with_policies(_make_transport(backend, system),
                            retry=RetryPolicy(attempt_timeout_s=0.2,
                                              base_backoff_s=0.01),
                            faults=faults)
        try:
            stats = _run_full_suite(net, system)
        finally:
            _close(net)
        # The schedule must actually have hurt us, and every lost
        # attempt must be visible in the per-protocol accounting.
        assert faults.counts["dropped"] >= 1
        assert faults.counts["duplicated"] >= 1
        assert sum(s.retries for s in stats.values()) \
            == faults.counts["dropped"]
        # Lost attempts still bill their bytes.
        for s in stats.values():
            assert s.bytes_total > 0 and s.messages > 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_chaos_matrix_through_the_router(self, backend):
        # Same matrix, S-server federated behind the 2-shard router:
        # every drop/duplicate now crosses the scatter-gather path, and
        # the router's TransientTransportError propagation must keep
        # the client-side retry accounting exact.
        system = build_system(seed=b"chaos-router")
        faults = FaultPolicy(seed=CHAOS_SEED, drop_rate=0.05,
                             duplicate_rate=0.02)
        net = with_policies(_make_transport(backend, system),
                            retry=RetryPolicy(attempt_timeout_s=0.2,
                                              base_backoff_s=0.01),
                            faults=faults)
        try:
            bind_federated_sserver(net, system.sserver, 2)
            stats = _run_full_suite(net, system)
        finally:
            _close(net)
        assert faults.counts["dropped"] >= 1
        assert faults.counts["duplicated"] >= 1
        assert sum(s.retries for s in stats.values()) \
            == faults.counts["dropped"]

    def test_fault_free_run_and_chaos_run_agree_on_plaintext(self):
        # Same deployment, clean wire: the chaos run above returned the
        # same plaintext a clean run does (no silent wrong answer).
        system = build_system(seed=b"chaos-matrix")
        stats = _run_full_suite(LoopbackTransport(), system)
        assert all(s.retries == 0 for s in stats.values())


class TestPartition:
    def _bound_echo(self):
        transport = LoopbackTransport()
        transport.set_retry_policy(RetryPolicy(
            max_attempts=3, base_backoff_s=0.1, attempt_timeout_s=1.0,
            deadline_s=10.0))
        transport.bind("echo://sv", _Echo())
        return transport

    def test_partitioned_endpoint_fails_typed_within_deadline(self):
        transport = self._bound_echo()
        faults = FaultPolicy(seed=0)
        transport.install_faults(faults)
        faults.partition("echo://sv")
        before = transport.now
        with pytest.raises(TransientTransportError, match="partition"):
            transport.request("cl", "echo://sv", b"ping", "ping")
        # Bounded: 3 attempts × 1.0s timeout + backoffs, well under the
        # 10s deadline — and strictly finite (no hang).
        assert transport.now - before <= 10.0
        assert faults.counts["partitioned"] == 3

    def test_heal_restores_delivery(self):
        transport = self._bound_echo()
        faults = FaultPolicy(seed=0)
        transport.install_faults(faults)
        faults.partition("echo://sv")
        with pytest.raises(TransientTransportError):
            transport.request("cl", "echo://sv", b"ping", "ping")
        faults.heal("echo://sv")
        reply = transport.request("cl", "echo://sv", b"ping", "ping")
        assert wire.parse_response(reply) == b"ping"

    def test_deadline_bounds_total_delivery_time(self):
        transport = LoopbackTransport()
        transport.set_retry_policy(RetryPolicy(
            max_attempts=50, base_backoff_s=0.5, max_backoff_s=0.5,
            attempt_timeout_s=1.0, deadline_s=4.0))
        transport.bind("echo://sv", _Echo())
        faults = FaultPolicy(seed=0)
        transport.install_faults(faults)
        faults.partition("echo://sv")
        before = transport.now
        with pytest.raises(TransientTransportError):
            transport.request("cl", "echo://sv", b"ping", "ping")
        # 50 attempts would take 75s; the deadline cut it off early.
        assert transport.now - before < 7.0


class TestCrashRestart:
    def test_crashed_endpoint_refuses_then_recovers(self):
        transport = LoopbackTransport()
        transport.set_retry_policy(RetryPolicy(max_attempts=2,
                                               base_backoff_s=0.01))
        transport.bind("echo://sv", _Echo())
        faults = FaultPolicy(seed=0)
        transport.install_faults(faults)
        faults.crash("echo://sv")
        with pytest.raises(TransientTransportError,
                           match="connection refused"):
            transport.request("cl", "echo://sv", b"ping", "ping")
        assert faults.counts["refused"] == 2
        faults.restart("echo://sv")
        reply = transport.request("cl", "echo://sv", b"ping", "ping")
        assert wire.parse_response(reply) == b"ping"


class TestCorruptionAndTruncation:
    """Mutated frames must surface as typed errors, never as silently
    wrong results — the MAC/codec layers are the tripwire."""

    def _stored_system(self):
        system = build_system(seed=b"chaos-corrupt")
        patient, server = _seeded_patient(system)
        net = LoopbackTransport()
        private_phi_storage(patient, server, net)
        return system, patient, server

    def test_corrupted_frames_yield_typed_errors(self):
        system, patient, server = self._stored_system()
        net = with_policies(LoopbackTransport(),
                            faults=FaultPolicy(seed=3, corrupt_rate=1.0))
        with pytest.raises(ReproError):
            private_phi_storage(patient, server, net)

    def test_truncated_frames_yield_typed_errors(self):
        system, patient, server = self._stored_system()
        net = with_policies(LoopbackTransport(),
                            faults=FaultPolicy(seed=3, truncate_rate=1.0))
        with pytest.raises(ReproError):
            private_phi_storage(patient, server, net)


class TestDuplicateAbsorption:
    """Duplicates injected below the protocol layer reach the server
    twice; the receiver-side ReplayGuards must reject the second copy
    while the protocol completes normally on the first."""

    def test_replay_guard_rejects_injected_duplicates(self):
        system = build_system(seed=b"chaos-dup")
        patient, server = _seeded_patient(system)
        faults = FaultPolicy(seed=1, duplicate_rate=1.0)
        net = with_policies(LoopbackTransport(), faults=faults)

        private_phi_storage(patient, server, net)
        result = common_case_retrieval(patient, server, net, ["allergies"])
        assert [f.medical_content for f in result.files] == [ALLERGY_TEXT]

        assert faults.duplicate_replies, "no duplicates were injected"
        for label, reply in faults.duplicate_replies:
            with pytest.raises(ReplayError, match="replayed"):
                wire.parse_response(reply)

    def test_duplicate_emergency_auth_is_rejected(self):
        system = build_system(seed=b"chaos-dup-auth")
        patient, server = _seeded_patient(system)
        clean = LoopbackTransport()
        private_phi_storage(patient, server, clean)
        assign_privilege(patient, system.pdevice, server, clean)

        faults = FaultPolicy(seed=1, duplicate_rate=1.0)
        net = with_policies(LoopbackTransport(), faults=faults)
        physician = system.any_physician()
        system.state.sign_in(physician.hospital, physician.physician_id)
        result = pdevice_emergency_retrieval(physician, system.pdevice,
                                             system.state, server, net,
                                             ["cardiology"])
        assert [f.medical_content for f in result.files] == [CARDIO_TEXT]
        auth_replies = [reply for label, reply
                        in faults.duplicate_replies
                        if "auth" in label]
        assert auth_replies, "emergency auth was never duplicated"
        for reply in auth_replies:
            with pytest.raises(ReplayError):
                wire.parse_response(reply)


def _multi_frame(system, cids, keywords, now):
    """A cross-shard OP_SEARCH_MULTI frame (test_federation idiom)."""
    patient = system.patient
    pseudonym = patient.fresh_pseudonym()
    nu = patient.session_key_with(system.sserver.identity_key.public,
                                  pseudonym)
    trapdoors = [patient.trapdoor(kw).to_bytes() for kw in keywords]
    request = seal(nu, "phi-retrieve", pack_fields(*trapdoors), now)
    return wire.make_frame(wire.OP_SEARCH_MULTI,
                           pseudonym.public.to_bytes(),
                           pack_fields(*cids), request.to_bytes())


def _batch_frame(system, cids, keywords, now):
    patient = system.patient
    entries = []
    for cid in cids:
        pseudonym = patient.fresh_pseudonym()
        nu = patient.session_key_with(system.sserver.identity_key.public,
                                      pseudonym)
        trapdoors = [patient.trapdoor(kw).to_bytes() for kw in keywords]
        request = seal(nu, "phi-retrieve", pack_fields(*trapdoors), now)
        entries.append(pack_fields(pseudonym.public.to_bytes(), cid,
                                   request.to_bytes()))
    return wire.make_frame(wire.OP_SEARCH_BATCH, *entries)


def _single_frame(system, cid, keyword, now):
    patient = system.patient
    pseudonym = patient.fresh_pseudonym()
    nu = patient.session_key_with(system.sserver.identity_key.public,
                                  pseudonym)
    request = seal(nu, "phi-retrieve",
                   pack_fields(patient.trapdoor(keyword).to_bytes()), now)
    return wire.make_frame(wire.OP_SEARCH, pseudonym.public.to_bytes(),
                           cid, request.to_bytes())


class TestDegradedFederation:
    """One shard permanently down, every backend: scattered searches
    degrade to an *explicit* PARTIAL (never a hang, never a silent
    subset presented as complete), the victim's breaker walks
    closed → open, single-key traffic owned by the dead shard keeps
    failing typed, and a restart heals the ring back to full answers.
    """

    def _deployment(self, backend, tmp_path):
        system = build_system(seed=b"degraded-federation")
        faults = FaultPolicy(seed=CHAOS_SEED)
        net = with_policies(_make_transport(backend, system),
                            retry=RetryPolicy(max_attempts=2,
                                              attempt_timeout_s=0.2,
                                              base_backoff_s=0.01),
                            faults=faults)
        federation = bind_federated_sserver(net, system.sserver, 4,
                                            data_dir=str(tmp_path),
                                            fault_policy=faults)
        patient, server = system.patient, system.sserver
        cids = []
        for i in range(6):
            patient.add_record(Category.ALLERGIES, ["allergies"],
                               "record %d" % i, server.address)
            private_phi_storage(patient, server, net)
            cids.append(patient.collection_ids[server.address])
        # The MHI write probe needs the ASSIGN package armed *before*
        # the victim goes down.
        assign_privilege(patient, system.pdevice, server, net)
        return system, net, faults, federation, sorted(set(cids))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_one_shard_down_yields_partial_results(self, backend,
                                                   tmp_path):
        system, net, faults, federation, cids = self._deployment(
            backend, tmp_path)
        router = federation.router
        server = system.sserver
        try:
            owners = {cid: federation.ring.owner_str(cid) for cid in cids}
            assert len(set(owners.values())) >= 2, "seed must span shards"
            victim = owners[cids[0]]
            survivor_cid = next(c for c in cids if owners[c] != victim)
            # Two orderings of the same set: the first collection id's
            # owner takes the strict merge leg, so putting the victim
            # first vs. not exercises different degradation paths.
            victim_first = cids
            survivor_first = ([survivor_cid]
                              + [c for c in cids if c != survivor_cid])
            faults.crash(victim)

            # (a) Dead shard owns the *merge* leg, breaker still
            # closed: the merge is strict (its replay window must stay
            # unconsumed), so the refusal surfaces typed and the
            # client-side retry fires — two failed deliveries recorded,
            # not enough to trip the breaker.
            frame = _multi_frame(system, victim_first, ["allergies"],
                                 net.now)
            with pytest.raises(TransientTransportError):
                net.request(system.patient.address, server.address, frame,
                            "phi/search-multi")
            assert router.health.snapshot()[victim] == "closed"

            # (b) Dead shard is a *foreign* leg: the tolerant scatter
            # absorbs the failure in place and the response is an
            # explicit PARTIAL naming the victim — and that third
            # consecutive failure trips the breaker open.
            frame = _multi_frame(system, survivor_first, ["allergies"],
                                 net.now)
            response = net.request(system.patient.address, server.address,
                                   frame, "phi/search-multi")
            payload, unavailable = wire.parse_partial(response)
            assert unavailable == [victim.encode()]
            assert payload  # the surviving shards' merged results
            with pytest.raises(PartialResultError, match="unavailable"):
                wire.parse_response(response)
            assert router.health.snapshot()[victim] == "open"

            # (c) Breaker open, dead shard owns the first cid: the
            # router excludes it up front and re-picks the merge shard,
            # so a dead owners[0] no longer takes the request down.
            frame = _multi_frame(system, victim_first, ["allergies"],
                                 net.now)
            response = net.request(system.patient.address, server.address,
                                   frame, "phi/search-multi")
            payload, unavailable = wire.parse_partial(response)
            assert unavailable == [victim.encode()]
            assert payload

            # Batch search: per-entry degradation — the dead owner's
            # entry carries a typed transient error in its slot, the
            # healthy entry still answers, the response is PARTIAL.
            frame = _batch_frame(system, [survivor_cid, cids[0]],
                                 ["allergies"], net.now)
            response = net.request(system.patient.address, server.address,
                                   frame, "phi/search-batch")
            payload, unavailable = wire.parse_partial(response)
            assert unavailable == [victim.encode()]
            entries = unpack_fields(payload)
            assert len(entries) == 2
            wire.parse_response(entries[0])
            with pytest.raises(TransientTransportError):
                wire.parse_response(entries[1])

            # Writes routed to the dead owner are never silently
            # dropped nor rerouted: the breaker does not gate
            # single-key mutations, so the client sees the refusal.
            day = next(
                d for d in ("2026-07-%02d" % i for i in range(1, 32))
                if federation.ring.owner_str(
                    role_identity_for(d).encode()) == victim)
            window = system.pdevice.vitals.generate_day(day)
            with pytest.raises(TransientTransportError):
                mhi_store(system.pdevice, server, system.state.public_key,
                          net, window, role_identity_for(day))

            # Restart: one successful single-key forward through the
            # recovered shard closes its breaker, and the same scatter
            # that was PARTIAL above completes in full again.
            faults.restart(victim)
            frame = _single_frame(system, cids[0], "allergies", net.now)
            wire.parse_response(net.request(system.patient.address,
                                            server.address, frame,
                                            "phi/search"))
            assert router.health.snapshot()[victim] == "closed"
            frame = _multi_frame(system, cids, ["allergies"], net.now)
            response = net.request(system.patient.address, server.address,
                                   frame, "phi/search-multi")
            payload, unavailable = wire.parse_partial(response)
            assert unavailable == []
            assert payload
        finally:
            _close(net)

    def test_strict_router_surfaces_transient_error_instead(self,
                                                            tmp_path):
        # allow_partial=False restores the pre-degradation contract:
        # a dead shard fails the whole scatter typed (the client's
        # retry policy owns recovery, not the merge).
        system, net, faults, federation, cids = self._deployment(
            "loopback", tmp_path)
        federation.router.allow_partial = False
        owners = {cid: federation.ring.owner_str(cid) for cid in cids}
        victim = owners[cids[0]]
        faults.crash(victim)
        frame = _multi_frame(system, cids, ["allergies"], net.now)
        with pytest.raises(TransientTransportError):
            net.request(system.patient.address, system.sserver.address, frame,
                        "phi/search-multi")


class TestWireRegressions:
    def test_negative_timestamp_is_parameter_error(self):
        with pytest.raises(ParameterError, match="predates the epoch"):
            wire.ts_to_bytes(-1.0)

    def test_oversize_timestamp_is_parameter_error(self):
        with pytest.raises(ParameterError, match="8-byte wire range"):
            wire.ts_to_bytes(2.0 ** 70)

    def test_undecodable_exception_name_is_transport_error(self):
        bogus = bytes([1]) + pack_fields(b"\xff\xfe-not-utf8", b"boom")
        with pytest.raises(TransportError, match="undecodable"):
            wire.parse_response(bogus)
